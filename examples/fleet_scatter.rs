//! A small fleet scatter (miniature Figure 1): heterogeneous hosts,
//! drop rate vs link utilisation.
//!
//! ```text
//! cargo run --release -p hostcc-examples --bin fleet_scatter
//! ```

use hostcc::cluster::{simulate, summarize, ClusterConfig};
use hostcc::experiment::RunPlan;

fn main() {
    let cfg = ClusterConfig {
        samples: 24,
        seed: 2022,
        heavy_antagonist_fraction: 0.3,
    };
    println!("simulating a {}-sample fleet...", cfg.samples);
    let mut points = simulate(cfg, RunPlan::quick());
    points.sort_by(|a, b| a.link_utilization.total_cmp(&b.link_utilization));

    println!(
        "\n{:>10} {:>9} {:>7} {:>11}  scatter",
        "link util", "drops", "cores", "antagonists"
    );
    for p in &points {
        let bar = "#".repeat((p.drop_rate * 400.0).min(40.0) as usize);
        println!(
            "{:>9.1}% {:>8.2}% {:>7} {:>11}  {}",
            p.link_utilization * 100.0,
            p.drop_rate * 100.0,
            p.receiver_threads,
            p.antagonist_cores,
            bar
        );
    }

    let s = summarize(&points);
    println!(
        "\nutilisation-drop correlation: {:+.3}  |  hosts dropping at <50% link \
         utilisation: {:.0}%  |  hosts dropping at all: {:.0}%",
        s.utilization_drop_correlation,
        s.low_util_drop_fraction * 100.0,
        s.any_drop_fraction * 100.0
    );
    println!(
        "the two Fig. 1 features: drops correlate with utilisation, AND a population \
         of hosts (the memory-antagonised ones) drops packets at low utilisation."
    );
}
