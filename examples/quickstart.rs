//! Quickstart: simulate the paper's baseline testbed and print the
//! headline metrics.
//!
//! ```text
//! cargo run --release -p hostcc-examples --bin quickstart
//! ```

use hostcc::experiment::{run, RunPlan};
use hostcc::scenarios;

fn main() {
    // The §3 testbed: 40 senders issuing 16 KB remote reads over Swift to
    // one receiver with 12 dedicated cores, IOMMU on, hugepages on.
    let cfg = scenarios::baseline();
    println!(
        "simulating: {} senders x {} receiver threads ({} flows), IOMMU {}, {} pages",
        cfg.senders,
        cfg.receiver_threads,
        cfg.flow_count(),
        if cfg.iommu.enabled { "ON" } else { "OFF" },
        cfg.data_page,
    );

    let metrics = run(cfg, RunPlan::default()).expect("baseline config runs");

    println!(
        "\n--- results over {} of steady state ---",
        metrics.measured
    );
    println!(
        "application throughput : {:.2} Gbps (ceiling ~92 Gbps)",
        metrics.app_throughput_gbps()
    );
    println!(
        "host drop rate         : {:.3}% ({} buffer-full, {} descriptor-starved)",
        metrics.drop_rate() * 100.0,
        metrics.drops_buffer_full,
        metrics.drops_no_descriptor
    );
    println!(
        "IOTLB misses per packet: {:.2} ({} misses / {} packets)",
        metrics.iotlb_misses_per_packet(),
        metrics.iotlb_misses,
        metrics.delivered_packets
    );
    println!(
        "host delay p50 / p99   : {:.1} / {:.1} us (Swift target: 100 us)",
        metrics.host_delay_p50_us(),
        metrics.host_delay_p99_us()
    );
    println!(
        "NIC buffer peak        : {} KiB of 1024 KiB",
        metrics.nic_buffer_peak_bytes / 1024
    );
    println!(
        "memory bus             : {:.1} GB/s total, {:.1} GB/s available to DMA",
        metrics.memory_bandwidth_gbytes(),
        metrics.mean_nic_memory_bandwidth / 1e9
    );

    if metrics.host_drops() > 0 && metrics.host_delay_p50_us() < 100.0 {
        println!(
            "\nThe paper's finding, live: the host is dropping packets while the \
             median host delay ({:.0} us) is still below Swift's 100 us target — \
             the congestion controller cannot see the congestion.",
            metrics.host_delay_p50_us()
        );
    }
}
