//! Noisy-neighbour scenario (a miniature Figure 6): a memory-hungry
//! co-located job steals bus bandwidth and the NIC suffers — even though
//! the network link is far from saturated.
//!
//! ```text
//! cargo run --release -p hostcc-examples --bin noisy_neighbor
//! ```

use hostcc::experiment::{sweep, RunPlan};
use hostcc::scenarios;

fn main() {
    let antagonists = [0u32, 4, 8, 12, 15];
    let points: Vec<_> = antagonists
        .iter()
        .map(|&a| (a, scenarios::fig6(a, false))) // IOMMU off: isolate the bus
        .collect();
    println!(
        "running {} configurations (12 receiver cores, IOMMU off, STREAM antagonist)...",
        points.len()
    );
    let results = sweep(points, RunPlan::default()).expect("fig6 configs run");

    println!(
        "\n{:>10} {:>9} {:>12} {:>10} {:>12}",
        "antagonist", "tp(Gbps)", "membw(GB/s)", "drops", "link util"
    );
    for p in &results {
        let m = &p.metrics;
        println!(
            "{:>10} {:>9.2} {:>12.1} {:>9.2}% {:>11.1}%",
            p.label,
            m.app_throughput_gbps(),
            m.memory_bandwidth_gbytes(),
            m.drop_rate() * 100.0,
            m.link_utilization(100e9) * 100.0
        );
    }

    println!(
        "\nreading guide: as STREAM cores saturate the memory bus (~90 GB/s \
         achievable), per-DMA latency inflates, PCIe credits return slowly, and the \
         NIC input buffer overflows — packets drop while the 100 Gbps access link \
         sits well below full utilisation. This is the paper's Fig. 1 'drops at low \
         utilisation' population, reproduced mechanistically."
    );
}
