//! Congestion-control comparison at a host-congested operating point:
//! Swift (host-delay aware) vs a DCTCP-style ECN baseline (fabric signals
//! only) vs a fixed window (no control).
//!
//! ```text
//! cargo run --release -p hostcc-examples --bin cc_comparison
//! ```

use hostcc::experiment::{sweep, RunPlan};
use hostcc::scenarios;

fn main() {
    let congested = || scenarios::fig3(14, true); // IOTLB-bound point
    let points = vec![
        ("swift", congested()),
        ("dctcp", scenarios::with_dctcp(congested())),
        ("fixed-8", scenarios::with_fixed_window(congested(), 8.0)),
    ];
    println!("comparing controllers at 14 receiver cores, IOMMU on...");
    let results = sweep(points, RunPlan::default()).expect("cc configs run");

    println!(
        "\n{:>8} {:>9} {:>8} {:>12} {:>12} {:>12}",
        "cc", "tp(Gbps)", "drops", "hostd p50", "hostd p99", "retransmits"
    );
    for p in &results {
        let m = &p.metrics;
        println!(
            "{:>8} {:>9.2} {:>7.2}% {:>9.1} us {:>9.1} us {:>12}",
            p.label,
            m.app_throughput_gbps(),
            m.drop_rate() * 100.0,
            m.host_delay_p50_us(),
            m.host_delay_p99_us(),
            m.retransmits
        );
    }

    println!(
        "\nreading guide: none of the controllers avoids host drops — Swift's host \
         delay signal saturates below its 100 us target (the paper's blind spot), the \
         DCTCP baseline watches switch ECN marks that never appear because the \
         congestion is inside the host, and the fixed window simply overruns the NIC. \
         §4's point: host interconnect congestion needs *new* signals, not more of \
         the existing ones."
    );
}
