//! Example binaries for the `hostcc` host-interconnect congestion
//! laboratory. See the `[[bin]]` targets: `quickstart`,
//! `iommu_contention`, `noisy_neighbor`, `cc_comparison` and
//! `fleet_scatter`.
