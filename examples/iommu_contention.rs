//! IOMMU contention walk-through (a miniature Figure 3).
//!
//! Sweeps receiver cores with the IOMMU on and off, prints the measured
//! throughput next to the paper's analytical model
//! `C·pkt/(T_base + M·T_miss)`, and shows the regime transition from
//! CPU-bottlenecked to interconnect-bottlenecked.
//!
//! ```text
//! cargo run --release -p hostcc-examples --bin iommu_contention
//! ```

use hostcc::experiment::{sweep, RunPlan};
use hostcc::model::{cpu_bound_gbps, ThroughputModel};
use hostcc::scenarios;

fn main() {
    let cores = [2u32, 6, 10, 14];
    let mut points = Vec::new();
    for &c in &cores {
        for on in [true, false] {
            points.push(((c, on), scenarios::fig3(c, on)));
        }
    }
    println!(
        "running {} testbed configurations in parallel...",
        points.len()
    );
    let results = sweep(points, RunPlan::default()).expect("fig3 configs run");

    println!(
        "\n{:>5} {:>6} {:>9} {:>10} {:>10} {:>10} {:>8}",
        "cores", "iommu", "tp(Gbps)", "cpu-bound", "model(M)", "misses/pkt", "drops"
    );
    for p in &results {
        let (c, on) = p.label;
        let m = &p.metrics;
        let cfg = scenarios::fig3(c, on);
        let cpu = cpu_bound_gbps(&cfg, c);
        let model = ThroughputModel::from_config(&cfg);
        let modeled = model.app_throughput_gbps(m.iotlb_misses_per_packet());
        println!(
            "{:>5} {:>6} {:>9.2} {:>10.2} {:>10.2} {:>10.2} {:>7.2}%",
            c,
            if on { "ON" } else { "OFF" },
            m.app_throughput_gbps(),
            cpu,
            modeled,
            m.iotlb_misses_per_packet(),
            m.drop_rate() * 100.0
        );
    }

    println!(
        "\nreading guide: below ~8 cores throughput tracks the CPU bound (both IOMMU \
         settings identical); beyond it the IOMMU-on runs fall away from the 92 Gbps \
         ceiling as IOTLB misses per packet climb — and the measured throughput tracks \
         the paper's Little's-law model evaluated at the measured miss rate."
    );
}
