//! Watch the NIC input buffer fill and saw-tooth under host congestion —
//! the queue the congestion controller cannot see.
//!
//! ```text
//! cargo run --release -p hostcc-examples --bin buffer_timeline
//! ```

use hostcc::experiment::{run, RunPlan};
use hostcc::scenarios;
use hostcc::substrate::sim::SimDuration;

fn main() {
    // A host-congested operating point: 14 receiver cores, IOMMU on.
    let cfg = scenarios::fig3(14, true);
    let capacity = cfg.nic.input_buffer_bytes;
    println!("simulating 14 receiver cores, IOMMU on (IOTLB-bound)...");
    let m = run(
        cfg,
        RunPlan {
            warmup: SimDuration::from_millis(25),
            measure: SimDuration::from_millis(3),
        },
    )
    .expect("fig3 config runs");

    println!(
        "\nNIC input buffer occupancy over {} (capacity {} KiB):\n",
        m.measured,
        capacity / 1024
    );
    // Downsample to ~60 rows.
    let stride = (m.occupancy_samples.len() / 60).max(1);
    for chunk in m.occupancy_samples.chunks(stride) {
        let (t, occ) = chunk[chunk.len() / 2];
        let frac = occ as f64 / capacity as f64;
        let bar = "#".repeat((frac * 60.0) as usize);
        println!(
            "{:>7.2} us |{:<60}| {:>4.0}%",
            t as f64 / 1000.0,
            bar,
            frac * 100.0
        );
    }

    println!(
        "\nthroughput {:.1} Gbps, drops {:.2}%, host delay p50 {:.0} us (target 100 us)",
        m.app_throughput_gbps(),
        m.drop_rate() * 100.0,
        m.host_delay_p50_us()
    );
    println!(
        "the buffer rides near capacity and sheds arrivals as drops — while the \
         drain keeps the queueing delay just under the congestion controller's \
         target. That standing near-full queue IS the paper's host congestion."
    );
}
