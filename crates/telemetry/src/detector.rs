//! Online episode detection and root-cause attribution.
//!
//! The detector segments the telemetry stream into host-congestion
//! episodes with onset/peak/clear timestamps using hysteresis (an episode
//! opens only after `onset_samples` consecutive congested samples and
//! closes only after `clear_samples` consecutive clear ones), then
//! attributes each episode to the resource whose signal deviated most
//! from its episode-free baseline:
//!
//! * **IOTLB pressure** — page walks per packet;
//! * **memory-bandwidth contention** — queued-read memory latency;
//! * **PCIe credit starvation** — posted-credit stall events per window;
//! * **core preemption** — CPU-stage time (queueing included) per packet.
//!
//! Baselines are Welford mean/variance accumulators fed only by
//! episode-free samples, so attribution compares "during" against
//! "normal" — the z-score framing of the HPC congestion-characterization
//! literature. Runs congested from the first sample never form a
//! baseline; a normalized absolute-threshold fallback attributes those
//! (the cc_blindspot case: walks/packet far above 1 with the IOMMU on).

use crate::config::TelemetryConfig;
use crate::sample::TelemetrySample;

/// The host-side resource an episode is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCause {
    /// IOTLB working set exceeds capacity: page walks per packet spike.
    IotlbPressure,
    /// Memory-bandwidth contention: queued-read latency spikes.
    MemBandwidth,
    /// PCIe posted-credit starvation: admission stalls spike.
    PcieCredit,
    /// Receiver-core preemption: CPU-stage time per packet spikes.
    CorePreempt,
    /// No signal deviated enough to name a culprit.
    Unknown,
}

impl RootCause {
    /// Stable kebab-case name for exports and assertions.
    pub fn name(&self) -> &'static str {
        match self {
            RootCause::IotlbPressure => "iotlb-pressure",
            RootCause::MemBandwidth => "mem-bandwidth",
            RootCause::PcieCredit => "pcie-credit",
            RootCause::CorePreempt => "core-preempt",
            RootCause::Unknown => "unknown",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            RootCause::IotlbPressure => 0,
            RootCause::MemBandwidth => 1,
            RootCause::PcieCredit => 2,
            RootCause::CorePreempt => 3,
            RootCause::Unknown => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, hostcc_sim::SnapError> {
        Ok(match tag {
            0 => RootCause::IotlbPressure,
            1 => RootCause::MemBandwidth,
            2 => RootCause::PcieCredit,
            3 => RootCause::CorePreempt,
            4 => RootCause::Unknown,
            _ => return Err(hostcc_sim::SnapError::Corrupt("root cause out of range")),
        })
    }
}

/// One detected host-congestion episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeRecord {
    /// First congested sample's timestamp, ns.
    pub onset_ns: u64,
    /// Timestamp of the episode's peak buffer occupancy, ns.
    pub peak_ns: u64,
    /// Timestamp the episode cleared (or the run ended, if `open`), ns.
    pub clear_ns: u64,
    /// Whether the episode was still open when the run ended.
    pub open: bool,
    /// Samples spanned.
    pub samples: u32,
    /// Host drops over the episode.
    pub drops: u64,
    /// Peak buffer-occupancy fraction.
    pub peak_buffer_frac: f64,
    /// Attributed root cause.
    pub cause: RootCause,
    /// Winning z-score (0 when attribution fell back to absolute
    /// thresholds).
    pub z: f64,
    /// Episode mean: page walks per packet.
    pub walks_per_packet: f64,
    /// Episode mean: memory-controller utilization.
    pub mem_util: f64,
    /// Episode mean: queued-read memory latency, ns.
    pub mem_latency_ns: f64,
    /// Credit-stall events over the episode.
    pub credit_stalls: u64,
    /// Episode mean: CPU-stage ns per packet.
    pub cpu_ns_per_packet: f64,
}

/// Welford online mean/variance.
#[derive(Debug, Clone, Copy, Default)]
struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
    }

    fn std(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        (self.m2 / (self.count - 1) as f64).sqrt()
    }
}

/// Running accumulation over the episode under construction.
#[derive(Debug, Clone, Copy, Default)]
struct EpisodeAcc {
    onset_ns: u64,
    peak_ns: u64,
    peak_frac: f64,
    samples: u32,
    packets: u64,
    walks: u64,
    drops: u64,
    stalls: u64,
    cpu_ns: u64,
    mem_latency_sum: f64,
    mem_util_sum: f64,
}

impl EpisodeAcc {
    fn reset(&mut self, onset_ns: u64) {
        *self = EpisodeAcc {
            onset_ns,
            peak_ns: onset_ns,
            ..EpisodeAcc::default()
        };
    }

    fn absorb(&mut self, s: &TelemetrySample) {
        self.samples += 1;
        self.packets += s.packets;
        self.walks += s.walks;
        self.drops += s.drops;
        self.stalls += s.credit_stalls;
        self.cpu_ns += s.cpu_ns;
        self.mem_latency_sum += s.mem_latency_ns;
        self.mem_util_sum += s.mem_util;
        if s.buffer_frac > self.peak_frac {
            self.peak_frac = s.buffer_frac;
            self.peak_ns = s.t_ns;
        }
    }
}

impl EpisodeRecord {
    fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.onset_ns);
        w.u64(self.peak_ns);
        w.u64(self.clear_ns);
        w.bool(self.open);
        w.u32(self.samples);
        w.u64(self.drops);
        w.f64(self.peak_buffer_frac);
        w.u8(self.cause.tag());
        w.f64(self.z);
        w.f64(self.walks_per_packet);
        w.f64(self.mem_util);
        w.f64(self.mem_latency_ns);
        w.u64(self.credit_stalls);
        w.f64(self.cpu_ns_per_packet);
    }

    fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        Ok(EpisodeRecord {
            onset_ns: r.u64()?,
            peak_ns: r.u64()?,
            clear_ns: r.u64()?,
            open: r.bool()?,
            samples: r.u32()?,
            drops: r.u64()?,
            peak_buffer_frac: r.f64()?,
            cause: RootCause::from_tag(r.u8()?)?,
            z: r.f64()?,
            walks_per_packet: r.f64()?,
            mem_util: r.f64()?,
            mem_latency_ns: r.f64()?,
            credit_stalls: r.u64()?,
            cpu_ns_per_packet: r.f64()?,
        })
    }
}

/// Cause-signal order shared by the baseline array, the z-score vector
/// and the fallback scores: [iotlb, mem, pcie, cpu].
const CAUSES: [RootCause; 4] = [
    RootCause::IotlbPressure,
    RootCause::MemBandwidth,
    RootCause::PcieCredit,
    RootCause::CorePreempt,
];

/// Online episode segmentation + attribution (see module docs).
#[derive(Debug)]
pub struct EpisodeDetector {
    cfg: TelemetryConfig,
    in_episode: bool,
    onset_run: u32,
    clear_run: u32,
    acc: EpisodeAcc,
    /// Episode-free baselines in `CAUSES` order.
    baselines: [Welford; 4],
    episodes: Vec<EpisodeRecord>,
    dropped: u64,
}

impl EpisodeDetector {
    /// A detector with thresholds from `cfg`; episode storage is
    /// preallocated to `cfg.max_episodes`.
    pub fn new(cfg: &TelemetryConfig) -> Self {
        EpisodeDetector {
            cfg: *cfg,
            in_episode: false,
            onset_run: 0,
            clear_run: 0,
            acc: EpisodeAcc::default(),
            baselines: [Welford::default(); 4],
            episodes: Vec::with_capacity(if cfg.enabled { cfg.max_episodes } else { 0 }),
            dropped: 0,
        }
    }

    /// Feed one sample through the segmentation state machine.
    pub fn on_sample(&mut self, s: &TelemetrySample) {
        let congested = s.buffer_frac >= self.cfg.onset_buffer_frac
            || s.drops > 0
            || s.credit_stalls >= self.cfg.onset_stall_events;
        let clear = s.buffer_frac <= self.cfg.clear_buffer_frac && s.drops == 0;
        if self.in_episode {
            self.acc.absorb(s);
            if clear {
                self.clear_run += 1;
                if self.clear_run >= self.cfg.clear_samples {
                    let rec = self.attribute(s.t_ns, false);
                    if self.episodes.len() < self.cfg.max_episodes {
                        self.episodes.push(rec);
                    } else {
                        self.dropped += 1;
                    }
                    self.in_episode = false;
                    self.onset_run = 0;
                    self.clear_run = 0;
                }
            } else {
                self.clear_run = 0;
            }
        } else if congested {
            if self.onset_run == 0 {
                self.acc.reset(s.t_ns);
            }
            self.acc.absorb(s);
            self.onset_run += 1;
            if self.onset_run >= self.cfg.onset_samples {
                self.in_episode = true;
                self.clear_run = 0;
            }
        } else {
            self.onset_run = 0;
            // Episode-free sample: feed the baselines the four cause
            // signals attribution will compare against.
            self.baselines[0].push(s.walks_per_packet());
            self.baselines[1].push(s.mem_latency_ns);
            self.baselines[2].push(s.credit_stalls as f64);
            self.baselines[3].push(s.cpu_ns_per_packet());
        }
    }

    /// Closed episodes so far, in onset order.
    pub fn episodes(&self) -> &[EpisodeRecord] {
        &self.episodes
    }

    /// Episodes discarded because the table was full.
    pub fn dropped_episodes(&self) -> u64 {
        self.dropped
    }

    /// If an episode is open, attribute it as of `end_ns` without
    /// mutating detector state (for end-of-run summaries).
    pub fn open_episode(&self, end_ns: u64) -> Option<EpisodeRecord> {
        self.in_episode.then(|| self.attribute(end_ns, true))
    }

    /// Serialize the segmentation state machine, baselines, and the
    /// closed-episode table.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.bool(self.in_episode);
        w.u32(self.onset_run);
        w.u32(self.clear_run);
        w.u64(self.acc.onset_ns);
        w.u64(self.acc.peak_ns);
        w.f64(self.acc.peak_frac);
        w.u32(self.acc.samples);
        w.u64(self.acc.packets);
        w.u64(self.acc.walks);
        w.u64(self.acc.drops);
        w.u64(self.acc.stalls);
        w.u64(self.acc.cpu_ns);
        w.f64(self.acc.mem_latency_sum);
        w.f64(self.acc.mem_util_sum);
        for b in &self.baselines {
            w.u64(b.count);
            w.f64(b.mean);
            w.f64(b.m2);
        }
        w.usize(self.episodes.len());
        for e in &self.episodes {
            e.save_state(w);
        }
        w.u64(self.dropped);
    }

    /// Restore into a detector rebuilt from the same configuration; on any
    /// error `self` is untouched.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let in_episode = r.bool()?;
        let onset_run = r.u32()?;
        let clear_run = r.u32()?;
        let acc = EpisodeAcc {
            onset_ns: r.u64()?,
            peak_ns: r.u64()?,
            peak_frac: r.f64()?,
            samples: r.u32()?,
            packets: r.u64()?,
            walks: r.u64()?,
            drops: r.u64()?,
            stalls: r.u64()?,
            cpu_ns: r.u64()?,
            mem_latency_sum: r.f64()?,
            mem_util_sum: r.f64()?,
        };
        let mut baselines = [Welford::default(); 4];
        for b in baselines.iter_mut() {
            b.count = r.u64()?;
            b.mean = r.f64()?;
            b.m2 = r.f64()?;
        }
        let n = r.len(16)?;
        if self.cfg.enabled && n > self.cfg.max_episodes {
            return Err(SnapError::Corrupt("episode table overfull"));
        }
        let mut episodes = Vec::with_capacity(self.episodes.capacity().max(n));
        for _ in 0..n {
            episodes.push(EpisodeRecord::load_state(r)?);
        }
        let dropped = r.u64()?;
        self.in_episode = in_episode;
        self.onset_run = onset_run;
        self.clear_run = clear_run;
        self.acc = acc;
        self.baselines = baselines;
        self.episodes = episodes;
        self.dropped = dropped;
        Ok(())
    }

    /// Attribute the accumulated episode: z-scores against episode-free
    /// baselines first, normalized absolute thresholds as fallback.
    fn attribute(&self, clear_ns: u64, open: bool) -> EpisodeRecord {
        let a = &self.acc;
        let n = a.samples.max(1) as f64;
        let pkts = a.packets.max(1) as f64;
        let wpp = if a.packets == 0 {
            0.0
        } else {
            a.walks as f64 / pkts
        };
        let mem_latency = a.mem_latency_sum / n;
        let mem_util = a.mem_util_sum / n;
        let stalls_per_sample = a.stalls as f64 / n;
        let cpp = if a.packets == 0 {
            0.0
        } else {
            a.cpu_ns as f64 / pkts
        };
        let during = [wpp, mem_latency, stalls_per_sample, cpp];

        // Primary: largest z-score over a trusted baseline.
        let mut best = 0usize;
        let mut best_z = f64::NEG_INFINITY;
        for (i, b) in self.baselines.iter().enumerate() {
            let z = if b.count < self.cfg.baseline_min_samples {
                0.0
            } else {
                // Std floor: a near-constant baseline (e.g. zero stalls
                // everywhere) must not turn a tiny absolute bump into an
                // unbounded z.
                let sd = b.std().max(0.02 * b.mean.abs()).max(1e-9);
                (during[i] - b.mean) / sd
            };
            if z > best_z {
                best_z = z;
                best = i;
            }
        }
        let (cause, z) = if best_z >= self.cfg.z_threshold {
            (CAUSES[best], best_z)
        } else {
            // Fallback: normalized absolute pressure ratios, for runs with
            // no episode-free baseline (congested from the start). A ratio
            // ≥ 1 names the resource; the scales are the mechanisms'
            // natural units (≥1 walk per packet means the IOTLB thrashes,
            // ≥90% bus utilization means bandwidth contention, ~100 credit
            // stalls per admitted packet means starvation rather than the
            // endemic background, and ~7× the per-packet CPU cost means
            // cores are being held).
            let spp = if a.packets == 0 {
                0.0
            } else {
                a.stalls as f64 / pkts
            };
            let scores = [wpp / 1.0, mem_util / 0.9, spp / 100.0, cpp / 20_000.0];
            let mut fb = 0usize;
            for (i, sc) in scores.iter().enumerate() {
                if *sc > scores[fb] {
                    fb = i;
                }
            }
            if scores[fb] >= 1.0 {
                (CAUSES[fb], 0.0)
            } else {
                (RootCause::Unknown, 0.0)
            }
        };

        EpisodeRecord {
            onset_ns: a.onset_ns,
            peak_ns: a.peak_ns,
            clear_ns,
            open,
            samples: a.samples,
            drops: a.drops,
            peak_buffer_frac: a.peak_frac,
            cause,
            z,
            walks_per_packet: wpp,
            mem_util,
            mem_latency_ns: mem_latency,
            credit_stalls: a.stalls,
            cpu_ns_per_packet: cpp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TelemetryConfig {
        TelemetryConfig::enabled()
    }

    fn sample(t_ns: u64, buffer_frac: f64) -> TelemetrySample {
        TelemetrySample {
            t_ns,
            buffer_occupancy_bytes: (buffer_frac * 1e6) as u64,
            buffer_frac,
            ring_free_slots: 64,
            delivered: 10,
            drops: 0,
            credit_stalls: 0,
            iotlb_lookups: 40,
            iotlb_misses: 0,
            walks: 0,
            packets: 10,
            host_delay_ns: 100_000,
            cpu_ns: 28_500,
            acks: 10,
            fabric_delay_ns: 80_000,
            mem_util: 0.3,
            mem_latency_ns: 100.0,
        }
    }

    #[test]
    fn brief_spikes_below_hysteresis_do_not_open_episodes() {
        let mut d = EpisodeDetector::new(&cfg());
        for i in 0..50 {
            let frac = if i == 20 || i == 30 { 0.9 } else { 0.1 };
            d.on_sample(&sample(i * 1_000, frac));
        }
        assert!(d.episodes().is_empty());
        assert!(d.open_episode(50_000).is_none());
    }

    #[test]
    fn sustained_iotlb_pressure_is_detected_and_attributed() {
        let mut d = EpisodeDetector::new(&cfg());
        // Baseline: calm, walk-free.
        for i in 0..40 {
            d.on_sample(&sample(i * 1_000, 0.05));
        }
        // Episode: buffer high, walks spike.
        for i in 40..60 {
            let mut s = sample(i * 1_000, 0.85);
            s.walks = 60;
            s.drops = 3;
            d.on_sample(&s);
        }
        // Clear tail.
        for i in 60..70 {
            d.on_sample(&sample(i * 1_000, 0.05));
        }
        let eps = d.episodes();
        assert_eq!(eps.len(), 1, "one episode: {eps:?}");
        let e = eps[0];
        assert_eq!(e.cause, RootCause::IotlbPressure, "{e:?}");
        assert!(e.z >= 3.0, "z {}", e.z);
        assert_eq!(e.onset_ns, 40_000);
        assert!(e.clear_ns > e.peak_ns && e.peak_ns >= e.onset_ns);
        assert!(!e.open);
        assert!(e.drops > 0);
    }

    #[test]
    fn mem_latency_deviation_attributes_to_bandwidth() {
        let mut d = EpisodeDetector::new(&cfg());
        for i in 0..40 {
            d.on_sample(&sample(i * 1_000, 0.05));
        }
        for i in 40..60 {
            let mut s = sample(i * 1_000, 0.9);
            s.mem_latency_ns = 900.0;
            s.mem_util = 0.97;
            d.on_sample(&s);
        }
        for i in 60..70 {
            d.on_sample(&sample(i * 1_000, 0.05));
        }
        assert_eq!(d.episodes().len(), 1);
        assert_eq!(d.episodes()[0].cause, RootCause::MemBandwidth);
    }

    #[test]
    fn baseline_free_runs_fall_back_to_absolute_thresholds() {
        let mut d = EpisodeDetector::new(&cfg());
        // Congested from the very first sample: no baseline ever forms.
        for i in 0..30 {
            let mut s = sample(i * 1_000, 0.95);
            s.walks = 55; // 5.5 walks/packet
            s.drops = 2;
            d.on_sample(&s);
        }
        let open = d.open_episode(30_000).expect("episode still open");
        assert!(open.open);
        assert_eq!(open.cause, RootCause::IotlbPressure);
        assert_eq!(open.z, 0.0, "fallback attribution carries no z-score");
        assert!(open.walks_per_packet > 5.0);
        // Non-destructive: the detector state is unchanged.
        assert_eq!(d.episodes().len(), 0);
        assert_eq!(d.open_episode(30_000), Some(open));
    }

    #[test]
    fn episode_table_overflow_is_counted_not_grown() {
        let mut c = cfg();
        c.max_episodes = 1;
        let mut d = EpisodeDetector::new(&c);
        for round in 0..3u64 {
            let base = round * 100;
            for i in 0..20 {
                d.on_sample(&sample((base + i) * 1_000, 0.05));
            }
            for i in 20..30 {
                let mut s = sample((base + i) * 1_000, 0.9);
                s.drops = 1;
                d.on_sample(&s);
            }
            for i in 30..40 {
                d.on_sample(&sample((base + i) * 1_000, 0.05));
            }
        }
        assert_eq!(d.episodes().len(), 1);
        assert_eq!(d.dropped_episodes(), 2);
    }
}
