//! Flight recorder: bounded retroactive dumps of the telemetry window.
//!
//! When something worth diagnosing happens — a drop burst, a fault
//! window opening, a watchdog stall — the recorder copies the most recent
//! samples out of the retained ring into a preallocated dump slot. The
//! sample ring keeps rolling; the dump freezes the lead-up. All storage
//! (dump slots and their sample vectors) is allocated at construction, so
//! triggering on the hot path allocates nothing.

use crate::config::TelemetryConfig;
use crate::sample::TelemetrySample;
use hostcc_trace::SampleRing;

/// What fired a flight dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// Host drops in one sampling window crossed the burst threshold.
    DropBurst,
    /// A fault-injection window opened.
    FaultWindow,
    /// The watchdog declared the run stalled.
    Stall,
}

impl TriggerKind {
    /// Stable kebab-case name for exports and assertions.
    pub fn name(&self) -> &'static str {
        match self {
            TriggerKind::DropBurst => "drop-burst",
            TriggerKind::FaultWindow => "fault-window",
            TriggerKind::Stall => "stall",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            TriggerKind::DropBurst => 0,
            TriggerKind::FaultWindow => 1,
            TriggerKind::Stall => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, hostcc_sim::SnapError> {
        Ok(match tag {
            0 => TriggerKind::DropBurst,
            1 => TriggerKind::FaultWindow,
            2 => TriggerKind::Stall,
            _ => return Err(hostcc_sim::SnapError::Corrupt("trigger kind out of range")),
        })
    }
}

/// One captured dump: the trigger, when it fired, and the last N samples
/// leading into it (oldest first).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// What fired the dump.
    pub trigger: TriggerKind,
    /// Trigger time, nanoseconds.
    pub t_ns: u64,
    /// The retained samples at trigger time, oldest first, at most
    /// `flight_dump_samples` of them.
    pub samples: Vec<TelemetrySample>,
}

/// Bounded retroactive dump capture (see module docs). Disabled unless
/// both telemetry and the flight recorder are switched on.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    dump_samples: usize,
    /// Minimum ns between captures, so a sustained drop storm yields one
    /// dump per refilled window rather than one per sample.
    cooldown_ns: u64,
    last_capture_ns: u64,
    captured: usize,
    /// Preallocated dump slots; `captured` of them are live.
    slots: Vec<FlightDump>,
    triggered: u64,
}

impl FlightRecorder {
    /// A recorder with all dump storage preallocated (no-op slots when the
    /// flight recorder is off).
    pub fn new(cfg: &TelemetryConfig) -> Self {
        let enabled = cfg.enabled && cfg.flight_recorder;
        let dump_samples = cfg.flight_dump_samples.min(cfg.ring_capacity).max(1);
        let slots = if enabled {
            (0..cfg.flight_max_dumps)
                .map(|_| FlightDump {
                    trigger: TriggerKind::DropBurst,
                    t_ns: 0,
                    samples: Vec::with_capacity(dump_samples),
                })
                .collect()
        } else {
            Vec::new()
        };
        FlightRecorder {
            enabled,
            dump_samples,
            cooldown_ns: cfg.interval_ns.saturating_mul(dump_samples as u64),
            last_capture_ns: 0,
            captured: 0,
            slots,
            triggered: 0,
        }
    }

    /// Record a trigger at `t_ns`, copying the tail of `ring` into the
    /// next free dump slot. Triggers inside the cooldown window, or after
    /// all slots are used, are counted but capture nothing.
    pub fn trigger(&mut self, kind: TriggerKind, t_ns: u64, ring: &SampleRing<TelemetrySample>) {
        if !self.enabled {
            return;
        }
        self.triggered += 1;
        if self.captured == self.slots.len() {
            return;
        }
        if self.captured > 0 && t_ns.saturating_sub(self.last_capture_ns) < self.cooldown_ns {
            return;
        }
        let slot = &mut self.slots[self.captured];
        slot.trigger = kind;
        slot.t_ns = t_ns;
        slot.samples.clear();
        let skip = ring.len().saturating_sub(self.dump_samples);
        slot.samples.extend(ring.iter().skip(skip).copied());
        self.captured += 1;
        self.last_capture_ns = t_ns;
    }

    /// The captured dumps, in trigger order.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.slots[..self.captured]
    }

    /// Lifetime trigger count, including triggers that captured nothing
    /// (cooldown or exhausted slots).
    pub fn triggered(&self) -> u64 {
        self.triggered
    }

    /// Serialize the captured dumps and trigger bookkeeping. The slot
    /// geometry (enabled, dump size, cooldown) comes from the config.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.last_capture_ns);
        w.u64(self.triggered);
        w.usize(self.captured);
        for dump in &self.slots[..self.captured] {
            w.u8(dump.trigger.tag());
            w.u64(dump.t_ns);
            w.usize(dump.samples.len());
            for s in &dump.samples {
                s.save_state(w);
            }
        }
    }

    /// Restore into a recorder rebuilt from the same configuration; on any
    /// error `self` is untouched.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let last_capture_ns = r.u64()?;
        let triggered = r.u64()?;
        let captured = r.usize()?;
        if captured > self.slots.len() {
            return Err(SnapError::Corrupt("flight dumps exceed slots"));
        }
        let mut dumps = Vec::with_capacity(captured);
        for _ in 0..captured {
            let trigger = TriggerKind::from_tag(r.u8()?)?;
            let t_ns = r.u64()?;
            let n = r.len(64)?;
            if n > self.dump_samples {
                return Err(SnapError::Corrupt("flight dump overfull"));
            }
            let mut samples = Vec::with_capacity(self.dump_samples);
            for _ in 0..n {
                samples.push(TelemetrySample::load_state(r)?);
            }
            dumps.push(FlightDump {
                trigger,
                t_ns,
                samples,
            });
        }
        self.last_capture_ns = last_capture_ns;
        self.triggered = triggered;
        self.captured = captured;
        for (slot, dump) in self.slots.iter_mut().zip(dumps) {
            *slot = dump;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TelemetryConfig {
        let mut c = TelemetryConfig::enabled().with_flight_recorder();
        c.flight_dump_samples = 4;
        c.flight_max_dumps = 2;
        c
    }

    fn push_samples(ring: &mut SampleRing<TelemetrySample>, n: u64, t0: u64) {
        for i in 0..n {
            let mut s = crate::sample::TelemetrySample {
                t_ns: t0 + i * 1_000,
                buffer_occupancy_bytes: i,
                buffer_frac: 0.0,
                ring_free_slots: 0,
                delivered: 0,
                drops: 0,
                credit_stalls: 0,
                iotlb_lookups: 0,
                iotlb_misses: 0,
                walks: 0,
                packets: 0,
                host_delay_ns: 0,
                cpu_ns: 0,
                acks: 0,
                fabric_delay_ns: 0,
                mem_util: 0.0,
                mem_latency_ns: 0.0,
            };
            s.buffer_occupancy_bytes = i;
            ring.push(s);
        }
    }

    #[test]
    fn captures_ring_tail_oldest_first() {
        let c = cfg();
        let mut rec = FlightRecorder::new(&c);
        let mut ring = SampleRing::new(c.ring_capacity);
        push_samples(&mut ring, 10, 0);
        rec.trigger(TriggerKind::DropBurst, 9_000, &ring);
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, TriggerKind::DropBurst);
        assert_eq!(dumps[0].samples.len(), 4);
        let ts: Vec<u64> = dumps[0].samples.iter().map(|s| s.t_ns).collect();
        assert_eq!(ts, vec![6_000, 7_000, 8_000, 9_000]);
    }

    #[test]
    fn cooldown_and_slot_bounds_are_enforced() {
        let c = cfg();
        let cooldown = c.interval_ns * c.flight_dump_samples as u64;
        let mut rec = FlightRecorder::new(&c);
        let mut ring = SampleRing::new(c.ring_capacity);
        push_samples(&mut ring, 8, 0);
        rec.trigger(TriggerKind::DropBurst, 7_000, &ring);
        // Inside the cooldown: counted, not captured.
        rec.trigger(TriggerKind::DropBurst, 7_000 + cooldown / 2, &ring);
        assert_eq!(rec.dumps().len(), 1);
        // Past the cooldown: second slot fills.
        rec.trigger(TriggerKind::Stall, 7_000 + cooldown, &ring);
        assert_eq!(rec.dumps().len(), 2);
        // Slots exhausted: counted, not captured.
        rec.trigger(TriggerKind::FaultWindow, 7_000 + 10 * cooldown, &ring);
        assert_eq!(rec.dumps().len(), 2);
        assert_eq!(rec.triggered(), 4);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut c = cfg();
        c.flight_recorder = false;
        let mut rec = FlightRecorder::new(&c);
        let mut ring = SampleRing::new(4);
        push_samples(&mut ring, 4, 0);
        rec.trigger(TriggerKind::Stall, 3_000, &ring);
        assert!(rec.dumps().is_empty());
        assert_eq!(rec.triggered(), 0);
    }
}
