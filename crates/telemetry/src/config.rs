//! Telemetry configuration: sampling cadence, detector thresholds and
//! flight-recorder bounds. Mirrors the `TraceConfig` builder idiom.

/// Configuration for the telemetry subsystem. Disabled by default: a run
/// with telemetry off schedules no sampling events and is bit-identical
/// to a build without the telemetry layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch.
    pub enabled: bool,
    /// Sampling interval, nanoseconds. The sampler rides the simulation's
    /// timing wheel, so batched and per-event dispatch sample at exactly
    /// the same instants.
    pub interval_ns: u64,
    /// Retained-sample ring capacity (the flight recorder dumps from this
    /// window; the streaming sink sees every sample regardless).
    pub ring_capacity: usize,
    /// Whether the flight recorder captures dumps on triggers.
    pub flight_recorder: bool,
    /// Samples copied into each flight dump (bounded by `ring_capacity`).
    pub flight_dump_samples: usize,
    /// Maximum dumps captured per run (storage is preallocated).
    pub flight_max_dumps: usize,
    /// Buffer-occupancy fraction at/above which a sample counts toward
    /// episode onset.
    pub onset_buffer_frac: f64,
    /// Buffer-occupancy fraction at/below which a sample counts toward
    /// episode clear (hysteresis: strictly below `onset_buffer_frac`).
    pub clear_buffer_frac: f64,
    /// Credit-stall events in one sampling window at/above which a sample
    /// counts toward onset. Loaded hosts see steady stall backgrounds in
    /// the low hundreds per 5 µs window; the default only fires on
    /// multi-x bursts (sustained posted-credit starvation).
    pub onset_stall_events: u64,
    /// Consecutive onset-qualifying samples before an episode opens.
    pub onset_samples: u32,
    /// Consecutive clear-qualifying samples before an episode closes.
    pub clear_samples: u32,
    /// Z-score at/above which a cause signal's deviation from the
    /// episode-free baseline attributes the episode.
    pub z_threshold: f64,
    /// Baseline samples required before z-scores are trusted.
    pub baseline_min_samples: u64,
    /// Episode-table capacity (preallocated; overflow is counted).
    pub max_episodes: usize,
    /// Drops in one sampling window at/above which the flight recorder
    /// fires a drop-burst dump.
    pub drop_burst_threshold: u64,
}

impl TelemetryConfig {
    /// Telemetry off (the default).
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            ..Self::enabled()
        }
    }

    /// Telemetry on with the default cadence and thresholds: 5 µs
    /// sampling (well below the 100 µs Swift host target the paper shows
    /// is too slow), a 4096-sample window, detector hysteresis at
    /// 60%/30% buffer occupancy.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            interval_ns: 5_000,
            ring_capacity: 4096,
            flight_recorder: false,
            flight_dump_samples: 256,
            flight_max_dumps: 8,
            onset_buffer_frac: 0.6,
            clear_buffer_frac: 0.3,
            onset_stall_events: 512,
            onset_samples: 3,
            clear_samples: 5,
            z_threshold: 3.0,
            baseline_min_samples: 16,
            max_episodes: 64,
            drop_burst_threshold: 16,
        }
    }

    /// Override the sampling interval (clamped to ≥ 1 ns).
    pub fn with_interval_ns(mut self, ns: u64) -> Self {
        self.interval_ns = ns.max(1);
        self
    }

    /// Override the retained-sample ring capacity.
    pub fn with_ring_capacity(mut self, cap: usize) -> Self {
        self.ring_capacity = cap.max(1);
        self
    }

    /// Enable the flight recorder.
    pub fn with_flight_recorder(mut self) -> Self {
        self.flight_recorder = true;
        self
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let c = TelemetryConfig::enabled()
            .with_interval_ns(2_500)
            .with_ring_capacity(128)
            .with_flight_recorder();
        assert!(c.enabled && c.flight_recorder);
        assert_eq!(c.interval_ns, 2_500);
        assert_eq!(c.ring_capacity, 128);
        assert!(!TelemetryConfig::default().enabled);
        assert_eq!(
            TelemetryConfig::enabled().with_interval_ns(0).interval_ns,
            1
        );
    }
}
