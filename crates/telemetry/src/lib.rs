//! # hostcc-telemetry
//!
//! Continuous host-congestion telemetry for the hostcc testbed: the
//! paper's argument is that the congestion signals that matter (IOTLB
//! misses per packet, PCIe credit stalls, memory-bandwidth saturation)
//! live *below* the RTT and are never surfaced to the congestion
//! controller. This crate surfaces them, in three layers:
//!
//! 1. **Signal sampler** — a periodic collector (scheduled through the
//!    simulation's own timing wheel, so batched and per-event dispatch
//!    sample identically) of NIC buffer occupancy and drop rate, Rx-ring
//!    availability, PCIe posted-credit stalls, IOTLB hit rate and
//!    walks/packet, memory-controller utilization and queued-read
//!    latency, and per-flow host vs fabric delay. Samples are compact
//!    `Copy` records in a fixed-capacity ring, optionally streamed as
//!    JSONL to a sink so long fleet runs keep bounded telemetry memory.
//! 2. **Episode detector** — online segmentation of the run into
//!    host-congestion episodes (onset/peak/clear, hysteresis on buffer
//!    occupancy, drops and credit stalls), each attributed to a root
//!    cause (IOTLB pressure, memory-bandwidth contention, PCIe credit
//!    starvation, core preemption) by comparing episode signal means
//!    against episode-free Welford baselines via z-scores, with an
//!    absolute-threshold fallback for runs that are congested from the
//!    first sample (no clean baseline ever forms).
//! 3. **Flight recorder** — on drop bursts, fault-window opens or
//!    watchdog stalls, the last N samples are copied into a bounded,
//!    preallocated dump so chaos regressions are diagnosable post-hoc.
//!
//! Everything is bit-deterministic (no wall clock, no RNG, pure f64
//! arithmetic over a deterministic sample stream) and allocation-free at
//! steady state: rings, dump slots and the JSONL line buffer are sized at
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod detector;
mod recorder;
mod sample;

pub use config::TelemetryConfig;
pub use detector::{EpisodeDetector, EpisodeRecord, RootCause};
pub use recorder::{FlightDump, FlightRecorder, TriggerKind};
pub use sample::{SignalInputs, TelemetrySample};

use hostcc_trace::SampleRing;
use std::fmt::Write as _;
use std::io::Write;

/// End-of-run telemetry digest: sample/episode totals plus the episode
/// table itself. `Some` on [`RunMetrics`](index.html) only when telemetry
/// ran, so telemetry-off exports stay byte-identical to pre-telemetry
/// builds.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Samples taken over the run.
    pub samples: u64,
    /// Sampling interval, nanoseconds.
    pub interval_ns: u64,
    /// Detected host-congestion episodes (an episode still open at the
    /// end of the run is closed non-destructively into the summary with
    /// `open = true`).
    pub episodes: Vec<EpisodeRecord>,
    /// Episodes dropped because the episode table was full.
    pub dropped_episodes: u64,
    /// Flight-recorder dumps triggered.
    pub flight_dumps: u64,
    /// The most recent sample (the "final signals" a stall diagnosis
    /// wants).
    pub last: Option<TelemetrySample>,
}

/// The telemetry runtime: sampler + detector + flight recorder. Owned by
/// the testbed; disabled instances cost one branch per hook and schedule
/// no events, so a telemetry-off run is bit-identical to a build without
/// the telemetry layer.
pub struct Telemetry {
    cfg: TelemetryConfig,
    ring: SampleRing<TelemetrySample>,
    detector: EpisodeDetector,
    recorder: FlightRecorder,
    // Lifetime-counter bases from the previous sample: the sampler stores
    // per-window deltas, which is what rates and attribution want.
    base_delivered: u64,
    base_drops: u64,
    base_stalls: u64,
    base_lookups: u64,
    base_misses: u64,
    base_walks: u64,
    // Window accumulators fed by the per-packet / per-ACK hooks.
    win_packets: u64,
    win_host_delay_ns: u64,
    win_cpu_ns: u64,
    win_acks: u64,
    win_fabric_ns: u64,
    samples_taken: u64,
    last: Option<TelemetrySample>,
    /// Streaming JSONL sink (one line per sample, appended incrementally).
    sink: Option<Box<dyn Write + Send>>,
    /// Reusable line buffer for the sink: sized once, never grown on the
    /// steady-state path.
    line_buf: String,
}

impl std::fmt::Debug for Telemetry {
    // Manual: `dyn Write` sinks are not `Debug`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("cfg", &self.cfg)
            .field("samples_taken", &self.samples_taken)
            .field("last", &self.last)
            .field("sink", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A disabled instance: hooks are no-ops, no events are scheduled.
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// Build from a configuration. All storage (sample ring, episode
    /// table, flight-dump slots, JSONL line buffer) is allocated here;
    /// nothing grows afterwards.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let cap = if cfg.enabled {
            cfg.ring_capacity.max(1)
        } else {
            1
        };
        Telemetry {
            ring: SampleRing::new(cap),
            detector: EpisodeDetector::new(&cfg),
            recorder: FlightRecorder::new(&cfg),
            base_delivered: 0,
            base_drops: 0,
            base_stalls: 0,
            base_lookups: 0,
            base_misses: 0,
            base_walks: 0,
            win_packets: 0,
            win_host_delay_ns: 0,
            win_cpu_ns: 0,
            win_acks: 0,
            win_fabric_ns: 0,
            samples_taken: 0,
            last: None,
            sink: None,
            line_buf: String::with_capacity(if cfg.enabled { 640 } else { 0 }),
            cfg,
        }
    }

    /// Whether the sampler is active (hooks and ticks do work).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Sampling interval in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.cfg.interval_ns
    }

    /// The configuration this runtime was built from.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Install a streaming sink: every subsequent sample is appended to
    /// it as one JSONL line. The simulation never reads the sink, so
    /// installing one cannot perturb a run.
    pub fn set_sink(&mut self, sink: Box<dyn Write + Send>) {
        self.sink = Some(sink);
    }

    /// Per-delivered-packet hook (CPU-done time): accumulates the window's
    /// host-delay and CPU-stage sums. `cpu_ns` includes core queueing, so
    /// preemption shows up here.
    #[inline]
    pub fn on_packet(&mut self, host_delay_ns: u64, cpu_ns: u64) {
        self.win_packets += 1;
        self.win_host_delay_ns += host_delay_ns;
        self.win_cpu_ns += cpu_ns;
    }

    /// Per-ACK hook (sender side): `fabric_ns` is the ACK's RTT minus its
    /// echoed host delay — the fabric share of the round trip.
    #[inline]
    pub fn on_ack(&mut self, fabric_ns: u64) {
        self.win_acks += 1;
        self.win_fabric_ns += fabric_ns;
    }

    /// Take one sample at `t_ns` from the given instantaneous gauges and
    /// lifetime counters, run the episode detector, check the drop-burst
    /// flight trigger, and stream the sample if a sink is installed.
    pub fn sample(&mut self, t_ns: u64, inputs: SignalInputs) {
        debug_assert!(self.cfg.enabled);
        let s = TelemetrySample {
            t_ns,
            buffer_occupancy_bytes: inputs.buffer_occupancy_bytes,
            buffer_frac: if inputs.buffer_capacity_bytes > 0 {
                inputs.buffer_occupancy_bytes as f64 / inputs.buffer_capacity_bytes as f64
            } else {
                0.0
            },
            ring_free_slots: inputs.min_ring_free,
            delivered: inputs.delivered_total - self.base_delivered,
            drops: inputs.drops_total - self.base_drops,
            credit_stalls: inputs.credit_stalls_total - self.base_stalls,
            iotlb_lookups: inputs.iotlb_lookups_total - self.base_lookups,
            iotlb_misses: inputs.iotlb_misses_total - self.base_misses,
            walks: inputs.walks_total - self.base_walks,
            packets: self.win_packets,
            host_delay_ns: self.win_host_delay_ns,
            cpu_ns: self.win_cpu_ns,
            acks: self.win_acks,
            fabric_delay_ns: self.win_fabric_ns,
            mem_util: inputs.mem_util,
            mem_latency_ns: inputs.mem_latency_ns,
        };
        self.base_delivered = inputs.delivered_total;
        self.base_drops = inputs.drops_total;
        self.base_stalls = inputs.credit_stalls_total;
        self.base_lookups = inputs.iotlb_lookups_total;
        self.base_misses = inputs.iotlb_misses_total;
        self.base_walks = inputs.walks_total;
        self.win_packets = 0;
        self.win_host_delay_ns = 0;
        self.win_cpu_ns = 0;
        self.win_acks = 0;
        self.win_fabric_ns = 0;

        self.ring.push(s);
        self.samples_taken += 1;
        self.detector.on_sample(&s);
        if s.drops >= self.cfg.drop_burst_threshold {
            self.recorder
                .trigger(TriggerKind::DropBurst, t_ns, &self.ring);
        }
        self.last = Some(s);
        self.stream(&s);
    }

    /// Fault-window-open hook (`hostcc-faults` integration): snapshot the
    /// telemetry leading into the window.
    pub fn on_fault_window(&mut self, t_ns: u64) {
        if self.cfg.enabled {
            self.recorder
                .trigger(TriggerKind::FaultWindow, t_ns, &self.ring);
        }
    }

    /// Watchdog-stall hook: dump the samples leading into the stall so
    /// the trip is diagnosable without re-running.
    pub fn on_stall(&mut self, t_ns: u64) {
        if self.cfg.enabled {
            self.recorder.trigger(TriggerKind::Stall, t_ns, &self.ring);
        }
    }

    /// The most recent sample (the final signals, for stall diagnosis).
    pub fn last_sample(&self) -> Option<TelemetrySample> {
        self.last
    }

    /// Samples taken over the run so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// The retained sample window, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TelemetrySample> {
        self.ring.iter()
    }

    /// The episode detector (closed episodes so far).
    pub fn detector(&self) -> &EpisodeDetector {
        &self.detector
    }

    /// The flight recorder's captured dumps.
    pub fn flight_dumps(&self) -> &[FlightDump] {
        self.recorder.dumps()
    }

    /// Build the end-of-run summary. Non-destructive: an episode still
    /// open at `end_ns` is closed *in the summary copy only*, so calling
    /// this twice yields identical results.
    pub fn summary(&self, end_ns: u64) -> TelemetrySummary {
        let mut episodes = self.detector.episodes().to_vec();
        if let Some(open) = self.detector.open_episode(end_ns) {
            if episodes.len() < self.cfg.max_episodes {
                episodes.push(open);
            }
        }
        TelemetrySummary {
            samples: self.samples_taken,
            interval_ns: self.cfg.interval_ns,
            episodes,
            dropped_episodes: self.detector.dropped_episodes(),
            flight_dumps: self.recorder.triggered(),
            last: self.last,
        }
    }

    /// Serialize the full telemetry runtime: retained ring, detector,
    /// flight recorder, counter bases and window accumulators. The sink is
    /// *not* serialized — the caller re-installs it after restore, and the
    /// stream resumes exactly where the checkpointed run's sink left off.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        self.ring.save_with(w, |s, w| s.save_state(w));
        self.detector.save_state(w);
        self.recorder.save_state(w);
        w.u64(self.base_delivered);
        w.u64(self.base_drops);
        w.u64(self.base_stalls);
        w.u64(self.base_lookups);
        w.u64(self.base_misses);
        w.u64(self.base_walks);
        w.u64(self.win_packets);
        w.u64(self.win_host_delay_ns);
        w.u64(self.win_cpu_ns);
        w.u64(self.win_acks);
        w.u64(self.win_fabric_ns);
        w.u64(self.samples_taken);
        w.opt(&self.last, |s, w| s.save_state(w));
    }

    /// Restore into a runtime rebuilt from the same configuration. The
    /// ring capacity must match. A decode error part-way through can leave
    /// the detector/recorder already restored; callers discard the whole
    /// testbed on any restore error, so no mixed state is ever observed.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let ring = SampleRing::load_with(r, TelemetrySample::load_state)?;
        if ring.capacity() != self.ring.capacity() {
            return Err(SnapError::Corrupt("telemetry ring capacity mismatch"));
        }
        self.detector.load_state(r)?;
        self.recorder.load_state(r)?;
        self.ring = ring;
        self.base_delivered = r.u64()?;
        self.base_drops = r.u64()?;
        self.base_stalls = r.u64()?;
        self.base_lookups = r.u64()?;
        self.base_misses = r.u64()?;
        self.base_walks = r.u64()?;
        self.win_packets = r.u64()?;
        self.win_host_delay_ns = r.u64()?;
        self.win_cpu_ns = r.u64()?;
        self.win_acks = r.u64()?;
        self.win_fabric_ns = r.u64()?;
        self.samples_taken = r.u64()?;
        self.last = r.opt(TelemetrySample::load_state)?;
        Ok(())
    }

    /// Append one JSONL line for `s` to the sink, if any. Uses the
    /// preallocated line buffer; the steady-state path allocates nothing.
    fn stream(&mut self, s: &TelemetrySample) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let b = &mut self.line_buf;
        b.clear();
        let _ = writeln!(
            b,
            "{{\"t_ns\":{},\"buffer_bytes\":{},\"buffer_frac\":{:.6},\"ring_free\":{},\
             \"delivered\":{},\"drops\":{},\"credit_stalls\":{},\
             \"iotlb_lookups\":{},\"iotlb_misses\":{},\"walks\":{},\
             \"packets\":{},\"host_delay_ns\":{},\"cpu_ns\":{},\
             \"acks\":{},\"fabric_delay_ns\":{},\
             \"mem_util\":{:.6},\"mem_latency_ns\":{:.3}}}",
            s.t_ns,
            s.buffer_occupancy_bytes,
            s.buffer_frac,
            s.ring_free_slots,
            s.delivered,
            s.drops,
            s.credit_stalls,
            s.iotlb_lookups,
            s.iotlb_misses,
            s.walks,
            s.packets,
            s.host_delay_ns,
            s.cpu_ns,
            s.acks,
            s.fabric_delay_ns,
            s.mem_util,
            s.mem_latency_ns,
        );
        let _ = sink.write_all(b.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm(t_ns: u64) -> SignalInputs {
        SignalInputs {
            buffer_occupancy_bytes: 1024,
            buffer_capacity_bytes: 1 << 20,
            min_ring_free: 100,
            delivered_total: t_ns / 1000,
            drops_total: 0,
            credit_stalls_total: 0,
            iotlb_lookups_total: t_ns / 250,
            iotlb_misses_total: 0,
            walks_total: 0,
            mem_util: 0.2,
            mem_latency_ns: 90.0,
        }
    }

    #[test]
    fn disabled_instance_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.samples_taken(), 0);
        assert!(t.last_sample().is_none());
        let s = t.summary(1_000);
        assert_eq!(s.samples, 0);
        assert!(s.episodes.is_empty());
    }

    #[test]
    fn sampler_stores_window_deltas() {
        let mut t = Telemetry::new(TelemetryConfig::enabled());
        t.on_packet(10_000, 3_000);
        t.on_packet(12_000, 3_000);
        t.on_ack(8_000);
        t.sample(5_000, calm(5_000));
        let s = t.last_sample().unwrap();
        assert_eq!(s.packets, 2);
        assert_eq!(s.host_delay_ns, 22_000);
        assert_eq!(s.acks, 1);
        assert_eq!(s.delivered, 5);
        // Second window: deltas restart from the new bases.
        t.sample(10_000, calm(10_000));
        let s = t.last_sample().unwrap();
        assert_eq!(s.packets, 0);
        assert_eq!(s.delivered, 5);
        assert_eq!(t.samples_taken(), 2);
    }

    #[test]
    fn sink_receives_one_json_line_per_sample() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut t = Telemetry::new(TelemetryConfig::enabled());
        t.set_sink(Box::new(buf.clone()));
        t.sample(1_000, calm(1_000));
        t.sample(2_000, calm(2_000));
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = hostcc_trace::json::parse(line).expect("JSONL line parses");
            assert!(v.get("t_ns").is_some());
            assert!(v.get("buffer_frac").is_some());
        }
    }

    #[test]
    fn summary_is_idempotent() {
        let mut t = Telemetry::new(TelemetryConfig::enabled());
        for i in 1..20 {
            t.sample(i * 1_000, calm(i * 1_000));
        }
        assert_eq!(t.summary(20_000), t.summary(20_000));
    }
}
