//! The compact per-interval telemetry sample and the gauge/counter
//! bundle the world hands the sampler at each tick.

/// Instantaneous gauges plus lifetime counters read from the datapath at
/// one sampling tick. The sampler differences the lifetime counters
/// against the previous tick's values, so callers pass raw totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalInputs {
    /// NIC input-buffer occupancy, bytes (gauge).
    pub buffer_occupancy_bytes: u64,
    /// NIC input-buffer capacity, bytes (constant).
    pub buffer_capacity_bytes: u64,
    /// Minimum free Rx-descriptor slots across receiver queues (gauge).
    pub min_ring_free: u32,
    /// Packets delivered, lifetime.
    pub delivered_total: u64,
    /// Host drops (buffer overflow + descriptor starvation), lifetime.
    pub drops_total: u64,
    /// PCIe posted-credit stall events, lifetime.
    pub credit_stalls_total: u64,
    /// IOTLB lookups, lifetime.
    pub iotlb_lookups_total: u64,
    /// IOTLB misses, lifetime.
    pub iotlb_misses_total: u64,
    /// Page-walk memory accesses, lifetime.
    pub walks_total: u64,
    /// Memory-controller utilization in [0, 1] (gauge).
    pub mem_util: f64,
    /// Queued-read memory latency, nanoseconds (gauge).
    pub mem_latency_ns: f64,
}

/// One telemetry sample: gauges at the tick instant plus deltas/sums over
/// the window since the previous tick. `Copy` and compact so the ring
/// and flight dumps shuttle plain words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// Sample time, nanoseconds.
    pub t_ns: u64,
    /// NIC input-buffer occupancy, bytes.
    pub buffer_occupancy_bytes: u64,
    /// Occupancy over capacity, in [0, 1].
    pub buffer_frac: f64,
    /// Minimum free Rx-descriptor slots across receiver queues.
    pub ring_free_slots: u32,
    /// Packets delivered in the window.
    pub delivered: u64,
    /// Host drops in the window.
    pub drops: u64,
    /// PCIe posted-credit stall events in the window.
    pub credit_stalls: u64,
    /// IOTLB lookups in the window.
    pub iotlb_lookups: u64,
    /// IOTLB misses in the window.
    pub iotlb_misses: u64,
    /// Page-walk memory accesses in the window.
    pub walks: u64,
    /// Packets that completed receiver-stack processing in the window.
    pub packets: u64,
    /// Sum of host delay over those packets, ns.
    pub host_delay_ns: u64,
    /// Sum of the CPU stage (core queueing + processing) over those
    /// packets, ns — preemption inflates this.
    pub cpu_ns: u64,
    /// ACKs consumed at senders in the window.
    pub acks: u64,
    /// Sum of fabric delay (RTT minus echoed host delay) over those
    /// ACKs, ns.
    pub fabric_delay_ns: u64,
    /// Memory-controller utilization in [0, 1].
    pub mem_util: f64,
    /// Queued-read memory latency, ns.
    pub mem_latency_ns: f64,
}

impl TelemetrySample {
    /// Page-walk accesses per processed packet (0 when idle).
    pub fn walks_per_packet(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.walks as f64 / self.packets as f64
    }

    /// IOTLB miss rate over the window's lookups (0 when idle).
    pub fn iotlb_miss_rate(&self) -> f64 {
        if self.iotlb_lookups == 0 {
            return 0.0;
        }
        self.iotlb_misses as f64 / self.iotlb_lookups as f64
    }

    /// Mean host delay over the window's packets, ns.
    pub fn mean_host_delay_ns(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.host_delay_ns as f64 / self.packets as f64
    }

    /// Mean CPU-stage time per packet, ns.
    pub fn cpu_ns_per_packet(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.cpu_ns as f64 / self.packets as f64
    }

    /// Mean fabric delay over the window's ACKs, ns.
    pub fn mean_fabric_delay_ns(&self) -> f64 {
        if self.acks == 0 {
            return 0.0;
        }
        self.fabric_delay_ns as f64 / self.acks as f64
    }

    /// Serialize the sample (all 17 fields, in declaration order).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.t_ns);
        w.u64(self.buffer_occupancy_bytes);
        w.f64(self.buffer_frac);
        w.u32(self.ring_free_slots);
        w.u64(self.delivered);
        w.u64(self.drops);
        w.u64(self.credit_stalls);
        w.u64(self.iotlb_lookups);
        w.u64(self.iotlb_misses);
        w.u64(self.walks);
        w.u64(self.packets);
        w.u64(self.host_delay_ns);
        w.u64(self.cpu_ns);
        w.u64(self.acks);
        w.u64(self.fabric_delay_ns);
        w.f64(self.mem_util);
        w.f64(self.mem_latency_ns);
    }

    /// Rebuild a sample from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        Ok(TelemetrySample {
            t_ns: r.u64()?,
            buffer_occupancy_bytes: r.u64()?,
            buffer_frac: r.f64()?,
            ring_free_slots: r.u32()?,
            delivered: r.u64()?,
            drops: r.u64()?,
            credit_stalls: r.u64()?,
            iotlb_lookups: r.u64()?,
            iotlb_misses: r.u64()?,
            walks: r.u64()?,
            packets: r.u64()?,
            host_delay_ns: r.u64()?,
            cpu_ns: r.u64()?,
            acks: r.u64()?,
            fabric_delay_ns: r.u64()?,
            mem_util: r.f64()?,
            mem_latency_ns: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_handle_idle_windows() {
        let mut s = TelemetrySample {
            t_ns: 0,
            buffer_occupancy_bytes: 0,
            buffer_frac: 0.0,
            ring_free_slots: 0,
            delivered: 0,
            drops: 0,
            credit_stalls: 0,
            iotlb_lookups: 0,
            iotlb_misses: 0,
            walks: 0,
            packets: 0,
            host_delay_ns: 0,
            cpu_ns: 0,
            acks: 0,
            fabric_delay_ns: 0,
            mem_util: 0.0,
            mem_latency_ns: 0.0,
        };
        assert_eq!(s.walks_per_packet(), 0.0);
        assert_eq!(s.iotlb_miss_rate(), 0.0);
        assert_eq!(s.mean_fabric_delay_ns(), 0.0);
        s.packets = 4;
        s.walks = 24;
        s.cpu_ns = 8_000;
        s.host_delay_ns = 40_000;
        s.iotlb_lookups = 16;
        s.iotlb_misses = 4;
        s.acks = 2;
        s.fabric_delay_ns = 9_000;
        assert_eq!(s.walks_per_packet(), 6.0);
        assert_eq!(s.iotlb_miss_rate(), 0.25);
        assert_eq!(s.cpu_ns_per_packet(), 2_000.0);
        assert_eq!(s.mean_host_delay_ns(), 10_000.0);
        assert_eq!(s.mean_fabric_delay_ns(), 4_500.0);
    }
}
