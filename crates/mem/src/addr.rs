//! Address types and page geometry.
//!
//! The simulator distinguishes three address spaces, mirroring Figure 2 of
//! the paper: the *I/O virtual address* (IOVA) the NIC uses in DMA requests,
//! the *physical address* (PA) the memory controller sees, and (for
//! completeness of the host model) CPU virtual addresses. Newtypes prevent
//! the classic bug of feeding an untranslated address to the memory system.

use core::fmt;

/// An I/O virtual address: what the NIC writes into PCIe transactions when
/// memory protection (the IOMMU) is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Iova(pub u64);

/// A host physical address: what the memory controller services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl Iova {
    /// Raw address value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Offset this address by `off` bytes.
    #[inline]
    pub const fn add(self, off: u64) -> Iova {
        Iova(self.0 + off)
    }

    /// The page number of this address for the given page size.
    #[inline]
    pub const fn page_number(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Round down to the containing page boundary.
    #[inline]
    pub const fn page_base(self, size: PageSize) -> Iova {
        Iova(self.0 & !(size.bytes() - 1))
    }

    /// Byte offset within the containing page.
    #[inline]
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }
}

impl PhysAddr {
    /// Raw address value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Offset this address by `off` bytes.
    #[inline]
    pub const fn add(self, off: u64) -> PhysAddr {
        PhysAddr(self.0 + off)
    }
}

impl fmt::Display for Iova {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iova:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

/// Page sizes supported by the I/O page table (x86-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageSize {
    /// 4 KiB base pages.
    Size4K,
    /// 2 MiB hugepages (PD-level leaf).
    Size2M,
    /// 1 GiB gigantic pages (PDPT-level leaf).
    Size1G,
}

impl PageSize {
    /// log2 of the page size in bytes.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1u64 << self.shift()
    }

    /// Number of pages of this size needed to cover `len` bytes.
    #[inline]
    pub const fn pages_for(self, len: u64) -> u64 {
        len.div_ceil(self.bytes())
    }

    /// Depth of the page-table walk for a leaf of this size in a 4-level
    /// x86-style table: number of table levels visited (root included).
    ///
    /// 4 KiB leaves sit at the PT level (walk of 4), 2 MiB at the PD level
    /// (walk of 3), 1 GiB at the PDPT level (walk of 2).
    #[inline]
    pub const fn walk_levels(self) -> u32 {
        match self {
            PageSize::Size4K => 4,
            PageSize::Size2M => 3,
            PageSize::Size1G => 2,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4K"),
            PageSize::Size2M => write!(f, "2M"),
            PageSize::Size1G => write!(f, "1G"),
        }
    }
}

/// Align `x` up to `align` (power of two).
#[inline]
pub const fn align_up(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

/// Align `x` down to `align` (power of two).
#[inline]
pub const fn align_down(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    x & !(align - 1)
}

/// Enumerate the page numbers a byte range `[addr, addr+len)` touches.
///
/// This is what determines how many IOTLB lookups a DMA needs: a 4 KiB MTU
/// packet aligned to a 4 KiB buffer touches one 4 KiB page, but the paper
/// notes that with 4 KiB pages a packet's payload commonly straddles two.
pub fn pages_touched(addr: Iova, len: u64, size: PageSize) -> impl Iterator<Item = u64> {
    let first = addr.page_number(size);
    let last = if len == 0 {
        first
    } else {
        addr.add(len - 1).page_number(size)
    };
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_constants() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Size1G.bytes(), 1024 * 1024 * 1024);
        assert_eq!(PageSize::Size4K.walk_levels(), 4);
        assert_eq!(PageSize::Size2M.walk_levels(), 3);
        assert_eq!(PageSize::Size1G.walk_levels(), 2);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(PageSize::Size4K.pages_for(0), 0);
        assert_eq!(PageSize::Size4K.pages_for(1), 1);
        assert_eq!(PageSize::Size4K.pages_for(4096), 1);
        assert_eq!(PageSize::Size4K.pages_for(4097), 2);
        assert_eq!(PageSize::Size2M.pages_for(12 << 20), 6);
    }

    #[test]
    fn page_number_and_base() {
        let a = Iova(0x3_5678);
        assert_eq!(a.page_number(PageSize::Size4K), 0x35);
        assert_eq!(a.page_base(PageSize::Size4K), Iova(0x3_5000));
        assert_eq!(a.page_offset(PageSize::Size4K), 0x678);
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(align_up(0, 4096), 0);
        assert_eq!(align_up(1, 4096), 4096);
        assert_eq!(align_up(4096, 4096), 4096);
        assert_eq!(align_down(4097, 4096), 4096);
    }

    #[test]
    fn pages_touched_single_and_straddle() {
        // Aligned 4K write touches exactly one page.
        let v: Vec<u64> = pages_touched(Iova(0x1000), 4096, PageSize::Size4K).collect();
        assert_eq!(v, [1]);
        // Unaligned write straddles two pages (the Fig. 4 effect).
        let v: Vec<u64> = pages_touched(Iova(0x1800), 4096, PageSize::Size4K).collect();
        assert_eq!(v, [1, 2]);
        // A 4K write within a 2M hugepage touches one hugepage.
        let v: Vec<u64> = pages_touched(Iova(0x1800), 4096, PageSize::Size2M).collect();
        assert_eq!(v, [0]);
        // Zero-length touches its containing page only.
        let v: Vec<u64> = pages_touched(Iova(0x1000), 0, PageSize::Size4K).collect();
        assert_eq!(v, [1]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Iova(0x10)), "iova:0x10");
        assert_eq!(format!("{}", PhysAddr(0x20)), "pa:0x20");
        assert_eq!(format!("{}", PageSize::Size2M), "2M");
    }
}
