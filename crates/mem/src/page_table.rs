//! An x86-style 4-level I/O page table.
//!
//! This is the structure the IOMMU walks on an IOTLB miss. We model it as a
//! real radix tree (512-entry tables, 9 bits per level) rather than a flat
//! map so that walk depth, partially-cached walks (page-walk caches) and
//! mapping-size effects fall out mechanistically.
//!
//! Level numbering follows hardware convention: level 4 = PML4 (root),
//! level 3 = PDPT, level 2 = PD, level 1 = PT. A 2 MiB mapping is a leaf at
//! level 2; a 4 KiB mapping is a leaf at level 1.

use crate::addr::{Iova, PageSize, PhysAddr};

const ENTRIES: usize = 512;
const LEVEL_BITS: u32 = 9;

/// Why a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No mapping present for this IOVA.
    NotMapped,
}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The translated physical address (page base + offset).
    pub pa: PhysAddr,
    /// Size of the leaf mapping that matched.
    pub page_size: PageSize,
    /// Number of table levels a *full* walk visits to reach this leaf
    /// (4 for 4 KiB leaves, 3 for 2 MiB, 2 for 1 GiB). Each visited level is
    /// one memory access unless served by a page-walk cache.
    pub walk_levels: u32,
}

#[derive(Debug)]
enum Entry {
    Table(Box<Table>),
    Leaf { pa: PhysAddr, size: PageSize },
}

#[derive(Debug)]
struct Table {
    slots: Vec<Option<Entry>>,
}

impl Table {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(ENTRIES);
        slots.resize_with(ENTRIES, || None);
        Table { slots }
    }
}

/// Index into the table at `level` (4..=1) for address `iova`.
#[inline]
fn index_at(iova: Iova, level: u32) -> usize {
    debug_assert!((1..=4).contains(&level));
    let shift = 12 + LEVEL_BITS * (level - 1);
    ((iova.as_u64() >> shift) & (ENTRIES as u64 - 1)) as usize
}

/// Leaf level for a page size: 1 for 4K, 2 for 2M, 3 for 1G.
#[inline]
fn leaf_level(size: PageSize) -> u32 {
    match size {
        PageSize::Size4K => 1,
        PageSize::Size2M => 2,
        PageSize::Size1G => 3,
    }
}

/// Errors from map/unmap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// IOVA is not aligned to the mapping's page size.
    Misaligned,
    /// The range (or part of it) is already mapped.
    AlreadyMapped,
    /// Attempted to unmap an address that is not mapped.
    NotMapped,
}

/// The I/O page table for one IOMMU domain.
#[derive(Debug)]
pub struct IoPageTable {
    root: Table,
    mapped_pages: u64,
    mapped_bytes: u64,
}

impl Default for IoPageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl IoPageTable {
    /// An empty page table (nothing mapped).
    pub fn new() -> Self {
        IoPageTable {
            root: Table::new(),
            mapped_pages: 0,
            mapped_bytes: 0,
        }
    }

    /// Number of leaf mappings currently installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Total bytes covered by installed mappings.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_bytes
    }

    /// Install a single page mapping of the given size.
    pub fn map(&mut self, iova: Iova, pa: PhysAddr, size: PageSize) -> Result<(), MapError> {
        if iova.page_offset(size) != 0 || pa.as_u64() & (size.bytes() - 1) != 0 {
            return Err(MapError::Misaligned);
        }
        let target = leaf_level(size);
        let mut table = &mut self.root;
        let mut level = 4;
        while level > target {
            let idx = index_at(iova, level);
            let slot = &mut table.slots[idx];
            match slot {
                Some(Entry::Leaf { .. }) => return Err(MapError::AlreadyMapped),
                Some(Entry::Table(_)) => {}
                None => *slot = Some(Entry::Table(Box::new(Table::new()))),
            }
            table = match slot.as_mut().unwrap() {
                Entry::Table(t) => t,
                Entry::Leaf { .. } => unreachable!(),
            };
            level -= 1;
        }
        let idx = index_at(iova, target);
        if table.slots[idx].is_some() {
            return Err(MapError::AlreadyMapped);
        }
        table.slots[idx] = Some(Entry::Leaf { pa, size });
        self.mapped_pages += 1;
        self.mapped_bytes += size.bytes();
        Ok(())
    }

    /// Map a contiguous range `[iova, iova+len)` to `[pa, pa+len)` using
    /// pages of `size`. `len` is rounded up to a whole number of pages.
    pub fn map_range(
        &mut self,
        iova: Iova,
        pa: PhysAddr,
        len: u64,
        size: PageSize,
    ) -> Result<u64, MapError> {
        let pages = size.pages_for(len);
        for i in 0..pages {
            let off = i * size.bytes();
            self.map(iova.add(off), pa.add(off), size)?;
        }
        Ok(pages)
    }

    /// Translate an IOVA. Pure lookup: cost modelling lives in the IOMMU.
    pub fn translate(&self, iova: Iova) -> Result<Translation, Fault> {
        let mut table = &self.root;
        let mut level = 4;
        loop {
            let idx = index_at(iova, level);
            match table.slots[idx].as_ref() {
                None => return Err(Fault::NotMapped),
                Some(Entry::Leaf { pa, size }) => {
                    let off = iova.page_offset(*size);
                    return Ok(Translation {
                        pa: pa.add(off),
                        page_size: *size,
                        walk_levels: size.walk_levels(),
                    });
                }
                Some(Entry::Table(t)) => {
                    debug_assert!(level > 1, "table entry at PT level");
                    table = t;
                    level -= 1;
                }
            }
        }
    }

    /// Remove the mapping containing `iova`.
    pub fn unmap(&mut self, iova: Iova) -> Result<PageSize, MapError> {
        // Walk down remembering the path; then clear the leaf.
        fn go(table: &mut Table, iova: Iova, level: u32) -> Result<PageSize, MapError> {
            let idx = index_at(iova, level);
            match table.slots[idx].as_mut() {
                None => Err(MapError::NotMapped),
                Some(Entry::Leaf { size, .. }) => {
                    let s = *size;
                    table.slots[idx] = None;
                    Ok(s)
                }
                Some(Entry::Table(t)) => {
                    if level == 1 {
                        return Err(MapError::NotMapped);
                    }
                    go(t, iova, level - 1)
                }
            }
        }
        let size = go(&mut self.root, iova, 4)?;
        self.mapped_pages -= 1;
        self.mapped_bytes -= size.bytes();
        Ok(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_4k() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0x10_0000), PhysAddr(0x5000_0000), PageSize::Size4K)
            .unwrap();
        let t = pt.translate(Iova(0x10_0abc)).unwrap();
        assert_eq!(t.pa, PhysAddr(0x5000_0abc));
        assert_eq!(t.page_size, PageSize::Size4K);
        assert_eq!(t.walk_levels, 4);
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.mapped_bytes(), 4096);
    }

    #[test]
    fn map_translate_2m_hugepage() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0x20_0000), PhysAddr(0x4000_0000), PageSize::Size2M)
            .unwrap();
        let t = pt.translate(Iova(0x20_0000 + 0x12_345)).unwrap();
        assert_eq!(t.pa, PhysAddr(0x4000_0000 + 0x12_345));
        assert_eq!(t.page_size, PageSize::Size2M);
        assert_eq!(t.walk_levels, 3);
    }

    #[test]
    fn unmapped_faults() {
        let pt = IoPageTable::new();
        assert_eq!(pt.translate(Iova(0x1234)), Err(Fault::NotMapped));
    }

    #[test]
    fn misaligned_map_rejected() {
        let mut pt = IoPageTable::new();
        assert_eq!(
            pt.map(Iova(0x100), PhysAddr(0), PageSize::Size4K),
            Err(MapError::Misaligned)
        );
        assert_eq!(
            pt.map(Iova(0x1000), PhysAddr(0x800), PageSize::Size4K),
            Err(MapError::Misaligned)
        );
        assert_eq!(
            pt.map(Iova(0x1000), PhysAddr(0), PageSize::Size2M),
            Err(MapError::Misaligned)
        );
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0x1000), PhysAddr(0x1000), PageSize::Size4K)
            .unwrap();
        assert_eq!(
            pt.map(Iova(0x1000), PhysAddr(0x2000), PageSize::Size4K),
            Err(MapError::AlreadyMapped)
        );
    }

    #[test]
    fn map_range_covers_and_counts() {
        let mut pt = IoPageTable::new();
        let pages = pt
            .map_range(Iova(0), PhysAddr(0x1000_0000), 12 << 20, PageSize::Size2M)
            .unwrap();
        assert_eq!(pages, 6);
        assert_eq!(pt.mapped_pages(), 6);
        // Every byte of the 12 MiB range translates.
        for off in [0u64, 1 << 20, (12 << 20) - 1] {
            let t = pt.translate(Iova(off)).unwrap();
            assert_eq!(t.pa, PhysAddr(0x1000_0000 + off));
        }
        // One byte past the end faults.
        assert!(pt.translate(Iova(12 << 20)).is_err());
    }

    #[test]
    fn unmap_removes_only_target() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0x1000), PhysAddr(0x1000), PageSize::Size4K)
            .unwrap();
        pt.map(Iova(0x2000), PhysAddr(0x2000), PageSize::Size4K)
            .unwrap();
        assert_eq!(pt.unmap(Iova(0x1fff)), Ok(PageSize::Size4K));
        assert!(pt.translate(Iova(0x1000)).is_err());
        assert!(pt.translate(Iova(0x2000)).is_ok());
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.unmap(Iova(0x1000)), Err(MapError::NotMapped));
    }

    #[test]
    fn mixed_page_sizes_coexist() {
        let mut pt = IoPageTable::new();
        // 2M mapping at 0x4000_0000, 4K mappings right after it.
        pt.map(Iova(0x4000_0000), PhysAddr(0x8000_0000), PageSize::Size2M)
            .unwrap();
        pt.map(Iova(0x4020_0000), PhysAddr(0x9000_0000), PageSize::Size4K)
            .unwrap();
        assert_eq!(
            pt.translate(Iova(0x4000_0000)).unwrap().page_size,
            PageSize::Size2M
        );
        assert_eq!(
            pt.translate(Iova(0x4020_0000)).unwrap().page_size,
            PageSize::Size4K
        );
    }

    #[test]
    fn distant_iovas_use_separate_subtrees() {
        let mut pt = IoPageTable::new();
        // These differ in the PML4 index (bit 39+).
        pt.map(Iova(0), PhysAddr(0), PageSize::Size4K).unwrap();
        pt.map(Iova(1 << 40), PhysAddr(0x10_0000), PageSize::Size4K)
            .unwrap();
        assert_eq!(pt.translate(Iova(5)).unwrap().pa, PhysAddr(5));
        assert_eq!(
            pt.translate(Iova((1 << 40) + 5)).unwrap().pa,
            PhysAddr(0x10_0005)
        );
    }
}
