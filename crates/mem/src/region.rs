//! Registered memory regions and simple address-space allocators.
//!
//! In the paper's setup (§3.1) each receiver thread registers a fixed-size
//! memory region with the IOMMU up front ("loose mode") and keeps the
//! mapping alive, so the number of live IOMMU entries scales with
//! `threads × region_size / page_size`. The [`RegionRegistry`] reproduces
//! exactly that: it allocates IOVA and physical ranges and installs the
//! mappings into an [`IoPageTable`].

use crate::addr::{align_up, Iova, PageSize, PhysAddr};
use crate::page_table::{IoPageTable, MapError};

/// Bump allocator for I/O virtual address space.
///
/// Real IOMMU drivers allocate IOVAs from per-domain ranges; a bump
/// allocator reproduces the property that matters here — distinct regions
/// occupy disjoint, mostly-contiguous ranges.
#[derive(Debug)]
pub struct IovaAllocator {
    next: u64,
}

impl IovaAllocator {
    /// Start allocating at `base` (commonly 0 or a device-specific offset).
    pub fn new(base: u64) -> Self {
        IovaAllocator { next: base }
    }

    /// Allocate `len` bytes aligned to `align` (power of two).
    pub fn alloc(&mut self, len: u64, align: u64) -> Iova {
        let base = align_up(self.next, align);
        self.next = base + len;
        Iova(base)
    }

    /// Highest address handed out so far (exclusive).
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

/// Bump allocator for simulated physical memory.
#[derive(Debug)]
pub struct PhysAllocator {
    next: u64,
    limit: u64,
}

impl PhysAllocator {
    /// Physical memory `[base, base+size)`.
    pub fn new(base: u64, size: u64) -> Self {
        PhysAllocator {
            next: base,
            limit: base + size,
        }
    }

    /// Allocate `len` bytes aligned to `align`; `None` when out of memory.
    pub fn alloc(&mut self, len: u64, align: u64) -> Option<PhysAddr> {
        let base = align_up(self.next, align);
        if base + len > self.limit {
            return None;
        }
        self.next = base + len;
        Some(PhysAddr(base))
    }

    /// Bytes still available (ignoring alignment padding).
    pub fn remaining(&self) -> u64 {
        self.limit - self.next
    }
}

/// Identifier of a registered region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub u32);

/// A region of memory registered with the IOMMU for DMA.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    /// Registry-assigned identifier.
    pub id: RegionId,
    /// Owning receiver thread (or u32::MAX for shared/control regions).
    pub owner_thread: u32,
    /// First IOVA of the region.
    pub iova_base: Iova,
    /// First physical address backing the region.
    pub pa_base: PhysAddr,
    /// Region length in bytes (whole pages).
    pub len: u64,
    /// Mapping granularity the region was registered with.
    pub page_size: PageSize,
}

impl MemoryRegion {
    /// Number of page-table entries this region pins in the IOMMU.
    pub fn page_count(&self) -> u64 {
        self.page_size.pages_for(self.len)
    }

    /// Whether `iova` falls inside this region.
    pub fn contains(&self, iova: Iova) -> bool {
        let a = iova.as_u64();
        a >= self.iova_base.as_u64() && a < self.iova_base.as_u64() + self.len
    }
}

/// Errors from region registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// Simulated physical memory exhausted.
    OutOfMemory,
    /// Page-table mapping failed (overlap or alignment bug).
    Map(MapError),
}

/// Registers regions: allocates IOVA + PA space and installs mappings.
#[derive(Debug)]
pub struct RegionRegistry {
    iova: IovaAllocator,
    phys: PhysAllocator,
    regions: Vec<MemoryRegion>,
}

impl RegionRegistry {
    /// `phys_size` bounds the simulated DRAM used for DMA buffers.
    pub fn new(phys_size: u64) -> Self {
        RegionRegistry {
            // Leave IOVA 0 unused so "null" addresses are never valid.
            iova: IovaAllocator::new(PageSize::Size2M.bytes()),
            phys: PhysAllocator::new(PageSize::Size2M.bytes(), phys_size),
            regions: Vec::new(),
        }
    }

    /// Register a region of `len` bytes (rounded up to whole pages) mapped
    /// with pages of `page_size`, installing the mappings in `table`.
    pub fn register(
        &mut self,
        table: &mut IoPageTable,
        owner_thread: u32,
        len: u64,
        page_size: PageSize,
    ) -> Result<MemoryRegion, RegionError> {
        let len = align_up(len.max(1), page_size.bytes());
        let iova_base = self.iova.alloc(len, page_size.bytes());
        let pa_base = self
            .phys
            .alloc(len, page_size.bytes())
            .ok_or(RegionError::OutOfMemory)?;
        table
            .map_range(iova_base, pa_base, len, page_size)
            .map_err(RegionError::Map)?;
        let region = MemoryRegion {
            id: RegionId(self.regions.len() as u32),
            owner_thread,
            iova_base,
            pa_base,
            len,
            page_size,
        };
        self.regions.push(region.clone());
        Ok(region)
    }

    /// All regions registered so far, in registration order.
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// Total IOMMU page-table entries pinned by all registered regions.
    pub fn total_pinned_pages(&self) -> u64 {
        self.regions.iter().map(|r| r.page_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iova_allocator_aligns_and_advances() {
        let mut a = IovaAllocator::new(0x1000);
        let r1 = a.alloc(100, 4096);
        assert_eq!(r1, Iova(0x1000));
        let r2 = a.alloc(100, 4096);
        assert_eq!(r2, Iova(0x2000));
        assert_eq!(a.high_water(), 0x2064);
    }

    #[test]
    fn phys_allocator_respects_limit() {
        let mut a = PhysAllocator::new(0, 8192);
        assert_eq!(a.alloc(4096, 4096), Some(PhysAddr(0)));
        assert_eq!(a.alloc(4096, 4096), Some(PhysAddr(4096)));
        assert_eq!(a.alloc(1, 1), None);
        assert_eq!(a.remaining(), 0);
    }

    #[test]
    fn register_installs_translations() {
        let mut table = IoPageTable::new();
        let mut reg = RegionRegistry::new(1 << 30);
        let r = reg
            .register(&mut table, 0, 12 << 20, PageSize::Size2M)
            .unwrap();
        assert_eq!(r.page_count(), 6);
        assert_eq!(reg.total_pinned_pages(), 6);
        // Translation works across the whole region and matches offsets.
        let t = table.translate(r.iova_base.add(5 << 20)).unwrap();
        assert_eq!(t.pa, r.pa_base.add(5 << 20));
        assert!(r.contains(r.iova_base));
        assert!(r.contains(r.iova_base.add(r.len - 1)));
        assert!(!r.contains(r.iova_base.add(r.len)));
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut table = IoPageTable::new();
        let mut reg = RegionRegistry::new(1 << 30);
        let a = reg
            .register(&mut table, 0, 4 << 20, PageSize::Size2M)
            .unwrap();
        let b = reg
            .register(&mut table, 1, 4 << 20, PageSize::Size4K)
            .unwrap();
        assert!(a.iova_base.as_u64() + a.len <= b.iova_base.as_u64());
        assert_eq!(b.page_count(), 1024); // 4 MiB of 4K pages
        assert_eq!(reg.total_pinned_pages(), 2 + 1024);
    }

    #[test]
    fn page_count_scales_512x_without_hugepages() {
        // The Fig. 4 effect: same region, 512x the IOMMU entries.
        let mut table = IoPageTable::new();
        let mut reg = RegionRegistry::new(1 << 30);
        let huge = reg
            .register(&mut table, 0, 12 << 20, PageSize::Size2M)
            .unwrap();
        let small = reg
            .register(&mut table, 1, 12 << 20, PageSize::Size4K)
            .unwrap();
        assert_eq!(small.page_count(), huge.page_count() * 512);
    }

    #[test]
    fn out_of_memory_reported() {
        let mut table = IoPageTable::new();
        let mut reg = RegionRegistry::new(4 << 20);
        assert!(reg
            .register(&mut table, 0, 16 << 20, PageSize::Size2M)
            .is_err());
    }
}
