//! Rx buffer pools: the allocation policy that shapes the DMA address
//! stream.
//!
//! The receiver stack posts Rx descriptors pointing at free buffers from a
//! per-thread pool carved out of that thread's registered region. The
//! *recycling order* determines DMA address locality and therefore the
//! IOTLB working set: a production descriptor ring cycles through every
//! buffer in the region (FIFO — the whole region is hot), while a LIFO
//! stack would keep reusing a handful of buffers. The paper's observed
//! misses require the FIFO behaviour plus multiple concurrent flows
//! destroying page adjacency; both are modelled here.

use crate::addr::Iova;
use crate::region::MemoryRegion;
use std::collections::VecDeque;

/// Buffer recycling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecycleOrder {
    /// Freed buffers go to the back of the free list; allocation cycles
    /// through the entire region sequentially (a freshly-initialised
    /// descriptor ring).
    Fifo,
    /// Freed buffers are reused immediately (stack behaviour; minimal
    /// working set — useful as an ablation).
    Lifo,
    /// Allocation picks a uniformly random free buffer (deterministic,
    /// seeded). This models a long-running SNAP-style stack where
    /// per-connection RPC completions return buffers out of order, so the
    /// descriptor ring ends up pointing at scattered addresses — the
    /// "lack of locality in IOMMU access patterns" the paper names as the
    /// reason subsequent packets do not lie in contiguous memory (§3.1).
    Random {
        /// Seed for the pool's internal generator.
        seed: u64,
    },
}

/// A fixed-slot buffer pool within one registered region.
#[derive(Debug)]
pub struct RxBufferPool {
    region_iova: Iova,
    slot_size: u64,
    slots: usize,
    free: VecDeque<u32>,
    order: RecycleOrder,
    rng_state: u64,
    allocated: usize,
    peak_allocated: usize,
    /// Lifetime counters.
    alloc_count: u64,
    exhausted_count: u64,
}

impl RxBufferPool {
    /// Carve `region` into `slot_size`-byte buffers.
    ///
    /// Panics if the region cannot hold at least one slot.
    pub fn new(region: &MemoryRegion, slot_size: u64, order: RecycleOrder) -> Self {
        assert!(slot_size > 0, "slot size must be positive");
        let slots = (region.len / slot_size) as usize;
        assert!(slots > 0, "region smaller than one buffer");
        let rng_state = match order {
            RecycleOrder::Random { seed } => seed | 1,
            _ => 0,
        };
        RxBufferPool {
            region_iova: region.iova_base,
            slot_size,
            slots,
            free: (0..slots as u32).collect(),
            order,
            rng_state,
            allocated: 0,
            peak_allocated: 0,
            alloc_count: 0,
            exhausted_count: 0,
        }
    }

    /// xorshift64* step for the `Random` recycle order.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Currently outstanding (allocated) buffers.
    pub fn in_use(&self) -> usize {
        self.allocated
    }

    /// Free buffers available for posting.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Byte size of one slot.
    pub fn slot_size(&self) -> u64 {
        self.slot_size
    }

    /// Take a buffer for an Rx descriptor. `None` when the pool is dry
    /// (the driver cannot replenish descriptors — upstream this surfaces as
    /// NIC drops).
    pub fn alloc(&mut self) -> Option<Iova> {
        if self.free.is_empty() {
            self.exhausted_count += 1;
            return None;
        }
        let idx = match self.order {
            RecycleOrder::Fifo | RecycleOrder::Lifo => self.free.pop_front().expect("non-empty"),
            RecycleOrder::Random { .. } => {
                let pick = (self.next_rand() % self.free.len() as u64) as usize;
                self.free.swap_remove_back(pick).expect("non-empty")
            }
        };
        self.allocated += 1;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
        self.alloc_count += 1;
        Some(self.slot_iova(idx))
    }

    /// Return a buffer after the application has consumed the packet.
    ///
    /// Panics in debug builds if `iova` does not belong to this pool.
    pub fn free(&mut self, iova: Iova) {
        let off = iova.as_u64() - self.region_iova.as_u64();
        debug_assert_eq!(off % self.slot_size, 0, "misaligned buffer free");
        let idx = (off / self.slot_size) as u32;
        debug_assert!((idx as usize) < self.slots, "foreign buffer freed");
        debug_assert!(self.allocated > 0, "double free");
        self.allocated -= 1;
        match self.order {
            RecycleOrder::Fifo | RecycleOrder::Random { .. } => self.free.push_back(idx),
            RecycleOrder::Lifo => self.free.push_front(idx),
        }
    }

    /// Lifetime allocation count.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Number of failed allocations (pool empty).
    pub fn exhausted_count(&self) -> u64 {
        self.exhausted_count
    }

    /// Estimated bytes of buffer memory the DMA stream keeps hot — the
    /// working set the DDIO slice competes with. LIFO reuse keeps only the
    /// concurrently-outstanding buffers warm; FIFO and scattered recycling
    /// cycle through the whole region.
    pub fn hot_set_bytes(&self) -> u64 {
        match self.order {
            RecycleOrder::Lifo => self.peak_allocated as u64 * self.slot_size,
            RecycleOrder::Fifo | RecycleOrder::Random { .. } => self.slots as u64 * self.slot_size,
        }
    }

    #[inline]
    fn slot_iova(&self, idx: u32) -> Iova {
        self.region_iova.add(idx as u64 * self.slot_size)
    }

    /// Serialize the pool: geometry, the free list in recycle order, the
    /// recycle policy (with its RNG stream state) and the counters.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.region_iova.as_u64());
        w.u64(self.slot_size);
        w.usize(self.slots);
        w.usize(self.free.len());
        for &idx in &self.free {
            w.u32(idx);
        }
        match self.order {
            RecycleOrder::Fifo => w.u8(0),
            RecycleOrder::Lifo => w.u8(1),
            RecycleOrder::Random { seed } => {
                w.u8(2);
                w.u64(seed);
            }
        }
        w.u64(self.rng_state);
        w.usize(self.allocated);
        w.usize(self.peak_allocated);
        w.u64(self.alloc_count);
        w.u64(self.exhausted_count);
    }

    /// Rebuild a pool from [`save_state`](Self::save_state) output,
    /// revalidating the free-list/outstanding invariant.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let region_iova = Iova(r.u64()?);
        let slot_size = r.u64()?;
        if slot_size == 0 {
            return Err(SnapError::Corrupt("zero pool slot size"));
        }
        let slots = r.usize()?;
        if slots == 0 {
            return Err(SnapError::Corrupt("empty buffer pool"));
        }
        let n = r.len(4)?;
        if n > slots {
            return Err(SnapError::Corrupt("free list larger than pool"));
        }
        let mut free = VecDeque::with_capacity(slots);
        let mut seen = vec![false; slots];
        for _ in 0..n {
            let idx = r.u32()?;
            let slot = seen
                .get_mut(idx as usize)
                .ok_or(SnapError::Corrupt("free index out of range"))?;
            if *slot {
                return Err(SnapError::Corrupt("duplicate free index"));
            }
            *slot = true;
            free.push_back(idx);
        }
        let order = match r.u8()? {
            0 => RecycleOrder::Fifo,
            1 => RecycleOrder::Lifo,
            2 => RecycleOrder::Random { seed: r.u64()? },
            _ => return Err(SnapError::Corrupt("recycle order out of range")),
        };
        let rng_state = r.u64()?;
        if matches!(order, RecycleOrder::Random { .. }) && rng_state == 0 {
            return Err(SnapError::Corrupt("zero pool rng state"));
        }
        let allocated = r.usize()?;
        if allocated != slots - free.len() {
            return Err(SnapError::Corrupt("pool allocation count mismatch"));
        }
        let peak_allocated = r.usize()?;
        if peak_allocated < allocated {
            return Err(SnapError::Corrupt("pool peak below outstanding"));
        }
        Ok(RxBufferPool {
            region_iova,
            slot_size,
            slots,
            free,
            order,
            rng_state,
            allocated,
            peak_allocated,
            alloc_count: r.u64()?,
            exhausted_count: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PageSize, PhysAddr};
    use crate::region::{MemoryRegion, RegionId};

    fn region(len: u64) -> MemoryRegion {
        MemoryRegion {
            id: RegionId(0),
            owner_thread: 0,
            iova_base: Iova(0x10_0000),
            pa_base: PhysAddr(0x10_0000),
            len,
            page_size: PageSize::Size2M,
        }
    }

    #[test]
    fn carves_region_into_slots() {
        let p = RxBufferPool::new(&region(64 * 4096), 4096, RecycleOrder::Fifo);
        assert_eq!(p.capacity(), 64);
        assert_eq!(p.available(), 64);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.slot_size(), 4096);
    }

    #[test]
    fn fifo_cycles_through_entire_region() {
        let mut p = RxBufferPool::new(&region(4 * 4096), 4096, RecycleOrder::Fifo);
        let mut seen = std::collections::HashSet::new();
        // Alloc+free repeatedly: FIFO must visit all 4 distinct buffers.
        for _ in 0..8 {
            let b = p.alloc().unwrap();
            seen.insert(b);
            p.free(b);
        }
        assert_eq!(seen.len(), 4, "FIFO should cycle the whole region");
    }

    #[test]
    fn lifo_reuses_hot_buffer() {
        let mut p = RxBufferPool::new(&region(4 * 4096), 4096, RecycleOrder::Lifo);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let b = p.alloc().unwrap();
            seen.insert(b);
            p.free(b);
        }
        assert_eq!(seen.len(), 1, "LIFO should reuse one buffer");
    }

    #[test]
    fn exhaustion_returns_none_and_counts() {
        let mut p = RxBufferPool::new(&region(2 * 4096), 4096, RecycleOrder::Fifo);
        let a = p.alloc().unwrap();
        let _b = p.alloc().unwrap();
        assert_eq!(p.alloc(), None);
        assert_eq!(p.exhausted_count(), 1);
        assert_eq!(p.in_use(), 2);
        p.free(a);
        assert!(p.alloc().is_some());
        assert_eq!(p.alloc_count(), 3);
    }

    #[test]
    fn random_order_scatters_allocations_deterministically() {
        let r = region(64 * 4096);
        let mut a = RxBufferPool::new(&r, 4096, RecycleOrder::Random { seed: 7 });
        let mut b = RxBufferPool::new(&r, 4096, RecycleOrder::Random { seed: 7 });
        let seq_a: Vec<_> = (0..32).map(|_| a.alloc().unwrap()).collect();
        let seq_b: Vec<_> = (0..32).map(|_| b.alloc().unwrap()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same sequence");
        // The sequence must not be the sequential FIFO order.
        let sequential: Vec<_> = (0..32u64).map(|i| r.iova_base.add(i * 4096)).collect();
        assert_ne!(seq_a, sequential, "random order should scatter");
        // All distinct.
        let mut dedup = seq_a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 32);
    }

    #[test]
    fn random_order_visits_whole_region_over_time() {
        let r = region(8 * 4096);
        let mut p = RxBufferPool::new(&r, 4096, RecycleOrder::Random { seed: 3 });
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let b = p.alloc().unwrap();
            seen.insert(b);
            p.free(b);
        }
        assert_eq!(seen.len(), 8, "random recycling keeps the whole region hot");
    }

    #[test]
    fn hot_set_tracks_recycle_policy() {
        let r = region(64 * 4096);
        // LIFO: only outstanding buffers are hot.
        let mut lifo = RxBufferPool::new(&r, 4096, RecycleOrder::Lifo);
        let a = lifo.alloc().unwrap();
        let b = lifo.alloc().unwrap();
        lifo.free(b);
        lifo.free(a);
        for _ in 0..100 {
            let x = lifo.alloc().unwrap();
            lifo.free(x);
        }
        assert_eq!(lifo.hot_set_bytes(), 2 * 4096, "peak of two outstanding");
        // FIFO/random: the whole region is hot.
        let fifo = RxBufferPool::new(&r, 4096, RecycleOrder::Fifo);
        assert_eq!(fifo.hot_set_bytes(), 64 * 4096);
        let rand = RxBufferPool::new(&r, 4096, RecycleOrder::Random { seed: 1 });
        assert_eq!(rand.hot_set_bytes(), 64 * 4096);
    }

    #[test]
    fn buffers_are_distinct_and_in_region() {
        let r = region(16 * 4096);
        let mut p = RxBufferPool::new(&r, 4096, RecycleOrder::Fifo);
        let mut got = Vec::new();
        while let Some(b) = p.alloc() {
            assert!(r.contains(b));
            assert!(r.contains(b.add(4095)));
            got.push(b);
        }
        got.sort();
        got.dedup();
        assert_eq!(got.len(), 16);
    }
}
