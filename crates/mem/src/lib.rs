//! # hostcc-mem
//!
//! Address-space substrate for the host-interconnect congestion simulator:
//! address newtypes and page geometry, an x86-style 4-level I/O page table
//! (what the IOMMU walks on an IOTLB miss), registered-region bookkeeping
//! (loose-mode IOMMU registration, as in the paper's SNAP setup) and Rx
//! buffer pools (whose recycling order shapes DMA address locality).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod page_table;
mod pool;
mod region;

pub use addr::{align_down, align_up, pages_touched, Iova, PageSize, PhysAddr};
pub use page_table::{Fault, IoPageTable, MapError, Translation};
pub use pool::{RecycleOrder, RxBufferPool};
pub use region::{
    IovaAllocator, MemoryRegion, PhysAllocator, RegionError, RegionId, RegionRegistry,
};
