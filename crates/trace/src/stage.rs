//! The datapath stage taxonomy and the per-stage host-delay breakdown.

use hostcc_sim::Histogram;

/// Every instrumented point of the receiver-host datapath, in the order a
/// packet visits them (Fig. 2 of the paper). Instant stages mark events;
/// span stages carry durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// A packet arrived at the NIC input buffer.
    NicArrival,
    /// A packet was dropped: NIC input buffer full.
    NicDropBufferFull,
    /// A packet was dropped: no Rx descriptor available.
    NicDropNoDescriptor,
    /// An Rx descriptor was fetched from the ring.
    RingDescriptorFetch,
    /// DMA admission stalled for want of PCIe posted credits.
    PcieCreditStall,
    /// Time a packet waited in the NIC input buffer before DMA admission.
    BufferWait,
    /// PCIe TLP serialisation + fixed DMA latency for one packet.
    PcieTransfer,
    /// IOTLB lookup served from the cache.
    IotlbHit,
    /// IOTLB lookup that required a page walk.
    IotlbMiss,
    /// IOMMU translation time (lookups, page walks, invalidation stalls).
    IommuTranslate,
    /// Memory-controller grant: bus serialisation + commit latency.
    MemoryGrant,
    /// A receiver core dequeued a completed packet.
    CpuDequeue,
    /// Receiver-core wait + protocol processing for one packet.
    CpuProcess,
    /// A congestion-control window update (value = new cwnd).
    CwndUpdate,
    /// A fault-injection window opened (value = fault spec index).
    FaultStart,
    /// A fault-injection window closed (value = fault spec index).
    FaultEnd,
}

impl Stage {
    /// Stable display name (used in trace exports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::NicArrival => "nic.arrival",
            Stage::NicDropBufferFull => "nic.drop.buffer_full",
            Stage::NicDropNoDescriptor => "nic.drop.no_descriptor",
            Stage::RingDescriptorFetch => "ring.descriptor_fetch",
            Stage::PcieCreditStall => "pcie.credit_stall",
            Stage::BufferWait => "stage.buffer_wait",
            Stage::PcieTransfer => "stage.pcie",
            Stage::IotlbHit => "iotlb.hit",
            Stage::IotlbMiss => "iotlb.miss",
            Stage::IommuTranslate => "stage.iommu",
            Stage::MemoryGrant => "stage.memory",
            Stage::CpuDequeue => "cpu.dequeue",
            Stage::CpuProcess => "stage.cpu",
            Stage::CwndUpdate => "cc.cwnd",
            Stage::FaultStart => "fault.start",
            Stage::FaultEnd => "fault.end",
        }
    }
}

/// The five aggregate stages the paper's host-delay story decomposes
/// into: where does time go between NIC arrival and CPU completion?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageClass {
    /// Waiting in the NIC input buffer for DMA admission.
    Buffer,
    /// PCIe serialisation + fixed DMA path latency.
    Pcie,
    /// IOMMU translation: IOTLB lookups, page walks, invalidation stalls.
    Iommu,
    /// Memory-bus serialisation + commit latency.
    Memory,
    /// Receiver-core queueing + protocol processing.
    Cpu,
}

impl StageClass {
    /// All classes in datapath order.
    pub const ALL: [StageClass; 5] = [
        StageClass::Buffer,
        StageClass::Pcie,
        StageClass::Iommu,
        StageClass::Memory,
        StageClass::Cpu,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            StageClass::Buffer => "buffer",
            StageClass::Pcie => "pcie",
            StageClass::Iommu => "iommu",
            StageClass::Memory => "memory",
            StageClass::Cpu => "cpu",
        }
    }

    /// The span stage this class corresponds to in the event taxonomy.
    pub fn stage(self) -> Stage {
        match self {
            StageClass::Buffer => Stage::BufferWait,
            StageClass::Pcie => Stage::PcieTransfer,
            StageClass::Iommu => Stage::IommuTranslate,
            StageClass::Memory => Stage::MemoryGrant,
            StageClass::Cpu => Stage::CpuProcess,
        }
    }
}

/// Per-stage host-delay histograms: one packet contributes one sample to
/// each stage, and the five samples sum exactly to that packet's host
/// delay — so the breakdown is an exact decomposition of the `host_delay`
/// histogram, not an independent estimate.
#[derive(Debug, Clone, Default)]
pub struct StageBreakdown {
    /// NIC input-buffer wait (ns).
    pub buffer: Histogram,
    /// PCIe serialisation + fixed DMA latency (ns).
    pub pcie: Histogram,
    /// IOMMU translation (ns).
    pub iommu: Histogram,
    /// Memory-bus serialisation + commit (ns).
    pub memory: Histogram,
    /// Receiver-core wait + processing (ns).
    pub cpu: Histogram,
}

impl StageBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one packet's stage durations (all in nanoseconds).
    pub fn record(&mut self, buffer: u64, pcie: u64, iommu: u64, memory: u64, cpu: u64) {
        self.buffer.record(buffer);
        self.pcie.record(pcie);
        self.iommu.record(iommu);
        self.memory.record(memory);
        self.cpu.record(cpu);
    }

    /// The histogram for one stage class.
    pub fn stage(&self, class: StageClass) -> &Histogram {
        match class {
            StageClass::Buffer => &self.buffer,
            StageClass::Pcie => &self.pcie,
            StageClass::Iommu => &self.iommu,
            StageClass::Memory => &self.memory,
            StageClass::Cpu => &self.cpu,
        }
    }

    /// Packets recorded (identical for every stage).
    pub fn count(&self) -> u64 {
        self.buffer.count()
    }

    /// Sum of all stage samples in nanoseconds. Equals the sum of the
    /// corresponding `host_delay` histogram when the decomposition is
    /// exact (the invariant the observability tests assert).
    pub fn total_sum_ns(&self) -> u128 {
        StageClass::ALL.iter().map(|&c| self.stage(c).sum()).sum()
    }

    /// Mean time per packet spent in `class`, nanoseconds.
    pub fn mean_ns(&self, class: StageClass) -> f64 {
        self.stage(class).mean()
    }

    /// Fraction of total host delay attributed to `class` (0 when empty).
    pub fn share(&self, class: StageClass) -> f64 {
        let total = self.total_sum_ns();
        if total == 0 {
            return 0.0;
        }
        self.stage(class).sum() as f64 / total as f64
    }

    /// Serialize the five stage histograms, in datapath order.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        self.buffer.save_state(w);
        self.pcie.save_state(w);
        self.iommu.save_state(w);
        self.memory.save_state(w);
        self.cpu.save_state(w);
    }

    /// Rebuild a breakdown from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        Ok(StageBreakdown {
            buffer: hostcc_sim::Histogram::load_state(r)?,
            pcie: hostcc_sim::Histogram::load_state(r)?,
            iommu: hostcc_sim::Histogram::load_state(r)?,
            memory: hostcc_sim::Histogram::load_state(r)?,
            cpu: hostcc_sim::Histogram::load_state(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique() {
        let all = [
            Stage::NicArrival,
            Stage::NicDropBufferFull,
            Stage::NicDropNoDescriptor,
            Stage::RingDescriptorFetch,
            Stage::PcieCreditStall,
            Stage::BufferWait,
            Stage::PcieTransfer,
            Stage::IotlbHit,
            Stage::IotlbMiss,
            Stage::IommuTranslate,
            Stage::MemoryGrant,
            Stage::CpuDequeue,
            Stage::CpuProcess,
            Stage::CwndUpdate,
            Stage::FaultStart,
            Stage::FaultEnd,
        ];
        let mut names: Vec<_> = all.iter().map(|s| s.name()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn breakdown_decomposes_exactly() {
        let mut b = StageBreakdown::new();
        b.record(100, 200, 300, 400, 500);
        b.record(1, 2, 3, 4, 5);
        assert_eq!(b.count(), 2);
        assert_eq!(b.total_sum_ns(), 1500 + 15);
        let host_delay_sum = 1500u128 + 15;
        assert_eq!(b.total_sum_ns(), host_delay_sum);
        let shares: f64 = StageClass::ALL.iter().map(|&c| b.share(c)).sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = StageBreakdown::new();
        assert_eq!(b.count(), 0);
        assert_eq!(b.total_sum_ns(), 0);
        assert_eq!(b.share(StageClass::Pcie), 0.0);
    }
}
