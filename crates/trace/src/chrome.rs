//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load directly).
//!
//! Span events become `ph:"X"` complete events on one track per receiver
//! thread; instants become `ph:"i"`; timeline series become `ph:"C"`
//! counter tracks. Timestamps are microseconds (the format's unit), kept
//! at nanosecond precision via fractional values.

use crate::json::JsonWriter;
use crate::timeline::TimelineRecorder;
use crate::tracer::{EventKind, TraceEvent};

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Render trace events and timeline series as one Chrome trace-event
/// document: `{"traceEvents": [...], "displayTimeUnit": "ns"}`.
pub fn chrome_trace_json<'a, I>(events: I, timeline: &TimelineRecorder) -> String
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("traceEvents").begin_arr();
    for ev in events {
        w.begin_obj();
        w.key("name").str(ev.stage.name());
        w.key("cat").str("datapath");
        w.key("pid").int(0);
        w.key("tid").int(if ev.thread == u32::MAX {
            0
        } else {
            ev.thread as u64
        });
        w.key("ts").num(us(ev.ts_ns));
        match ev.kind {
            EventKind::Span { dur_ns } => {
                w.key("ph").str("X");
                w.key("dur").num(us(dur_ns));
            }
            EventKind::Instant => {
                w.key("ph").str("i");
                w.key("s").str("t");
            }
            EventKind::Value { value } => {
                w.key("ph").str("C");
                w.key("args").begin_obj();
                w.key("value").num(value);
                w.end_obj();
                w.end_obj();
                continue;
            }
        }
        if ev.flow != u32::MAX {
            w.key("args").begin_obj();
            w.key("flow").int(ev.flow as u64);
            w.key("seq").int(ev.seq);
            w.end_obj();
        }
        w.end_obj();
    }
    for series in timeline.series() {
        for &(t_ns, value) in &series.points {
            w.begin_obj();
            w.key("name").str(&series.name);
            w.key("cat").str("timeline");
            w.key("ph").str("C");
            w.key("pid").int(0);
            w.key("ts").num(us(t_ns));
            w.key("args").begin_obj();
            w.key("value").num(value);
            w.end_obj();
            w.end_obj();
        }
    }
    w.end_arr();
    w.key("displayTimeUnit").str("ns");
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::stage::Stage;

    #[test]
    fn export_is_valid_json_with_expected_shape() {
        let events = [
            TraceEvent::span(1_000, Stage::PcieTransfer, 500, 3, 1, 42),
            TraceEvent::instant(2_000, Stage::NicDropBufferFull),
            TraceEvent::value(3_000, Stage::CwndUpdate, 8.5),
        ];
        let mut tl = TimelineRecorder::new(1);
        tl.offer("nic.buffer_bytes", 10_000, 4096.0);
        let doc = chrome_trace_json(events.iter(), &tl);
        let v = json::parse(&doc).expect("valid JSON");
        let items = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 4);
        let span = &items[0];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("name").unwrap().as_str(), Some("stage.pcie"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(0.5));
        assert_eq!(
            span.get("args").unwrap().get("seq").unwrap().as_f64(),
            Some(42.0)
        );
        let counter = &items[3];
        assert_eq!(counter.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            counter.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(4096.0)
        );
    }

    #[test]
    fn empty_trace_still_parses() {
        let tl = TimelineRecorder::disabled();
        let doc = chrome_trace_json([].iter(), &tl);
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
