//! A minimal, dependency-free JSON writer and parser.
//!
//! The writer is a push-style builder that manages commas and escaping so
//! exporters never hand-concatenate syntax. The parser exists so tests
//! (and harnesses) can load exported documents back without serde; it
//! accepts standard RFC 8259 JSON.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape a string into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 as a JSON number (no NaN/Inf — clamped to null-safe 0).
pub fn num(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Push-style JSON builder that tracks comma placement.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the current container already has a member.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    /// Begin an object value (or root).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.pre();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    /// End the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    /// Begin an array value (or root).
    pub fn begin_arr(&mut self) -> &mut Self {
        self.pre();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    /// End the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Write an object key (must be inside an object, before its value).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre();
        self.out.push_str(&escape(k));
        self.out.push(':');
        // The value that follows must not emit a comma first.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Write a string value.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.pre();
        self.out.push_str(&escape(v));
        self
    }

    /// Write a numeric value.
    pub fn num(&mut self, v: f64) -> &mut Self {
        self.pre();
        self.out.push_str(&num(v));
        self
    }

    /// Write an integer value exactly.
    pub fn int(&mut self, v: u64) -> &mut Self {
        self.pre();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Consume the writer and return the document.
    pub fn finish(self) -> String {
        debug_assert!(self.need_comma.is_empty(), "unclosed container");
        self.out
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document (must consume the whole input).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced; exporters never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("name").str("fig3");
        w.key("tp").num(77.25);
        w.key("drops").int(123);
        w.key("ok").bool(true);
        w.key("stages").begin_arr();
        w.num(1.0).num(2.5);
        w.end_arr();
        w.end_obj();
        let doc = w.finish();
        assert_eq!(
            doc,
            r#"{"name":"fig3","tp":77.25,"drops":123,"ok":true,"stages":[1,2.5]}"#
        );
        // Round-trips through the parser.
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("fig3"));
        assert_eq!(v.get("tp").unwrap().as_f64(), Some(77.25));
        assert_eq!(v.get("stages").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let v = parse(&escape("tab\there")).unwrap();
        assert_eq!(v.as_str(), Some("tab\there"));
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v = parse(r#" {"a": [1, 2.5, -3e2], "b": {"c": null}, "d": false} "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(false)));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn num_formats_integers_exactly() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.5), "3.5");
        assert_eq!(num(f64::NAN), "0");
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
