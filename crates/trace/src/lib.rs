//! # hostcc-trace
//!
//! The observability layer of the `hostcc` laboratory: typed datapath
//! trace events, per-packet lifecycle spans, a named counter registry,
//! periodic time-series recording, and exporters (Chrome trace-event
//! JSON viewable in Perfetto, plus a dependency-free JSON writer/parser
//! for metric snapshots).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — recording is strictly observational. Nothing in
//!    this crate consumes simulation randomness, schedules events, or
//!    otherwise feeds back into the world, so a traced run produces
//!    bit-identical metrics to an untraced one.
//! 2. **Zero cost when disabled** — every record path begins with one
//!    branch on a `bool`; a disabled [`Tracer`] allocates nothing.
//! 3. **Bounded memory** — the event buffer is a ring with a configured
//!    capacity and optional 1-in-N sampling, so arbitrarily long runs
//!    cannot exhaust memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod counters;
pub mod json;
mod ring;
mod stage;
mod timeline;
mod tracer;

pub use chrome::chrome_trace_json;
pub use counters::{CounterRegistry, CounterSource};
pub use ring::SampleRing;
pub use stage::{Stage, StageBreakdown, StageClass};
pub use timeline::{Series, TimelineRecorder};
pub use tracer::{EventKind, TraceConfig, TraceEvent, Tracer};
