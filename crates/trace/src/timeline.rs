//! Periodic time-series recording: named series sampled on a fixed
//! period (queue depths, credits, cwnd, memory bandwidth).

use std::collections::BTreeMap;

/// One named series of `(t_ns, value)` samples.
#[derive(Debug, Clone)]
pub struct Series {
    /// Stable dotted name (e.g. `"nic.buffer_bytes"`).
    pub name: String,
    /// Samples in time order.
    pub points: Vec<(u64, f64)>,
}

/// Records named time series at a bounded rate.
///
/// The world offers samples whenever convenient (typically on its memory
/// tick); the recorder keeps one per `period_ns` per series. A period of
/// 0 or a disabled recorder drops everything, so untraced runs pay one
/// branch per offer.
#[derive(Debug)]
pub struct TimelineRecorder {
    period_ns: u64,
    enabled: bool,
    series: Vec<Series>,
    index: BTreeMap<&'static str, usize>,
    /// Per-series time of the last accepted sample.
    last: Vec<Option<u64>>,
}

impl TimelineRecorder {
    /// A recorder sampling each series at most once per `period_ns`.
    pub fn new(period_ns: u64) -> Self {
        TimelineRecorder {
            period_ns,
            enabled: period_ns > 0,
            series: Vec::new(),
            index: BTreeMap::new(),
            last: Vec::new(),
        }
    }

    /// A recorder that drops everything.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether the recorder accepts samples.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The sampling period in nanoseconds.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Offer a sample for `name` at `now_ns`; kept only if at least one
    /// period has elapsed since the series' previous sample.
    pub fn offer(&mut self, name: &'static str, now_ns: u64, value: f64) {
        if !self.enabled {
            return;
        }
        let idx = match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.series.len();
                self.series.push(Series {
                    name: name.to_string(),
                    points: Vec::new(),
                });
                self.last.push(None);
                self.index.insert(name, i);
                i
            }
        };
        if let Some(prev) = self.last[idx] {
            if now_ns < prev + self.period_ns {
                return;
            }
        }
        self.last[idx] = Some(now_ns);
        self.series[idx].points.push((now_ns, value));
    }

    /// All recorded series, in first-offered order.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Look up one series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_samples() {
        let mut t = TimelineRecorder::disabled();
        t.offer("x", 0, 1.0);
        assert!(t.series().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn rate_limits_per_series() {
        let mut t = TimelineRecorder::new(100);
        for now in [0u64, 50, 100, 140, 260] {
            t.offer("q", now, now as f64);
        }
        let s = t.get("q").unwrap();
        let times: Vec<u64> = s.points.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, [0, 100, 260]);
    }

    #[test]
    fn series_are_independent() {
        let mut t = TimelineRecorder::new(100);
        t.offer("a", 0, 1.0);
        t.offer("b", 50, 2.0);
        t.offer("b", 60, 3.0); // dropped: within b's period
        assert_eq!(t.get("a").unwrap().points.len(), 1);
        assert_eq!(t.get("b").unwrap().points, vec![(50, 2.0)]);
        assert!(t.get("c").is_none());
    }
}
