//! A named counter registry shared by every datapath component.
//!
//! Components keep their own cheap internal counters (plain `u64` fields
//! on their stats structs) and *publish* them here by name when asked.
//! The registry supports interval accounting: `mark_baseline()` at the
//! end of warm-up records current values, and `snapshot()` reports the
//! delta since — the same discipline `MetricsCollector::arm` applies to
//! the headline metrics.

use std::collections::BTreeMap;

/// A component that can publish named counters.
pub trait CounterSource {
    /// Write current lifetime counter values into `reg` (use
    /// [`CounterRegistry::set`] with stable dotted names, e.g.
    /// `"nic.drops.buffer_full"`).
    fn export_counters(&self, reg: &mut CounterRegistry);
}

/// Named `u64` counters with baseline/interval support. Iteration order
/// is the lexicographic name order (BTreeMap), so exports are
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    values: BTreeMap<String, u64>,
    baseline: BTreeMap<String, u64>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (upsert) a counter's current lifetime value.
    pub fn set(&mut self, name: &str, value: u64) {
        match self.values.get_mut(name) {
            Some(v) => *v = value,
            None => {
                self.values.insert(name.to_string(), value);
            }
        }
    }

    /// Ask a source to publish its counters.
    pub fn collect(&mut self, source: &dyn CounterSource) {
        source.export_counters(self);
    }

    /// Record current values as the measurement baseline (call at the end
    /// of warm-up, after a `collect` pass).
    pub fn mark_baseline(&mut self) {
        self.baseline = self.values.clone();
    }

    /// A counter's lifetime value (0 when absent).
    pub fn lifetime(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// A counter's value since the baseline (saturating; 0 when absent).
    pub fn since_baseline(&self, name: &str) -> u64 {
        let now = self.lifetime(name);
        let base = self.baseline.get(name).copied().unwrap_or(0);
        now.saturating_sub(base)
    }

    /// All counters as `(name, since_baseline)` pairs in name order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.values
            .keys()
            .map(|k| (k.clone(), self.since_baseline(k)))
            .collect()
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Serialize both maps (current values and the measurement baseline),
    /// in name order.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        let map = |m: &BTreeMap<String, u64>, w: &mut hostcc_sim::SnapWriter| {
            w.usize(m.len());
            for (name, &v) in m {
                w.str(name);
                w.u64(v);
            }
        };
        map(&self.values, w);
        map(&self.baseline, w);
    }

    /// Rebuild a registry from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        let map = |r: &mut hostcc_sim::SnapReader<'_>| {
            // Each entry: name length (8 B) + name bytes + value (8 B).
            let n = r.len(16)?;
            let mut m = BTreeMap::new();
            for _ in 0..n {
                let name = r.str()?.to_string();
                let v = r.u64()?;
                if m.insert(name, v).is_some() {
                    return Err(hostcc_sim::SnapError::Corrupt("duplicate counter name"));
                }
            }
            Ok(m)
        };
        let values = map(r)?;
        let baseline = map(r)?;
        Ok(CounterRegistry { values, baseline })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dev {
        hits: u64,
        misses: u64,
    }

    impl CounterSource for Dev {
        fn export_counters(&self, reg: &mut CounterRegistry) {
            reg.set("dev.hits", self.hits);
            reg.set("dev.misses", self.misses);
        }
    }

    #[test]
    fn collect_and_snapshot() {
        let mut reg = CounterRegistry::new();
        let mut dev = Dev {
            hits: 10,
            misses: 2,
        };
        reg.collect(&dev);
        assert_eq!(reg.lifetime("dev.hits"), 10);
        reg.mark_baseline();
        dev.hits = 25;
        dev.misses = 2;
        reg.collect(&dev);
        assert_eq!(reg.since_baseline("dev.hits"), 15);
        assert_eq!(reg.since_baseline("dev.misses"), 0);
        let snap = reg.snapshot();
        assert_eq!(
            snap,
            vec![("dev.hits".to_string(), 15), ("dev.misses".to_string(), 0)]
        );
    }

    #[test]
    fn absent_counters_read_zero() {
        let reg = CounterRegistry::new();
        assert_eq!(reg.lifetime("nope"), 0);
        assert_eq!(reg.since_baseline("nope"), 0);
        assert!(reg.is_empty());
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let mut reg = CounterRegistry::new();
        reg.set("z.last", 1);
        reg.set("a.first", 2);
        reg.set("m.middle", 3);
        let names: Vec<String> = reg.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "m.middle", "z.last"]);
    }
}
