//! A fixed-capacity overwrite-oldest sample ring.
//!
//! For keep-the-last-N diagnostics (launch traces, recent-sample windows)
//! where the producer must never allocate or branch on fullness: one slot
//! array filled round-robin, overwriting the oldest entry once full.

/// Fixed-capacity ring that keeps the most recent `capacity` samples.
#[derive(Debug)]
pub struct SampleRing<T: Copy> {
    slots: Vec<T>,
    capacity: usize,
    /// Next slot to write (wraps); also the oldest sample once full.
    head: usize,
    pushed: u64,
}

impl<T: Copy> SampleRing<T> {
    /// A ring keeping the last `capacity` samples (capacity > 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity ring");
        SampleRing {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Record a sample, overwriting the oldest once the ring is full.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.slots.len() < self.capacity {
            self.slots.push(value);
        } else {
            self.slots[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Samples currently held (`min(pushed, capacity)`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime samples offered (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (newer, older) = self.slots.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Drop all samples (capacity retained).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
    }

    /// Serialize the ring: capacity, the retained samples oldest first
    /// (each encoded by `enc`), and the lifetime push count.
    pub fn save_with<F: FnMut(&T, &mut hostcc_sim::SnapWriter)>(
        &self,
        w: &mut hostcc_sim::SnapWriter,
        mut enc: F,
    ) {
        w.usize(self.capacity);
        w.usize(self.len());
        for s in self.iter() {
            enc(s, w);
        }
        w.u64(self.pushed);
    }

    /// Rebuild a ring from [`save_with`](Self::save_with) output. The
    /// retained samples are re-pushed oldest first, so iteration order and
    /// future overwrite behaviour are preserved (the head is normalised to
    /// slot 0, which is equivalent for every observable).
    pub fn load_with<'a, F>(
        r: &mut hostcc_sim::SnapReader<'a>,
        mut dec: F,
    ) -> Result<Self, hostcc_sim::SnapError>
    where
        F: FnMut(&mut hostcc_sim::SnapReader<'a>) -> Result<T, hostcc_sim::SnapError>,
    {
        use hostcc_sim::SnapError;
        let capacity = r.usize()?;
        if capacity == 0 {
            return Err(SnapError::Corrupt("zero-capacity sample ring"));
        }
        let n = r.len(1)?;
        if n > capacity {
            return Err(SnapError::Corrupt("sample ring overfull"));
        }
        let mut ring = SampleRing::new(capacity);
        for _ in 0..n {
            ring.push(dec(r)?);
        }
        let pushed = r.u64()?;
        if pushed < n as u64 {
            return Err(SnapError::Corrupt("ring push count below length"));
        }
        ring.pushed = pushed;
        Ok(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_until_full() {
        let mut r = SampleRing::new(4);
        for i in 0..3 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn overwrites_oldest_once_full() {
        let mut r = SampleRing::new(4);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(r.pushed(), 10);
    }

    #[test]
    fn never_reallocates_past_capacity() {
        let mut r = SampleRing::new(8);
        let cap = r.slots.capacity();
        for i in 0..1000 {
            r.push(i);
        }
        assert_eq!(r.slots.capacity(), cap);
    }

    #[test]
    fn clear_resets_contents_only() {
        let mut r = SampleRing::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        r.clear();
        assert!(r.is_empty());
        r.push(9);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![9]);
        assert_eq!(r.pushed(), 4, "lifetime count survives clear");
    }

    #[test]
    fn exact_boundary_wrap() {
        let mut r = SampleRing::new(3);
        for i in 0..6 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        r.push(6);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
    }
}
