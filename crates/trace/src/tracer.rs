//! The bounded, sampled datapath event tracer.

use crate::stage::Stage;
use std::collections::VecDeque;

/// What a trace event records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A point-in-time occurrence (drop, stall, dequeue).
    Instant,
    /// A completed span of `dur_ns` nanoseconds ending implicitly at
    /// `ts_ns + dur_ns`.
    Span {
        /// Span length in nanoseconds.
        dur_ns: u64,
    },
    /// A sampled scalar (cwnd, occupancy).
    Value {
        /// The sampled value.
        value: f64,
    },
}

/// One typed, timestamped datapath event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event start, nanoseconds.
    pub ts_ns: u64,
    /// Which datapath stage produced it.
    pub stage: Stage,
    /// Instant, span or value payload.
    pub kind: EventKind,
    /// Sender index of the packet's flow (`u32::MAX` when not
    /// packet-scoped).
    pub flow: u32,
    /// Receiver thread (Perfetto track), `u32::MAX` when not applicable.
    pub thread: u32,
    /// Packet sequence number (0 when not packet-scoped).
    pub seq: u64,
}

impl TraceEvent {
    /// An instant event with no packet identity.
    pub fn instant(ts_ns: u64, stage: Stage) -> Self {
        TraceEvent {
            ts_ns,
            stage,
            kind: EventKind::Instant,
            flow: u32::MAX,
            thread: u32::MAX,
            seq: 0,
        }
    }

    /// A span event scoped to a packet.
    pub fn span(ts_ns: u64, stage: Stage, dur_ns: u64, flow: u32, thread: u32, seq: u64) -> Self {
        TraceEvent {
            ts_ns,
            stage,
            kind: EventKind::Span { dur_ns },
            flow,
            thread,
            seq,
        }
    }

    /// A sampled scalar value.
    pub fn value(ts_ns: u64, stage: Stage, value: f64) -> Self {
        TraceEvent {
            ts_ns,
            stage,
            kind: EventKind::Value { value },
            flow: u32::MAX,
            thread: u32::MAX,
            seq: 0,
        }
    }
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When false, every tracer call is a single branch.
    pub enabled: bool,
    /// Ring-buffer capacity in events; when full, the oldest events are
    /// evicted (the tail of a run is usually the interesting part).
    pub capacity: usize,
    /// Record one in every `sample_every` packet lifecycles (1 = all).
    pub sample_every: u32,
    /// Timeline sampling period in nanoseconds (0 disables the periodic
    /// time-series recorder).
    pub timeline_period_ns: u64,
}

impl TraceConfig {
    /// Tracing off (the default for ordinary runs).
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 0,
            sample_every: 1,
            timeline_period_ns: 0,
        }
    }

    /// Tracing on with a bounded buffer and no sampling.
    pub fn enabled(capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            capacity,
            sample_every: 1,
            timeline_period_ns: 0,
        }
    }

    /// Set 1-in-N lifecycle sampling.
    pub fn with_sampling(mut self, every: u32) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Set the timeline sampling period.
    pub fn with_timeline(mut self, period_ns: u64) -> Self {
        self.timeline_period_ns = period_ns;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A bounded ring buffer of [`TraceEvent`]s with 1-in-N sampling.
///
/// The tracer never influences the simulation: it has no RNG, schedules
/// nothing, and is consulted only through `sample()`/`record()` calls
/// whose results the world must not branch on.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    buf: VecDeque<TraceEvent>,
    /// Lifecycles offered to `sample()` so far (drives 1-in-N selection).
    offered: u64,
    /// Events evicted from the ring after it filled.
    evicted: u64,
}

impl Tracer {
    /// A tracer with the given configuration. Disabled configurations
    /// allocate nothing.
    pub fn new(cfg: TraceConfig) -> Self {
        let buf = if cfg.enabled {
            VecDeque::with_capacity(cfg.capacity.min(1 << 16))
        } else {
            VecDeque::new()
        };
        Tracer {
            cfg,
            buf,
            offered: 0,
            evicted: 0,
        }
    }

    /// A disabled tracer (every call short-circuits).
    pub fn disabled() -> Self {
        Self::new(TraceConfig::disabled())
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configuration.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Sampling gate for a packet lifecycle (or any other repeated item):
    /// returns true for one in every `sample_every` calls while enabled.
    /// Callers decide once per lifecycle and record all of its events (or
    /// none), so sampled lifecycles stay complete.
    #[inline]
    pub fn sample(&mut self) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let pick = self.offered.is_multiple_of(self.cfg.sample_every as u64);
        self.offered += 1;
        pick
    }

    /// Push one event (no-op when disabled). The ring evicts the oldest
    /// event once `capacity` is reached, so memory stays bounded.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.cfg.enabled || self.cfg.capacity == 0 {
            return;
        }
        if self.buf.len() == self.cfg.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently buffered (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted after the ring filled.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Lifecycles offered to the sampling gate.
    pub fn offered(&self) -> u64 {
        self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.sample());
        t.record(TraceEvent::instant(5, Stage::NicArrival));
        assert!(t.is_empty());
        assert_eq!(t.evicted(), 0);
    }

    #[test]
    fn ring_never_exceeds_capacity() {
        let mut t = Tracer::new(TraceConfig::enabled(8));
        for i in 0..100 {
            t.record(TraceEvent::instant(i, Stage::NicArrival));
        }
        assert_eq!(t.len(), 8);
        assert_eq!(t.evicted(), 92);
        // The newest events survive.
        let first = t.events().next().unwrap();
        assert_eq!(first.ts_ns, 92);
    }

    #[test]
    fn sampling_picks_one_in_n() {
        let mut t = Tracer::new(TraceConfig::enabled(64).with_sampling(4));
        let picks: Vec<bool> = (0..8).map(|_| t.sample()).collect();
        assert_eq!(
            picks,
            [true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn event_constructors() {
        let s = TraceEvent::span(10, Stage::PcieTransfer, 7, 3, 1, 42);
        assert_eq!(s.kind, EventKind::Span { dur_ns: 7 });
        assert_eq!(s.thread, 1);
        let v = TraceEvent::value(10, Stage::CwndUpdate, 8.5);
        assert_eq!(v.kind, EventKind::Value { value: 8.5 });
    }
}
