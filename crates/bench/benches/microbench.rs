//! Microbenchmarks of the simulator's hot paths: event engine, IOTLB
//! access, page-table translation, Swift ACK processing, and one short
//! end-to-end testbed slice. These guard simulator performance — the
//! figure harnesses run millions of events per simulated second.
//!
//! Dependency-free harness (`harness = false`): each benchmark runs a
//! warm-up pass, then a measured batch under `std::time::Instant`, and
//! prints ns/op. Set `HOSTCC_BENCH_QUICK=1` to shrink iteration counts.

use hostcc::experiment::{run, RunPlan};
use hostcc::scenarios;
use hostcc::substrate::iommu::{Iommu, IommuConfig};
use hostcc::substrate::mem::{IoPageTable, Iova, PageSize, PhysAddr};
use hostcc::substrate::sim::{Engine, Queue, Scheduler, SimDuration, SimTime, World};
use hostcc::substrate::transport::{AckSample, CongestionControl, Swift, SwiftConfig};
use std::hint::black_box;
use std::time::Instant;

/// Time `iters` calls of `f` (after `warmup` untimed calls), print ns/op.
fn bench(name: &str, warmup: u64, iters: u64, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:32} {ns:14.1} ns/op  ({iters} iters, {elapsed:.2?} total)");
}

struct Chain(u64);
impl World for Chain {
    type Event = ();
    fn handle<Q: Queue<()>>(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<(), Q>) {
        if self.0 > 0 {
            self.0 -= 1;
            sched.after(SimDuration::from_nanos(10), ());
        }
    }
}

fn bench_engine(reps: u64) {
    bench("engine_100k_events", 1, reps, || {
        let mut eng = Engine::new(Chain(100_000));
        eng.sched.immediately(());
        eng.run_to_completion();
        black_box(eng.now());
    });
}

fn bench_iommu(iters: u64) {
    let mut io = Iommu::new(IommuConfig::default());
    io.map_range(Iova(0), PhysAddr(0), 512 << 20, PageSize::Size2M)
        .unwrap();
    let mut i = 0u64;
    bench("iommu_translate_range", 1_000, iters, || {
        i = (i + 1) % 200;
        black_box(io.translate_range(Iova(i * (2 << 20)), 4096).unwrap());
    });
}

fn bench_page_table(iters: u64) {
    let mut pt = IoPageTable::new();
    pt.map_range(Iova(0), PhysAddr(0), 64 << 20, PageSize::Size4K)
        .unwrap();
    let mut i = 0u64;
    bench("page_table_translate", 1_000, iters, || {
        i = (i + 4096) % (64 << 20);
        black_box(pt.translate(Iova(i)).unwrap());
    });
}

fn bench_swift(iters: u64) {
    let mut swift = Swift::new(SwiftConfig::default(), 8.0);
    let mut t = 0u64;
    bench("swift_on_ack", 1_000, iters, || {
        t += 20;
        swift.on_ack(AckSample {
            now: SimTime::from_micros(t),
            rtt: SimDuration::from_micros(25),
            host_delay: SimDuration::from_micros(t % 150),
            ecn_ce: false,
            nic_buffer_frac: 0.0,
            newly_acked: 1,
        });
        black_box(swift.cwnd());
    });
}

fn bench_testbed_slice(reps: u64) {
    bench("testbed/one_ms_slice_12_cores", 1, reps, || {
        let mut cfg = scenarios::fig3(12, true);
        cfg.senders = 8;
        black_box(
            run(
                cfg,
                RunPlan {
                    warmup: SimDuration::from_micros(500),
                    measure: SimDuration::from_micros(500),
                },
            )
            .expect("bench config runs"),
        );
    });
}

fn main() {
    let quick = std::env::var("HOSTCC_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let scale: u64 = if quick { 1 } else { 10 };
    println!(
        "hostcc microbenchmarks ({} mode)",
        if quick { "quick" } else { "full" }
    );
    bench_engine(2 * scale);
    bench_iommu(100_000 * scale);
    bench_page_table(100_000 * scale);
    bench_swift(100_000 * scale);
    bench_testbed_slice(2 * scale);
}
