//! Criterion microbenchmarks of the simulator's hot paths: event engine,
//! IOTLB access, page-table translation, Swift ACK processing, and one
//! short end-to-end testbed slice. These guard simulator performance —
//! the figure harnesses run millions of events per simulated second.

use criterion::{criterion_group, criterion_main, Criterion};
use hostcc::experiment::{run, RunPlan};
use hostcc::scenarios;
use hostcc::substrate::iommu::{Iommu, IommuConfig};
use hostcc::substrate::mem::{IoPageTable, Iova, PageSize, PhysAddr};
use hostcc::substrate::sim::{
    Engine, Scheduler, SimDuration, SimTime, World,
};
use hostcc::substrate::transport::{AckSample, CongestionControl, Swift, SwiftConfig};
use std::hint::black_box;

struct Chain(u64);
impl World for Chain {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
        if self.0 > 0 {
            self.0 -= 1;
            sched.after(SimDuration::from_nanos(10), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Chain(100_000));
            eng.sched.immediately(());
            eng.run_to_completion();
            black_box(eng.now())
        })
    });
}

fn bench_iommu(c: &mut Criterion) {
    let mut io = Iommu::new(IommuConfig::default());
    io.map_range(Iova(0), PhysAddr(0), 512 << 20, PageSize::Size2M)
        .unwrap();
    let mut i = 0u64;
    c.bench_function("iommu_translate_range", |b| {
        b.iter(|| {
            i = (i + 1) % 200;
            black_box(io.translate_range(Iova(i * (2 << 20)), 4096).unwrap())
        })
    });
}

fn bench_page_table(c: &mut Criterion) {
    let mut pt = IoPageTable::new();
    pt.map_range(Iova(0), PhysAddr(0), 64 << 20, PageSize::Size4K)
        .unwrap();
    let mut i = 0u64;
    c.bench_function("page_table_translate", |b| {
        b.iter(|| {
            i = (i + 4096) % (64 << 20);
            black_box(pt.translate(Iova(i)).unwrap())
        })
    });
}

fn bench_swift(c: &mut Criterion) {
    let mut swift = Swift::new(SwiftConfig::default(), 8.0);
    let mut t = 0u64;
    c.bench_function("swift_on_ack", |b| {
        b.iter(|| {
            t += 20;
            swift.on_ack(AckSample {
                now: SimTime::from_micros(t),
                rtt: SimDuration::from_micros(25),
                host_delay: SimDuration::from_micros((t % 150) as u64),
                ecn_ce: false,
                nic_buffer_frac: 0.0,
                newly_acked: 1,
            });
            black_box(swift.cwnd())
        })
    });
}

fn bench_testbed_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed");
    group.sample_size(10);
    group.bench_function("one_ms_slice_12_cores", |b| {
        b.iter(|| {
            let mut cfg = scenarios::fig3(12, true);
            cfg.senders = 8;
            black_box(run(
                cfg,
                RunPlan {
                    warmup: SimDuration::from_micros(500),
                    measure: SimDuration::from_micros(500),
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_iommu,
    bench_page_table,
    bench_swift,
    bench_testbed_slice
);
criterion_main!(benches);
