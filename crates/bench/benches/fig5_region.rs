//! Figure 5: provisioning for larger BDPs worsens IOMMU contention.
//!
//! Throughput / drop rate / IOTLB misses vs. the per-thread Rx memory
//! region size (4–16 MiB) at 12 receiver cores, IOMMU ON vs OFF. Larger
//! regions pin more pages per thread, so the same number of concurrent
//! requests touches more IOTLB entries.

use hostcc::experiment::sweep;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc_bench::{emit, plan, region_axis};

fn main() {
    let mut points = Vec::new();
    for &mib in &region_axis() {
        for on in [true, false] {
            points.push(((mib, on), scenarios::fig5(mib, on)));
        }
    }
    let results = sweep(points, plan()).expect("bench configs run");

    let mut table = Table::new([
        "region_mib",
        "iommu",
        "tp_gbps",
        "drop_rate",
        "iotlb_miss_per_pkt",
        "hostdelay_p99_us",
    ]);
    for p in &results {
        let (mib, on) = p.label;
        let m = &p.metrics;
        table.row([
            mib.to_string(),
            if on { "ON" } else { "OFF" }.to_string(),
            f(m.app_throughput_gbps(), 2),
            pct(m.drop_rate()),
            f(m.iotlb_misses_per_packet(), 2),
            f(m.host_delay_p99_us(), 1),
        ]);
    }
    emit(
        "fig5_region",
        "Figure 5 — throughput / drops / IOTLB misses vs Rx region size (12 cores)",
        &table,
    );

    println!(
        "paper shape: IOMMU OFF flat at ~92 Gbps; IOMMU ON degrades as the region grows \
         (misses/pkt ~0.5 -> ~2), with drop rate relieved at 16 MiB because host delay \
         finally exceeds the CC target (98.7 us at 12 MiB -> 110.5 us at 16 MiB)"
    );
}
