//! Engine dispatch benchmark: timing wheel vs. reference binary heap.
//!
//! Drives three representative workloads — the paper's incast
//! microbenchmark, the Fig. 6 antagonist sweep, and a heterogeneous
//! cluster fleet — through the full testbed on both event-queue
//! implementations, reads the engine's `DispatchProfile`, and writes
//! `BENCH_engine.json` at the repo root.
//!
//! Throughput numbers are a *report* (regressions judged by humans reading
//! the artifact), but two structural properties are hard *gates* that fail
//! this binary — and with it the CI bench-smoke job:
//!
//! 1. `size_of::<Event>()` must stay within the 24-byte handle-size budget
//!    (also enforced at compile time in `hostcc-host`);
//! 2. the steady-state dispatch loop must perform **zero** heap
//!    allocations per event, measured with a counting global allocator
//!    (enabled only in this binary) over an unarmed steady-state segment.
//!
//! Set `HOSTCC_QUICK=1` for a short CI run.

use hostcc::experiment::RunPlan;
use hostcc::fleet::{Fleet, FleetConfig, FleetTopology};
use hostcc::substrate::host::Event;
use hostcc::substrate::sim::{Queue, SimDuration};
use hostcc::substrate::trace::json::JsonWriter;
use hostcc::{scenarios, Simulation, TelemetryConfig, TestbedConfig};
use hostcc_bench::{plan, quick};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting allocator: every heap allocation (and reallocation) bumps a
/// counter, then delegates to the system allocator. Installed only in
/// this bench binary — the library crates stay `forbid(unsafe_code)`.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One scenario: a named bundle of testbed configs run back to back on a
/// single engine profile (events and wall time accumulate across runs).
struct Scenario {
    name: &'static str,
    configs: Vec<TestbedConfig>,
}

/// Time mode: exact 1 ns event timestamps, or the coarse 64 ns grid with
/// chain fusion (`scenarios::with_coarse_time`). Exact mode is the
/// library default and gates batching at parity; coarse mode is the
/// opt-in profile where slot-drain batching must actually pay.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TimeMode {
    Exact,
    Coarse,
}

impl TimeMode {
    fn label(self, name: &str) -> String {
        match self {
            TimeMode::Exact => name.to_string(),
            TimeMode::Coarse => format!("coarse_{name}"),
        }
    }

    fn resolution_ns(self) -> u64 {
        match self {
            TimeMode::Exact => 1,
            TimeMode::Coarse => 64,
        }
    }
}

/// Short git revision stamped into every BENCH entry, so a recorded
/// number can always be traced back to the code that produced it.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Methodology tag recorded next to each measurement: how the number was
/// taken, so future readers don't compare incompatible runs.
const METHODOLOGY: &str =
    "interleaved-chunks warmup=2 measure=8; gate=best-of-retries; shared-runner wall clock";

fn scenarios_under_test() -> Vec<Scenario> {
    // Incast: the paper's §3 microbenchmark at 12 receiver cores.
    let incast = Scenario {
        name: "incast",
        configs: vec![scenarios::fig3(12, true)],
    };
    // Antagonist sweep: Fig. 6 points from idle to saturated memory bus.
    let antagonist_cores: &[u32] = if quick() { &[8] } else { &[0, 8, 15] };
    let antagonist = Scenario {
        name: "antagonist_sweep",
        configs: antagonist_cores
            .iter()
            .map(|&c| scenarios::fig6(c, true))
            .collect(),
    };
    // Cluster fleet: heterogeneous hosts — mixed RPC sizes, varying MTUs,
    // core counts, seeds *and NIC generations* (200/400 G), as in the
    // Fig. 1 fleet scatter. The newer-generation, small-MTU hosts are
    // the fleet's event-dense tail: a 400 G host moving 1-2 KiB packets
    // pushes ~8x the events per simulated nanosecond of the 100 G
    // testbed, which is the regime where the coarse grid's slot sharing
    // (and therefore batched dispatch) must pay.
    // Per host: (line-rate generation, MTU payload, threads, antagonists).
    let fleet_hosts: &[(u32, u32, u32, u32)] = if quick() {
        &[(4, 1024, 16, 4), (4, 1024, 16, 0)]
    } else {
        &[
            (2, 2048, 12, 0),
            (4, 1024, 16, 4),
            (4, 2048, 12, 8),
            (4, 1024, 16, 0),
        ]
    };
    let fleet = Scenario {
        name: "cluster_fleet",
        configs: fleet_hosts
            .iter()
            .enumerate()
            .map(|(host, &(gen, mtu, threads, ants))| {
                let mut cfg = scenarios::with_mixed_reads(scenarios::baseline());
                cfg.seed = 0xF1EE7 + host as u64;
                cfg.receiver_threads = threads;
                cfg.antagonist_cores = ants;
                cfg.wire.mtu_payload = mtu;
                scenarios::with_line_rate_generation(cfg, gen)
            })
            .collect(),
    };
    vec![incast, antagonist, fleet]
}

/// Accumulated dispatch statistics for one queue/dispatch configuration.
#[derive(Default)]
struct QueueStats {
    events: u64,
    wall_nanos: u64,
    dispatched: u64,
    batches: u64,
    max_batch: u64,
}

impl QueueStats {
    fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_nanos as f64
    }

    fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.events as f64 / self.batches as f64
    }
}

fn absorb<Q: Queue<Event>>(sim: &Simulation<Q>, stats: &mut QueueStats) {
    let p = sim.profile().expect("profiling enabled");
    stats.events += p.events;
    stats.wall_nanos += p.wall_nanos;
    stats.dispatched += sim.dispatched_total();
    stats.batches += p.batches;
    stats.max_batch = stats.max_batch.max(p.max_batch);
}

/// Warm-up and measurement chunks per phase: the three dispatch
/// configurations advance through simulated time *interleaved* in short
/// chunks, so wall-clock noise on a shared machine (frequency drift,
/// co-tenants) averages across all three instead of landing on whichever
/// configuration happened to run last.
const WARMUP_CHUNKS: u64 = 2;
const MEASURE_CHUNKS: u64 = 8;

fn run_scenario(sc: &Scenario, plan: &RunPlan) -> (QueueStats, QueueStats, QueueStats) {
    let mut heap = QueueStats::default();
    let mut wheel = QueueStats::default();
    let mut batched = QueueStats::default();
    // `heap` and `wheel` dispatch per event; `batched` is the wheel with
    // slot-drain batching on (the library default).
    for cfg in &sc.configs {
        let mut h = Simulation::with_heap_queue(cfg.clone());
        h.set_batched(false);
        let mut w = Simulation::new(cfg.clone());
        w.set_batched(false);
        let mut b = Simulation::new(cfg.clone());
        h.enable_profiling();
        w.enable_profiling();
        b.enable_profiling();
        let warm_chunk = plan.warmup / WARMUP_CHUNKS;
        for _ in 0..WARMUP_CHUNKS {
            h.advance(warm_chunk);
            w.advance(warm_chunk);
            b.advance(warm_chunk);
        }
        let now = h.now();
        h.world_mut().arm_metrics(now);
        w.world_mut().arm_metrics(now);
        b.world_mut().arm_metrics(now);
        let measure_chunk = plan.measure / MEASURE_CHUNKS;
        for _ in 0..MEASURE_CHUNKS {
            h.advance(measure_chunk);
            w.advance(measure_chunk);
            b.advance(measure_chunk);
        }
        absorb(&h, &mut heap);
        absorb(&w, &mut wheel);
        absorb(&b, &mut batched);
    }
    (heap, wheel, batched)
}

/// Steady-state allocation audit: warm an incast testbed past every
/// container's peak working set, then count heap allocations across a
/// measurement segment. Runs with metrics *unarmed* (`advance`, not
/// `run`) so the audit sees only the dispatch loop, not the metrics
/// collector's sample vectors. Returns (allocations, events).
fn audit_steady_state_allocs(plan: &RunPlan) -> (u64, u64) {
    let mut sim = Simulation::new(scenarios::fig3(12, true));
    // Warm-up: slabs, rings, flow windows and the wheel arena all grow to
    // their peak here; a second warmup leg catches late growth (e.g. the
    // first RTO-driven window excursion).
    sim.advance(plan.warmup);
    sim.advance(plan.warmup);
    let events_before = sim.dispatched_total();
    let allocs_before = allocs_now();
    sim.advance(plan.measure);
    let allocs = allocs_now() - allocs_before;
    let events = sim.dispatched_total() - events_before;
    (allocs, events)
}

/// Sampler-overhead measurement: the incast workload with telemetry off
/// vs. on (default 5 µs cadence), advanced through simulated time in
/// interleaved chunks like `run_scenario`. Returns (off, on, samples).
/// The per-sample cost is the wall-clock delta over the sample count —
/// noisy on shared runners, so the throughput gate re-measures on failure
/// rather than trusting one comparison.
fn run_telemetry_overhead(plan: &RunPlan) -> (QueueStats, QueueStats, u64) {
    let cfg = scenarios::fig3(12, true);
    let mut cfg_on = cfg.clone();
    cfg_on.telemetry = TelemetryConfig::enabled();
    let mut off_sim = Simulation::new(cfg);
    let mut on_sim = Simulation::new(cfg_on);
    off_sim.enable_profiling();
    on_sim.enable_profiling();
    let warm_chunk = plan.warmup / WARMUP_CHUNKS;
    for _ in 0..WARMUP_CHUNKS {
        off_sim.advance(warm_chunk);
        on_sim.advance(warm_chunk);
    }
    let measure_chunk = plan.measure / MEASURE_CHUNKS;
    for _ in 0..MEASURE_CHUNKS {
        off_sim.advance(measure_chunk);
        on_sim.advance(measure_chunk);
    }
    let mut off = QueueStats::default();
    let mut on = QueueStats::default();
    absorb(&off_sim, &mut off);
    absorb(&on_sim, &mut on);
    (off, on, on_sim.world().telemetry.samples_taken())
}

/// Checkpoint overhead: serializing the full simulation every 5 simulated
/// milliseconds versus an identical run that never checkpoints. Both legs
/// advance through the same interleaved slice schedule (the campaign
/// runner's default cadence), so the wall-clock ratio isolates the
/// serializer itself. Returns (off, on, checkpoints, bytes-per-checkpoint).
fn run_checkpoint_overhead(plan: &RunPlan) -> (QueueStats, QueueStats, u64, u64) {
    const CADENCE: SimDuration = SimDuration::from_millis(5);
    let cfg = scenarios::fig3(12, true);
    let mut off_sim = Simulation::new(cfg.clone());
    let mut on_sim = Simulation::new(cfg);
    let warm_chunk = plan.warmup / WARMUP_CHUNKS;
    for _ in 0..WARMUP_CHUNKS {
        off_sim.advance(warm_chunk);
        on_sim.advance(warm_chunk);
    }
    let mut off = QueueStats::default();
    let mut on = QueueStats::default();
    let mut checkpoints = 0u64;
    let mut checkpoint_bytes = 0u64;
    let mut remaining = plan.measure;
    while remaining > SimDuration::ZERO {
        let step = remaining.min(CADENCE);

        let before = off_sim.dispatched_total();
        let t = std::time::Instant::now();
        off_sim.advance(step);
        off.wall_nanos += t.elapsed().as_nanos() as u64;
        off.events += off_sim.dispatched_total() - before;

        let before = on_sim.dispatched_total();
        let t = std::time::Instant::now();
        on_sim.advance(step);
        let bytes = on_sim.save_checkpoint().expect("slot-boundary checkpoint");
        on.wall_nanos += t.elapsed().as_nanos() as u64;
        on.events += on_sim.dispatched_total() - before;
        checkpoints += 1;
        checkpoint_bytes = bytes.len() as u64;

        remaining -= step;
    }
    (off, on, checkpoints, checkpoint_bytes)
}

/// Steady-state allocation audit with the telemetry sampler running: the
/// sample path (ring push, detector update, baseline Welford) must stay
/// allocation-free once warm, same as the dispatch loop itself.
fn audit_telemetry_allocs(plan: &RunPlan) -> (u64, u64) {
    let mut cfg = scenarios::fig3(12, true);
    cfg.telemetry = TelemetryConfig::enabled();
    let mut sim = Simulation::new(cfg);
    sim.advance(plan.warmup);
    sim.advance(plan.warmup);
    let samples_before = sim.world().telemetry.samples_taken();
    let allocs_before = allocs_now();
    sim.advance(plan.measure);
    let allocs = allocs_now() - allocs_before;
    let samples = sim.world().telemetry.samples_taken() - samples_before;
    (allocs, samples)
}

/// The parallel-fleet scaling workload: 1,000 light-profile hosts on an
/// incast tree (`tree:4`), the fleet class the scaling runbook in
/// EXPERIMENTS.md is built around.
const FLEET_HOSTS: u32 = 1_000;

/// Simulated spans for the fleet legs. The probe runs under the static
/// round-robin placement to accumulate per-host cost counters before the
/// rebalance; warmup absorbs start-of-run transients; only the measure
/// span is timed.
const FLEET_PROBE: SimDuration = SimDuration::from_micros(100);
const FLEET_WARMUP: SimDuration = SimDuration::from_micros(200);

fn fleet_measure_span() -> SimDuration {
    if quick() {
        SimDuration::from_micros(500)
    } else {
        SimDuration::from_millis(2)
    }
}

/// One measured leg of the parallel-fleet scaling bench: the 1k-light-host
/// tree fleet at `shards` worker threads, probed + cost-rebalanced, warmed
/// up, then timed over the measurement span. Events/epochs are deltas over
/// the measured segment only; the imbalance ratios and per-shard event
/// totals are cumulative over the whole run.
struct FleetStats {
    shards: u32,
    worker_threads: usize,
    events: u64,
    wall_nanos: u64,
    epochs: u64,
    super_epochs: u64,
    /// Cumulative dispatched events per shard under the final placement.
    shard_events: Vec<u64>,
    /// max/min per-shard event ratio under round-robin, measured at the
    /// end of the probe slice (before the rebalance).
    imbalance_round_robin: f64,
    /// max/min per-shard event ratio at the end of the run, after the
    /// cost-based rebalance.
    imbalance_rebalanced: f64,
}

impl FleetStats {
    fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_nanos as f64
    }
}

fn run_parallel_fleet(shards: u32) -> FleetStats {
    let cfg = FleetConfig::light_fleet(FLEET_HOSTS, shards);
    let mut fleet = Fleet::new(&cfg).expect("valid fleet config");
    // The slice schedule (probe/warmup/measure boundaries) is identical at
    // every shard count, so the epoch grid — and with it the event totals
    // asserted below — are directly comparable across legs.
    let t0 = fleet.now();
    fleet.run_to(t0 + FLEET_PROBE).expect("fleet probe");
    let imbalance_round_robin = fleet.imbalance_ratio();
    fleet.rebalance();
    let t1 = fleet.now();
    fleet.run_to(t1 + FLEET_WARMUP).expect("fleet warmup");
    let events_before = fleet.dispatched_total();
    let epochs_before = fleet.epochs();
    let super_before = fleet.super_epochs();
    let t2 = fleet.now();
    let start = std::time::Instant::now();
    fleet
        .run_to(t2 + fleet_measure_span())
        .expect("fleet measure");
    let wall_nanos = start.elapsed().as_nanos() as u64;
    FleetStats {
        shards,
        worker_threads: fleet.shards(),
        events: fleet.dispatched_total() - events_before,
        wall_nanos,
        epochs: fleet.epochs() - epochs_before,
        super_epochs: fleet.super_epochs() - super_before,
        shard_events: fleet.shard_event_totals(),
        imbalance_round_robin,
        imbalance_rebalanced: fleet.imbalance_ratio(),
    }
}

/// Super-epoch batching on a sparse fleet: the same light hosts with the
/// fan-in severed (`ring:0`), run once with barrier amortization and once
/// in classic per-lookahead-window mode. Uncoupled hosts can never send
/// across shards, so the amortized run collapses each `run_to` slice into
/// a single super-epoch while dispatching the exact same events.
fn run_sparse_fleet(amortize: bool) -> (u64, u64, u64) {
    let mut cfg = FleetConfig::light_fleet(64, 2);
    cfg.topology = FleetTopology::FaninRing { fanin: 0 };
    let mut fleet = Fleet::new(&cfg).expect("valid fleet config");
    fleet.set_amortization(amortize);
    let t0 = fleet.now();
    fleet
        .run_to(t0 + SimDuration::from_micros(500))
        .expect("sparse fleet slice 1");
    let t1 = fleet.now();
    fleet
        .run_to(t1 + SimDuration::from_micros(500))
        .expect("sparse fleet slice 2");
    (
        fleet.epochs(),
        fleet.super_epochs(),
        fleet.dispatched_total(),
    )
}

fn main() {
    let plan = plan();

    let event_size = std::mem::size_of::<Event>();
    const EVENT_SIZE_BOUND: usize = 24;
    assert!(
        event_size <= EVENT_SIZE_BOUND,
        "size_of::<Event>() = {event_size} exceeds the {EVENT_SIZE_BOUND}-byte budget"
    );

    let (ss_allocs, ss_events) = audit_steady_state_allocs(&plan);
    let allocs_per_event = ss_allocs as f64 / ss_events.max(1) as f64;
    println!(
        "event size {event_size} B (bound {EVENT_SIZE_BOUND}); steady state: {ss_allocs} allocs / {ss_events} events = {allocs_per_event:.6} allocs/event"
    );
    assert_eq!(
        ss_allocs, 0,
        "steady-state dispatch loop allocated {ss_allocs} times over {ss_events} events"
    );

    // Telemetry must obey the same discipline: zero heap allocations per
    // sample once the rings and episode table are warm.
    let (tel_allocs, tel_samples) = audit_telemetry_allocs(&plan);
    println!("telemetry steady state: {tel_allocs} allocs / {tel_samples} samples");
    assert_eq!(
        tel_allocs, 0,
        "telemetry sample path allocated {tel_allocs} times over {tel_samples} samples"
    );

    // Sampler overhead: telemetry-on must keep ≥ 95% of telemetry-off
    // wall-clock speed over the same simulated span. Re-measured on
    // failure like the batching gate — the signal is a few percent, well
    // inside shared-runner jitter for any single comparison.
    const OVERHEAD_FLOOR: f64 = 0.95;
    const OVERHEAD_RETRIES: u32 = 4;
    let (mut t_off, mut t_on, mut t_samples) = run_telemetry_overhead(&plan);
    let speed_ratio = |off: &QueueStats, on: &QueueStats| {
        if on.wall_nanos == 0 {
            0.0
        } else {
            off.wall_nanos as f64 / on.wall_nanos as f64
        }
    };
    let mut tel_best = speed_ratio(&t_off, &t_on);
    let mut tel_retries = 0;
    while tel_best < OVERHEAD_FLOOR
        && tel_retries < OVERHEAD_RETRIES
        && std::env::var_os("HOSTCC_BENCH_NO_GATE").is_none()
    {
        tel_retries += 1;
        let (o, n, s) = run_telemetry_overhead(&plan);
        let ratio = speed_ratio(&o, &n);
        println!("  overhead retry {tel_retries}: on/off speed = {ratio:.3}");
        if ratio > tel_best {
            (t_off, t_on, t_samples) = (o, n, s);
            tel_best = ratio;
        }
    }
    let tel_ns_per_sample = if t_samples == 0 {
        0.0
    } else {
        (t_on.wall_nanos as f64 - t_off.wall_nanos as f64) / t_samples as f64
    };
    println!(
        "telemetry overhead: {t_samples} samples, on/off speed {tel_best:.3} (floor {OVERHEAD_FLOOR}), ~{tel_ns_per_sample:.0} ns/sample"
    );
    assert!(
        std::env::var_os("HOSTCC_BENCH_NO_GATE").is_some() || tel_best >= OVERHEAD_FLOOR,
        "telemetry-on run slower than {OVERHEAD_FLOOR}x telemetry-off across {} attempts (best {tel_best:.3}x)",
        tel_retries + 1
    );

    // Checkpoint overhead: a full-state serialization every 5 simulated
    // ms (the campaign runner's default cadence) must keep ≥ 95% of
    // checkpoint-off wall-clock speed. Same retry discipline as the
    // telemetry gate — the signal is a few percent against shared-runner
    // jitter — with the same HOSTCC_BENCH_NO_GATE escape hatch.
    const CKPT_FLOOR: f64 = 0.95;
    const CKPT_RETRIES: u32 = 4;
    let (mut c_off, mut c_on, mut c_count, mut c_bytes) = run_checkpoint_overhead(&plan);
    let mut ckpt_best = speed_ratio(&c_off, &c_on);
    let mut ckpt_retries = 0;
    while ckpt_best < CKPT_FLOOR
        && ckpt_retries < CKPT_RETRIES
        && std::env::var_os("HOSTCC_BENCH_NO_GATE").is_none()
    {
        ckpt_retries += 1;
        let (o, n, c, b) = run_checkpoint_overhead(&plan);
        let ratio = speed_ratio(&o, &n);
        println!("  checkpoint retry {ckpt_retries}: on/off speed = {ratio:.3}");
        if ratio > ckpt_best {
            (c_off, c_on, c_count, c_bytes) = (o, n, c, b);
            ckpt_best = ratio;
        }
    }
    let ckpt_ns_each = if c_count == 0 {
        0.0
    } else {
        (c_on.wall_nanos as f64 - c_off.wall_nanos as f64) / c_count as f64
    };
    println!(
        "checkpoint overhead: {c_count} checkpoint(s) of {c_bytes} B, on/off speed {ckpt_best:.3} (floor {CKPT_FLOOR}), ~{ckpt_ns_each:.0} ns each"
    );
    assert!(
        std::env::var_os("HOSTCC_BENCH_NO_GATE").is_some() || ckpt_best >= CKPT_FLOOR,
        "checkpoint-on run slower than {CKPT_FLOOR}x checkpoint-off across {} attempts (best {ckpt_best:.3}x)",
        ckpt_retries + 1
    );

    let revision = git_revision();
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("bench").str("engine");
    w.key("revision").str(&revision);
    w.key("methodology").str(METHODOLOGY);
    w.key("quick").bool(quick());
    w.key("warmup_ns").int(plan.warmup.as_nanos());
    w.key("measure_ns").int(plan.measure.as_nanos());
    w.key("event_size_bytes").int(event_size as u64);
    w.key("event_size_bound").int(EVENT_SIZE_BOUND as u64);
    w.key("steady_state_allocs").int(ss_allocs);
    w.key("steady_state_events").int(ss_events);
    w.key("allocs_per_event").num(allocs_per_event);
    w.key("telemetry").begin_obj();
    w.key("samples_per_run").int(t_samples);
    w.key("ns_per_sample").num(tel_ns_per_sample);
    w.key("on_off_speed_ratio").num(tel_best);
    w.key("speed_floor").num(OVERHEAD_FLOOR);
    w.key("steady_state_allocs").int(tel_allocs);
    w.key("steady_state_samples").int(tel_samples);
    w.key("off_events_per_sec").num(t_off.events_per_sec());
    w.key("on_events_per_sec").num(t_on.events_per_sec());
    w.end_obj();
    w.key("checkpoint").begin_obj();
    w.key("cadence_ms").int(5);
    w.key("checkpoints_per_run").int(c_count);
    w.key("bytes_per_checkpoint").int(c_bytes);
    w.key("ns_per_checkpoint").num(ckpt_ns_each);
    w.key("on_off_speed_ratio").num(ckpt_best);
    w.key("speed_floor").num(CKPT_FLOOR);
    w.key("off_events_per_sec").num(c_off.events_per_sec());
    w.key("on_events_per_sec").num(c_on.events_per_sec());
    w.end_obj();
    w.key("scenarios").begin_arr();

    println!(
        "{:<24} {:>6} {:>13} {:>13} {:>13} {:>7} {:>7}",
        "scenario", "runs", "heap ev/s", "wheel ev/s", "batch ev/s", "w/h", "b/w"
    );
    let mut incast_speedup = 0.0;
    for mode in [TimeMode::Exact, TimeMode::Coarse] {
        for sc in scenarios_under_test() {
            let sc = match mode {
                TimeMode::Exact => sc,
                TimeMode::Coarse => Scenario {
                    name: sc.name,
                    configs: sc
                        .configs
                        .into_iter()
                        .map(scenarios::with_coarse_time)
                        .collect(),
                },
            };
            let label = mode.label(sc.name);
            let (heap, wheel, batched) = run_scenario(&sc, &plan);
            assert_eq!(
                heap.dispatched, wheel.dispatched,
                "{label}: queue implementations dispatched different event counts"
            );
            assert_eq!(
                wheel.dispatched, batched.dispatched,
                "{label}: batched dispatch handled a different event count"
            );
            let speedup = if heap.events_per_sec() > 0.0 {
                wheel.events_per_sec() / heap.events_per_sec()
            } else {
                0.0
            };
            let batch_speedup = if wheel.events_per_sec() > 0.0 {
                batched.events_per_sec() / wheel.events_per_sec()
            } else {
                0.0
            };
            let heap_speedup = if heap.events_per_sec() > 0.0 {
                batched.events_per_sec() / heap.events_per_sec()
            } else {
                0.0
            };
            if label == "incast" {
                incast_speedup = speedup;
            }
            println!(
                "{:<24} {:>6} {:>13.0} {:>13.0} {:>13.0} {:>6.2}x {:>6.2}x  (mean batch {:.2}, max {})",
                label,
                sc.configs.len(),
                heap.events_per_sec(),
                wheel.events_per_sec(),
                batched.events_per_sec(),
                speedup,
                batch_speedup,
                batched.mean_batch(),
                batched.max_batch
            );
            // Hard gates, per time mode:
            //
            // * every scenario, both modes: batched wheel dispatch must
            //   beat the per-event binary-heap engine (`>= 1.0x` batched
            //   vs heap) — the heap is dispatch as it stood before the
            //   wheel landed, so this is the floor under "the new engine
            //   never loses to the old one" (measured >= 1.19x across
            //   the board);
            // * batched vs the per-event *wheel* holds a no-regression
            //   band (`>= 0.95x`). At 1 ns resolution slots are almost
            //   all singletons (mean batch ~1.02-1.05), so the batched
            //   loop's slot re-peek is a measurable ~2% tax on the
            //   densest exact scenario — parity within jitter is all
            //   batching can offer when there is nothing to batch;
            // * coarse fleet (64 ns grid + chain fusion over the
            //   next-generation hosts): batching must actually pay —
            //   `>= 1.25x` over the per-event heap (the restored
            //   headline target; measured ~1.55x), `>= 1.05x` over the
            //   per-event wheel (measured ~1.10x — the wheel already
            //   amortises slot scans per-event, so handler work bounds
            //   this ratio; see DESIGN.md) — and the mean batch must
            //   clear a structural floor of 4 events per drained slot.
            //   The fleet's 200/400 G hosts push enough events per grid
            //   slot that a mean batch near 1 means quantisation
            //   silently broke. The 100 G-only scenarios (incast,
            //   antagonist) run ~1.5 events per 64 ns slot —
            //   structurally too sparse for batching to pay a fixed
            //   margin there.
            //
            // The wall-clock ratios re-measure on failure (up to
            // `GATE_RETRIES` fresh interleaved comparisons) because
            // shared runners jitter events/sec by several percent — a
            // real regression fails every attempt, measurement noise
            // does not. The mean-batch floor is simulation-determined
            // (no wall clock involved) and is asserted directly.
            const GATE_RETRIES: u32 = 4;
            let dense = mode == TimeMode::Coarse && sc.name == "cluster_fleet";
            let wheel_floor = if dense { 1.05 } else { 0.95 };
            let heap_floor = if dense { 1.25 } else { 1.0 };
            const COARSE_MEAN_BATCH_FLOOR: f64 = 4.0;
            let gated = std::env::var_os("HOSTCC_BENCH_NO_GATE").is_none();
            if dense {
                assert!(
                    !gated || batched.mean_batch() >= COARSE_MEAN_BATCH_FLOOR,
                    "{label}: coarse-grid mean batch {:.2} below floor {COARSE_MEAN_BATCH_FLOOR}",
                    batched.mean_batch()
                );
            }
            let mut best_wheel = batch_speedup;
            let mut best_heap = heap_speedup;
            let mut retries = 0;
            while (best_wheel < wheel_floor || best_heap < heap_floor)
                && retries < GATE_RETRIES
                && gated
            {
                retries += 1;
                let (rh, rw, rb) = run_scenario(&sc, &plan);
                let vs_wheel = if rw.events_per_sec() > 0.0 {
                    rb.events_per_sec() / rw.events_per_sec()
                } else {
                    0.0
                };
                let vs_heap = if rh.events_per_sec() > 0.0 {
                    rb.events_per_sec() / rh.events_per_sec()
                } else {
                    0.0
                };
                println!(
                    "  gate retry {retries}: {label} batched/wheel = {vs_wheel:.3}, batched/heap = {vs_heap:.3}"
                );
                best_wheel = best_wheel.max(vs_wheel);
                best_heap = best_heap.max(vs_heap);
            }
            assert!(
                !gated || best_wheel >= wheel_floor,
                "{label}: batched dispatch below {wheel_floor}x of the per-event wheel across {} attempts (best {best_wheel:.3}x)",
                retries + 1,
            );
            assert!(
                !gated || best_heap >= heap_floor,
                "{label}: batched dispatch below {heap_floor}x of the per-event heap across {} attempts (best {best_heap:.3}x)",
                retries + 1,
            );
            w.begin_obj();
            w.key("name").str(&label);
            w.key("revision").str(&revision);
            w.key("methodology").str(METHODOLOGY);
            w.key("resolution_ns").int(mode.resolution_ns());
            w.key("fuse_chains").bool(mode == TimeMode::Coarse);
            w.key("runs").int(sc.configs.len() as u64);
            for (label, stats) in [("heap", &heap), ("wheel", &wheel), ("batched", &batched)] {
                w.key(label).begin_obj();
                w.key("events").int(stats.events);
                w.key("wall_nanos").int(stats.wall_nanos);
                w.key("events_per_sec").num(stats.events_per_sec());
                if stats.batches > 0 {
                    w.key("batches").int(stats.batches);
                    w.key("mean_batch").num(stats.mean_batch());
                    w.key("max_batch").int(stats.max_batch);
                }
                w.end_obj();
            }
            w.key("speedup").num(speedup);
            w.key("batched_speedup").num(batch_speedup);
            w.key("batched_vs_heap").num(heap_speedup);
            // Best ratios the gates observed across their attempts:
            // single measurements jitter a few percent either side of
            // the floors, so these are the numbers the assertions
            // actually held on.
            w.key("batched_speedup_confirmed").num(best_wheel);
            w.key("batched_speedup_floor").num(wheel_floor);
            w.key("batched_vs_heap_confirmed").num(best_heap);
            w.key("batched_vs_heap_floor").num(heap_floor);
            w.key("dispatched_events").int(wheel.dispatched);
            w.end_obj();
        }
    }
    w.end_arr();

    // Parallel-fleet scaling: 1,000 light-profile hosts on an incast tree
    // (`tree:4`, 8 µs fabric lookahead) at increasing shard counts, with a
    // probe slice + measured-cost rebalance before the timed span.
    // Determinism gives identical events/epochs at every shard count —
    // asserted here, not just reported — so the only thing that varies is
    // the wall clock. The ≥1.8x-at-4-shards throughput gate enforces only
    // on machines with at least 4 cores (this container/CI class); on
    // smaller machines the numbers are recorded report-only, with the
    // enforcement status in the artifact so a reader knows which kind of
    // number they are looking at. The post-rebalance imbalance ceiling is
    // deterministic (event counts, not wall clock), so it enforces
    // everywhere gates are on.
    let gated = std::env::var_os("HOSTCC_BENCH_NO_GATE").is_none();
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    const FLEET_SPEEDUP_FLOOR: f64 = 1.8;
    const FLEET_IMBALANCE_CEILING: f64 = 1.15;
    const FLEET_GATE_RETRIES: u32 = 4;
    let enforce_fleet_gate = gated && avail >= 4;
    let shard_counts: &[u32] = if quick() { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut fleet_stats: Vec<FleetStats> = shard_counts
        .iter()
        .map(|&s| run_parallel_fleet(s))
        .collect();
    for s in &fleet_stats[1..] {
        assert_eq!(
            s.events, fleet_stats[0].events,
            "parallel_fleet: dispatch totals diverged at {} shards",
            s.shards
        );
        assert_eq!(
            s.epochs, fleet_stats[0].epochs,
            "parallel_fleet: epoch counts diverged at {} shards",
            s.shards
        );
    }
    let fleet_speedup = |stats: &[FleetStats], shards: u32| -> f64 {
        let base = stats
            .iter()
            .find(|s| s.shards == 1)
            .map(FleetStats::events_per_sec);
        let at = stats
            .iter()
            .find(|s| s.shards == shards)
            .map(FleetStats::events_per_sec);
        match (base, at) {
            (Some(b), Some(a)) if b > 0.0 => a / b,
            _ => 0.0,
        }
    };
    let mut best_fleet_speedup = fleet_speedup(&fleet_stats, 4);
    let mut fleet_retries = 0;
    while best_fleet_speedup < FLEET_SPEEDUP_FLOOR
        && fleet_retries < FLEET_GATE_RETRIES
        && enforce_fleet_gate
    {
        fleet_retries += 1;
        let retry: Vec<FleetStats> = [1u32, 4].iter().map(|&s| run_parallel_fleet(s)).collect();
        let ratio = fleet_speedup(&retry, 4);
        println!("  fleet gate retry {fleet_retries}: 4-shard speedup = {ratio:.3}");
        if ratio > best_fleet_speedup {
            best_fleet_speedup = ratio;
            for r in retry {
                if let Some(slot) = fleet_stats.iter_mut().find(|s| s.shards == r.shards) {
                    *slot = r;
                }
            }
        }
    }
    for s in &fleet_stats {
        println!(
            "parallel_fleet shards={:<2} ({} threads) {:>13.0} ev/s  {:>6.2}x  ({} epochs, imbalance {:.3} -> {:.3})",
            s.shards,
            s.worker_threads,
            s.events_per_sec(),
            fleet_speedup(&fleet_stats, s.shards),
            s.epochs,
            s.imbalance_round_robin,
            s.imbalance_rebalanced
        );
    }
    println!(
        "parallel_fleet gate: 4-shard speedup {best_fleet_speedup:.3} (floor {FLEET_SPEEDUP_FLOOR}, {} on {avail}-core machine)",
        if enforce_fleet_gate { "enforced" } else { "report-only" }
    );
    assert!(
        !enforce_fleet_gate || best_fleet_speedup >= FLEET_SPEEDUP_FLOOR,
        "parallel_fleet: 4-shard dispatch throughput below {FLEET_SPEEDUP_FLOOR}x of 1 shard across {} attempts (best {best_fleet_speedup:.3}x)",
        fleet_retries + 1
    );
    let imbalance_at_4 = fleet_stats
        .iter()
        .find(|s| s.shards == 4)
        .map(|s| s.imbalance_rebalanced)
        .unwrap_or(1.0);
    println!(
        "parallel_fleet gate: 4-shard post-rebalance imbalance {imbalance_at_4:.3} (ceiling {FLEET_IMBALANCE_CEILING}, {})",
        if gated { "enforced" } else { "report-only" }
    );
    assert!(
        !gated || imbalance_at_4 <= FLEET_IMBALANCE_CEILING,
        "parallel_fleet: post-rebalance event imbalance {imbalance_at_4:.3} at 4 shards exceeds {FLEET_IMBALANCE_CEILING}"
    );

    // Super-epoch batching on the sparse (uncoupled) fleet: the amortized
    // run must dispatch the same events in strictly fewer epochs. Both
    // counts are deterministic, so this gate holds on any machine.
    let (sparse_classic_epochs, _, sparse_classic_events) = run_sparse_fleet(false);
    let (sparse_amortized_epochs, sparse_super_epochs, sparse_amortized_events) =
        run_sparse_fleet(true);
    println!(
        "parallel_fleet super-epochs: sparse fleet {sparse_classic_epochs} classic epochs -> {sparse_amortized_epochs} amortized ({sparse_super_epochs} super)"
    );
    assert_eq!(
        sparse_classic_events, sparse_amortized_events,
        "parallel_fleet: super-epoch batching changed the sparse fleet's dispatch totals"
    );
    assert!(
        !gated || sparse_amortized_epochs < sparse_classic_epochs,
        "parallel_fleet: super-epoch batching did not reduce epochs on the sparse fleet ({sparse_amortized_epochs} vs {sparse_classic_epochs})"
    );

    w.key("parallel_fleet").begin_obj();
    w.key("hosts").int(FLEET_HOSTS as u64);
    w.key("topology").str("tree:4");
    w.key("host_profile").str("light");
    w.key("lookahead_ns").int(8_000);
    w.key("rebalanced").bool(true);
    w.key("speedup_floor").num(FLEET_SPEEDUP_FLOOR);
    w.key("speedup_at_4_shards").num(best_fleet_speedup);
    w.key("imbalance_ceiling").num(FLEET_IMBALANCE_CEILING);
    w.key("imbalance_at_4_shards").num(imbalance_at_4);
    w.key("gate_enforced").bool(enforce_fleet_gate);
    w.key("available_parallelism").int(avail as u64);
    w.key("entries").begin_arr();
    for s in &fleet_stats {
        w.begin_obj();
        w.key("shards").int(s.shards as u64);
        w.key("worker_threads").int(s.worker_threads as u64);
        w.key("events").int(s.events);
        w.key("wall_nanos").int(s.wall_nanos);
        w.key("events_per_sec").num(s.events_per_sec());
        w.key("epochs").int(s.epochs);
        w.key("super_epochs").int(s.super_epochs);
        w.key("imbalance_round_robin").num(s.imbalance_round_robin);
        w.key("imbalance_rebalanced").num(s.imbalance_rebalanced);
        w.key("events_per_shard").begin_arr();
        for &e in &s.shard_events {
            w.int(e);
        }
        w.end_arr();
        w.key("speedup_vs_1_shard")
            .num(fleet_speedup(&fleet_stats, s.shards));
        w.end_obj();
    }
    w.end_arr();
    w.key("super_epoch_batching").begin_obj();
    w.key("hosts").int(64);
    w.key("topology").str("ring:0");
    w.key("shards").int(2);
    w.key("classic_epochs").int(sparse_classic_epochs);
    w.key("amortized_epochs").int(sparse_amortized_epochs);
    w.key("super_epochs").int(sparse_super_epochs);
    w.key("epoch_reduction")
        .num(sparse_classic_epochs as f64 / sparse_amortized_epochs.max(1) as f64);
    w.end_obj();
    w.end_obj();

    w.key("incast_wheel_speedup").num(incast_speedup);
    w.end_obj();

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    std::fs::write(&path, w.finish()).expect("write BENCH_engine.json");
    println!("[json] {}", path.canonicalize().unwrap_or(path).display());
}
