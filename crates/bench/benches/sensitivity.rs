//! Technology-trend sensitivity (§1/§4): the paper argues host congestion
//! worsens because access-link bandwidth grows ~10× while "essentially all
//! other host resources" stay flat. This harness moves each stagnant
//! resource independently at a congested operating point and reports how
//! much each one buys — the quantitative version of §4's table of trends.

use hostcc::experiment::sweep;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc::TestbedConfig;
use hostcc_bench::{emit, plan};
use hostcc_sim::SimDuration;

fn base() -> TestbedConfig {
    scenarios::fig3(14, true)
}

fn main() {
    let points: Vec<(&'static str, TestbedConfig)> = vec![
        ("baseline (14 cores, IOMMU on)", base()),
        // IOTLB size: the resource the paper calls stagnant "[4, 25]".
        (
            "iotlb x2 (256 entries)",
            scenarios::with_iotlb_entries(base(), 256),
        ),
        (
            "iotlb x4 (512 entries)",
            scenarios::with_iotlb_entries(base(), 512),
        ),
        // PCIe headroom: Gen4 doubles the link; paper notes the NIC:PCIe
        // ratio is stagnant across ConnectX generations.
        ("pcie gen4 x16", {
            let mut c = base();
            c.pcie.gen = hostcc::substrate::pcie::PcieGen::Gen4;
            c
        }),
        // PCIe credit window (in-flight DMA): more credits ride out
        // per-DMA latency (Little's law: C up, same T, more throughput).
        ("2x posted credits", {
            let mut c = base();
            c.credits.posted_header *= 2;
            c.credits.posted_data *= 2;
            c
        }),
        // Memory access latency: the stagnant "[17, 32]" trend.
        ("memory latency halved", {
            let mut c = base();
            c.memsys.base_latency_ns /= 2.0;
            c
        }),
        // Memory bandwidth: more channels.
        ("8 DDR channels (vs 6)", {
            let mut c = base();
            c.memsys.channels = 8;
            c
        }),
        // NIC buffer: the stagnant "[30]" trend.
        (
            "nic buffer x4 (4 MiB)",
            scenarios::with_nic_buffer(base(), 4 << 20),
        ),
        // Faster cores (e.g. fewer cycles per packet).
        ("20% faster packet processing", {
            let mut c = base();
            c.core_pkt_cost = SimDuration::from_nanos(2280);
            c
        }),
    ];
    let results = sweep(points, plan()).expect("bench configs run");

    let baseline_tp = results[0].metrics.app_throughput_gbps();
    let mut table = Table::new([
        "variant",
        "tp_gbps",
        "delta_vs_base",
        "drop_rate",
        "iotlb_miss_per_pkt",
    ]);
    for p in &results {
        let m = &p.metrics;
        table.row([
            p.label.to_string(),
            f(m.app_throughput_gbps(), 2),
            format!("{:+.1}", m.app_throughput_gbps() - baseline_tp),
            pct(m.drop_rate()),
            f(m.iotlb_misses_per_packet(), 2),
        ]);
    }
    emit(
        "sensitivity",
        "§4 — which stagnant host resource buys the most at a congested point",
        &table,
    );

    println!(
        "reading guide: translation capacity (IOTLB) and in-flight DMA window \
         (credits) attack the Little's-law bound directly; raw PCIe or memory \
         bandwidth help less because the bottleneck is per-DMA *latency*, not \
         bandwidth — the paper's resource-imbalance argument."
    );
}
