//! Figure 1: host congestion across a production-like fleet.
//!
//! Regenerates the opening scatter: host drop rate vs. access-link
//! utilisation over a heterogeneous fleet of simulated hosts. The two
//! features to verify against the paper: (1) drop rate correlates
//! positively with utilisation, and (2) drops occur even at *low* link
//! utilisation (memory-bus-induced host congestion).

use hostcc::cluster::{simulate, summarize, ClusterConfig};
use hostcc::report::{f, pct, Table};
use hostcc_bench::{emit, plan, quick};

fn main() {
    let cfg = ClusterConfig {
        samples: if quick() { 16 } else { 120 },
        ..ClusterConfig::default()
    };
    let points = simulate(cfg, plan());

    let mut table = Table::new([
        "link_utilization",
        "drop_rate",
        "receiver_cores",
        "antagonist_cores",
    ]);
    let mut sorted = points.clone();
    sorted.sort_by(|a, b| a.link_utilization.total_cmp(&b.link_utilization));
    for p in &sorted {
        table.row([
            f(p.link_utilization, 3),
            pct(p.drop_rate),
            p.receiver_threads.to_string(),
            p.antagonist_cores.to_string(),
        ]);
    }
    emit(
        "fig1_cluster",
        "Figure 1 — fleet scatter: host drop rate vs access-link utilisation",
        &table,
    );

    let s = summarize(&points);
    let mut summary = Table::new(["metric", "value"]);
    summary.row([
        "utilization-drop correlation".to_string(),
        f(s.utilization_drop_correlation, 3),
    ]);
    summary.row([
        "samples with drops at <50% utilisation".to_string(),
        pct(s.low_util_drop_fraction),
    ]);
    summary.row([
        "samples with any drops".to_string(),
        pct(s.any_drop_fraction),
    ]);
    emit("fig1_summary", "Figure 1 — scatter summary", &summary);

    println!(
        "paper shape: positive correlation between utilisation and drop rate, AND a \
         population of hosts that drop packets at low link utilisation"
    );
}
