//! §4's footnote-5 argument, swept: "Even if we assume a 20 µs RTT and
//! 100G line rate, in-flight packets for just 8 concurrent senders can
//! exceed [the] 1 MB threshold." The number of concurrent senders sets a
//! floor on aggregate in-flight bytes (each flow needs at least a minimal
//! window to make progress), so once `senders × threads × min-window`
//! rivals the NIC buffer, no per-flow target can keep the buffer safe.
//!
//! This harness sweeps the incast degree at the IOTLB-bound operating
//! point and reports drops and buffer pressure.

use hostcc::experiment::sweep;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc_bench::{emit, plan, quick};

fn main() {
    let degrees: Vec<u32> = if quick() {
        vec![8, 40, 80]
    } else {
        vec![4, 8, 16, 24, 40, 64, 96, 128]
    };
    let mut points = Vec::new();
    for &senders in &degrees {
        let mut cfg = scenarios::fig3(14, true);
        cfg.senders = senders;
        points.push((senders, cfg));
    }
    let results = sweep(points, plan()).expect("bench configs run");

    let mut table = Table::new([
        "senders",
        "flows",
        "tp_gbps",
        "drop_rate",
        "mean_cwnd",
        "nic_buffer_peak_KiB",
        "hostdelay_p50_us",
    ]);
    for p in &results {
        let m = &p.metrics;
        table.row([
            p.label.to_string(),
            (p.label * 14).to_string(),
            f(m.app_throughput_gbps(), 2),
            pct(m.drop_rate()),
            f(m.mean_cwnd, 2),
            (m.nic_buffer_peak_bytes / 1024).to_string(),
            f(m.host_delay_p50_us(), 1),
        ]);
    }
    emit(
        "incast_degree",
        "§4 — incast degree vs host drops at a congested point (14 cores, IOMMU on)",
        &table,
    );

    println!(
        "reading guide: as the incast widens, per-flow windows shrink toward the \
         pacing regime but the aggregate in-flight floor grows; beyond a modest \
         degree the NIC buffer rides near capacity regardless of how small \
         individual windows get — why §4 argues per-flow rate reduction cannot be \
         the whole answer."
    );
}
