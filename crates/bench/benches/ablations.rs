//! §4 ablations: the design directions the paper proposes, exercised.
//!
//! * larger IOTLBs (host-architecture direction a);
//! * memory-bandwidth QoS protecting DMA (direction c / Intel MBA);
//! * sub-RTT-flavoured host response (tighter target + stronger decrease);
//! * the DCTCP-style TCP-like baseline, to show the blind spot is not
//!   Swift-specific (§4: "similar reasoning also applies for TCP-like
//!   protocols");
//! * sequential (fresh-ring) vs scattered buffer recycling, isolating the
//!   address-locality contribution to IOTLB pressure.

use hostcc::experiment::sweep;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc::TestbedConfig;
use hostcc_bench::{emit, plan};

fn main() {
    let congested_iommu = || scenarios::fig3(14, true); // IOTLB-bound point
    let congested_membw = || scenarios::fig6(12, false); // bus-bound point

    let points: Vec<(&'static str, TestbedConfig)> = vec![
        (
            "baseline: IOTLB-bound (14 cores, IOMMU on)",
            congested_iommu(),
        ),
        (
            "iotlb 256 entries",
            scenarios::with_iotlb_entries(congested_iommu(), 256),
        ),
        (
            "iotlb 512 entries",
            scenarios::with_iotlb_entries(congested_iommu(), 512),
        ),
        ("sequential buffer recycling", {
            let mut c = congested_iommu();
            c.recycling = hostcc::substrate::host::BufferRecycling::Sequential;
            c
        }),
        (
            "hot buffer pool + DDIO (on-NIC-memory style)",
            scenarios::with_hot_buffers(congested_iommu()),
        ),
        (
            "hot buffer pool + DDIO on bus-bound point",
            scenarios::with_hot_buffers(scenarios::fig6(12, false)),
        ),
        (
            "sub-RTT-style host response (target 40us, mdf 0.7)",
            scenarios::with_subrtt_response(congested_iommu(), 40),
        ),
        (
            "dctcp baseline (fabric signals only)",
            scenarios::with_dctcp(congested_iommu()),
        ),
        (
            "host-aware CC (occupancy echo, sub-RTT)",
            scenarios::with_host_aware(congested_iommu()),
        ),
        (
            "strict IOMMU (per-buffer unmap+invalidate)",
            scenarios::with_strict_iommu(congested_iommu()),
        ),
        (
            "no descriptor prefetch (blocking desc reads)",
            scenarios::without_descriptor_prefetch(congested_iommu()),
        ),
        (
            "baseline: bus-bound (12 antagonists, IOMMU off)",
            congested_membw(),
        ),
        (
            "membw QoS: antagonist throttled to 50% (MBA)",
            scenarios::with_membw_qos(congested_membw(), 0.5),
        ),
        (
            "antagonist rescheduled to remote NUMA node",
            scenarios::with_remote_antagonist(congested_membw()),
        ),
        (
            "4 MiB NIC buffer",
            scenarios::with_nic_buffer(congested_iommu(), 4 << 20),
        ),
    ];
    let results = sweep(points, plan()).expect("bench configs run");

    let mut table = Table::new([
        "variant",
        "tp_gbps",
        "drop_rate",
        "iotlb_miss_per_pkt",
        "hostdelay_p99_us",
    ]);
    for p in &results {
        let m = &p.metrics;
        table.row([
            p.label.to_string(),
            f(m.app_throughput_gbps(), 2),
            pct(m.drop_rate()),
            f(m.iotlb_misses_per_packet(), 2),
            f(m.host_delay_p99_us(), 1),
        ]);
    }
    emit(
        "ablations",
        "§4 ablations — proposed directions exercised on congested operating points",
        &table,
    );

    println!(
        "expected: larger IOTLBs recover the IOMMU-bound loss; sequential recycling \
         shrinks the working set; the DCTCP baseline shares Swift's blind spot; \
         bandwidth QoS relieves the bus-bound point; a bigger NIC buffer converts \
         drops into visible (target-exceeding) host delay"
    );
}
