//! §3.1 ablation: why the congestion controller cannot react.
//!
//! The paper's arithmetic: a ~1 MiB NIC input buffer drains in < 90 µs
//! whenever the NIC-to-memory path still moves ≥ 88.8 Gbps, which is below
//! Swift's 100 µs host-delay target — so the buffer overflows while the
//! controller still sees an acceptable host delay. This harness sweeps the
//! host-delay target at a congested operating point (14 receiver cores,
//! IOMMU on) and shows that simply lowering the target does not eliminate
//! host drops (§4: in-flight bytes of many senders exceed the buffer even
//! at small windows), while a larger NIC buffer does move the signal above
//! the target.

use hostcc::experiment::sweep;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc_bench::{emit, plan, quick};

fn main() {
    let cores = 14;
    let targets: Vec<u64> = if quick() {
        vec![25, 100]
    } else {
        vec![25, 50, 75, 100, 150, 200]
    };
    let mut points = Vec::new();
    for &t in &targets {
        points.push(((t, "1MiB buffer"), scenarios::cc_blindspot(cores, t)));
    }
    // The §4 buffer ablation at the default target.
    points.push((
        (100, "4MiB buffer"),
        scenarios::with_nic_buffer(scenarios::cc_blindspot(cores, 100), 4 << 20),
    ));
    let results = sweep(points, plan()).expect("bench configs run");

    let mut table = Table::new([
        "host_target_us",
        "variant",
        "tp_gbps",
        "drop_rate",
        "hostdelay_p50_us",
        "hostdelay_p99_us",
        "nic_buffer_peak_KiB",
    ]);
    for p in &results {
        let (target, variant) = p.label;
        let m = &p.metrics;
        table.row([
            target.to_string(),
            variant.to_string(),
            f(m.app_throughput_gbps(), 2),
            pct(m.drop_rate()),
            f(m.host_delay_p50_us(), 1),
            f(m.host_delay_p99_us(), 1),
            (m.nic_buffer_peak_bytes / 1024).to_string(),
        ]);
    }
    emit(
        "cc_blindspot",
        "§3.1/§4 — Swift host-delay target sweep at a host-congested operating point",
        &table,
    );

    println!(
        "paper claim: at the 100 us target the NIC buffer (sub-90 us of drain) overflows \
         before the signal trips; lowering the target alone cannot zero the drops because \
         the aggregate in-flight bytes of 480 flows exceed the buffer within one RTT; a \
         larger buffer raises the drain time above the target and restores the signal"
    );
}
