//! Figure 6: memory-bus-induced host congestion.
//!
//! Throughput, total memory bandwidth and drop rate vs. the number of
//! STREAM antagonist cores (0–15) at 12 receiver threads, IOMMU OFF
//! (left panels) and ON (centre panels).

use hostcc::experiment::sweep;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc_bench::{antagonist_axis, emit, plan};

fn main() {
    let mut points = Vec::new();
    for &cores in &antagonist_axis() {
        for on in [false, true] {
            points.push(((cores, on), scenarios::fig6(cores, on)));
        }
    }
    let results = sweep(points, plan()).expect("bench configs run");

    let mut table = Table::new([
        "antagonist_cores",
        "iommu",
        "tp_gbps",
        "mem_bw_gbytes",
        "drop_rate",
        "iotlb_miss_per_pkt",
        "hostdelay_p50_us",
    ]);
    for p in &results {
        let (cores, on) = p.label;
        let m = &p.metrics;
        table.row([
            cores.to_string(),
            if on { "ON" } else { "OFF" }.to_string(),
            f(m.app_throughput_gbps(), 2),
            f(m.memory_bandwidth_gbytes(), 1),
            pct(m.drop_rate()),
            f(m.iotlb_misses_per_packet(), 2),
            f(m.host_delay_p50_us(), 1),
        ]);
    }
    emit(
        "fig6_membw",
        "Figure 6 — throughput / memory bandwidth / drops vs STREAM antagonist cores (12 threads)",
        &table,
    );

    println!(
        "paper shape: IOMMU OFF stays flat until ~8-10 antagonist cores then loses ~15%; \
         IOMMU ON starts lower (~80) and degrades from ~6 cores to ~60 Gbps at 15; \
         total memory bandwidth saturates near ~90 GB/s; drops happen far below \
         line-rate utilisation — the low-utilisation drop regime of Fig. 1"
    );
}
