//! Figure 3: IOMMU-induced host congestion.
//!
//! Three panels vs. receiver cores (2–16), IOMMU ON vs OFF:
//!   (left)   application throughput, with the paper's analytical model
//!            overlaid for the credit-bottlenecked regime;
//!   (centre) packet drop rate;
//!   (right)  IOTLB misses per packet.

use hostcc::experiment::sweep;
use hostcc::model::ThroughputModel;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc_bench::{core_axis, emit, plan};

fn main() {
    let axis = core_axis();
    let mut points = Vec::new();
    for &cores in &axis {
        for on in [true, false] {
            points.push(((cores, on), scenarios::fig3(cores, on)));
        }
    }
    let results = sweep(points, plan()).expect("bench configs run");

    let mut table = Table::new([
        "cores",
        "iommu",
        "tp_gbps",
        "modeled_tp_gbps",
        "drop_rate",
        "iotlb_miss_per_pkt",
        "hostdelay_p50_us",
        "hostdelay_p99_us",
    ]);
    for p in &results {
        let (cores, on) = p.label;
        let m = &p.metrics;
        // The paper overlays the model only where PCIe credits bind
        // (threads >= 10); below that we print the ceiling.
        let modeled = if on {
            let model = ThroughputModel::from_config(&scenarios::fig3(cores, true));
            f(model.app_throughput_gbps(m.iotlb_misses_per_packet()), 2)
        } else {
            "-".to_string()
        };
        table.row([
            cores.to_string(),
            if on { "ON" } else { "OFF" }.to_string(),
            f(m.app_throughput_gbps(), 2),
            modeled,
            pct(m.drop_rate()),
            f(m.iotlb_misses_per_packet(), 2),
            f(m.host_delay_p50_us(), 1),
            f(m.host_delay_p99_us(), 1),
        ]);
    }
    emit(
        "fig3_iommu",
        "Figure 3 — throughput / drops / IOTLB misses vs receiver cores (IOMMU ON vs OFF)",
        &table,
    );

    println!(
        "paper shape: OFF flat at ~92 Gbps beyond 8 cores; ON degrades beyond ~8-10 cores \
         (to ~78-80 Gbps at 16) with misses/pkt rising to ~2.5-3 and drops of up to ~3%"
    );
}
