//! Figure 4: disabling hugepages worsens IOMMU contention.
//!
//! Same axes as Fig. 3, hugepages enabled (2 MiB mappings) vs disabled
//! (4 KiB mappings), IOMMU always on. The paper reports: the interconnect
//! bottleneck arrives at fewer threads (knee ~6), throughput degrades by
//! more than 30% (to ~60 Gbps), and misses/packet reach ~6 — because the
//! registered page count grows 512×, each payload DMA touches two pages,
//! and every walk is one level deeper.

use hostcc::experiment::sweep;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc_bench::{core_axis, emit, plan};

fn main() {
    let axis = core_axis();
    let mut points = Vec::new();
    for &cores in &axis {
        for hugepages in [true, false] {
            points.push(((cores, hugepages), scenarios::fig4(cores, hugepages)));
        }
    }
    let results = sweep(points, plan()).expect("bench configs run");

    let mut table = Table::new([
        "cores",
        "hugepages",
        "tp_gbps",
        "drop_rate",
        "iotlb_miss_per_pkt",
        "walk_accesses_per_pkt",
    ]);
    for p in &results {
        let (cores, hp) = p.label;
        let m = &p.metrics;
        table.row([
            cores.to_string(),
            if hp { "2M" } else { "4K" }.to_string(),
            f(m.app_throughput_gbps(), 2),
            pct(m.drop_rate()),
            f(m.iotlb_misses_per_packet(), 2),
            f(
                m.walk_memory_accesses as f64 / m.delivered_packets.max(1) as f64,
                2,
            ),
        ]);
    }
    emit(
        "fig4_hugepages",
        "Figure 4 — hugepages enabled (2M) vs disabled (4K), IOMMU on",
        &table,
    );

    println!(
        "paper shape: 4K pages shift the knee to ~6 cores, push misses/pkt toward ~6, \
         and cost >30% of throughput (toward ~60 Gbps); drops stay nonzero but lower \
         than the hugepage case at high core counts because CC engages earlier"
    );
}
