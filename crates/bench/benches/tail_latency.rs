//! §1's application-level claim, quantified: "In terms of application-level
//! performance, host congestion is no different from congestion within the
//! network fabric — it can lead to hundreds of microseconds of tail
//! latency, significant throughput drop, and violation of isolation
//! properties due to packet drops."
//!
//! This harness compares RTT distributions across operating points: an
//! uncongested host, the IOTLB-bound point, the memory-bus-bound point,
//! and both at once.

use hostcc::experiment::sweep;
use hostcc::report::{f, pct, Table};
use hostcc::scenarios;
use hostcc::TestbedConfig;
use hostcc_bench::{emit, plan};

fn main() {
    let points: Vec<(&'static str, TestbedConfig)> = vec![
        (
            "uncongested (8 cores, IOMMU off)",
            scenarios::fig3(8, false),
        ),
        (
            "IOTLB-bound (14 cores, IOMMU on)",
            scenarios::fig3(14, true),
        ),
        (
            "bus-bound (12 antagonists, IOMMU off)",
            scenarios::fig6(12, false),
        ),
        ("both (12 antagonists, IOMMU on)", scenarios::fig6(12, true)),
    ];
    let results = sweep(points, plan()).expect("bench configs run");

    let mut table = Table::new([
        "operating point",
        "tp_gbps",
        "drop_rate",
        "rtt_p50_us",
        "rtt_p99_us",
        "rtt_p999_us",
        "hostdelay_p99_us",
    ]);
    for p in &results {
        let m = &p.metrics;
        table.row([
            p.label.to_string(),
            f(m.app_throughput_gbps(), 2),
            pct(m.drop_rate()),
            f(m.rtt.p50() as f64 / 1000.0, 1),
            f(m.rtt.p99() as f64 / 1000.0, 1),
            f(m.rtt.p999() as f64 / 1000.0, 1),
            f(m.host_delay_p99_us(), 1),
        ]);
    }
    emit(
        "tail_latency",
        "§1 — application-level tail latency under host congestion",
        &table,
    );

    println!(
        "paper claim: host congestion inflates tail latency by hundreds of \
         microseconds relative to the uncongested host, alongside throughput loss \
         and isolation-violating drops (all flows share the NIC buffer where the \
         drops land)."
    );
}
