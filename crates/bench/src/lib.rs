//! Shared harness plumbing for the figure-regeneration benches.
//!
//! Every `benches/fig*.rs` target is a plain binary (`harness = false`)
//! that sweeps the paper's parameter axis, prints the same series the
//! paper plots (plus the paper's approximate values for comparison), and
//! writes a CSV next to the target directory.
//!
//! Set `HOSTCC_QUICK=1` to run abbreviated sweeps (CI smoke mode).

use hostcc::experiment::RunPlan;
use hostcc::report::Table;
use hostcc_sim::SimDuration;
use std::path::PathBuf;

/// Resolve the run plan: full-resolution by default, quick under
/// `HOSTCC_QUICK=1`.
pub fn plan() -> RunPlan {
    if quick() {
        RunPlan::quick()
    } else {
        RunPlan {
            warmup: SimDuration::from_millis(25),
            measure: SimDuration::from_millis(25),
        }
    }
}

/// Whether quick mode is enabled.
pub fn quick() -> bool {
    std::env::var("HOSTCC_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Where CSV outputs are written (`target/paper-figures/`).
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-figures");
    std::fs::create_dir_all(&dir).expect("create output dir");
    dir
}

/// Print a titled table and save it as `<name>.csv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("\n=== {title} ===");
    println!("{}", table.render());
    let path = output_dir().join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write csv");
    println!("[csv] {}", path.display());
}

/// The x-axis for the receiver-core sweeps (Figs. 3 and 4).
pub fn core_axis() -> Vec<u32> {
    if quick() {
        vec![2, 8, 12, 16]
    } else {
        vec![2, 4, 6, 8, 10, 12, 14, 16]
    }
}

/// The x-axis for the antagonist sweep (Fig. 6).
pub fn antagonist_axis() -> Vec<u32> {
    if quick() {
        vec![0, 8, 15]
    } else {
        vec![0, 1, 2, 4, 6, 8, 10, 12, 14, 15]
    }
}

/// The x-axis for the region-size sweep (Fig. 5), MiB.
pub fn region_axis() -> Vec<u64> {
    vec![4, 8, 12, 16]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_cover_paper_ranges() {
        assert_eq!(*core_axis().first().unwrap(), 2);
        assert_eq!(*core_axis().last().unwrap(), 16);
        assert_eq!(*antagonist_axis().last().unwrap(), 15);
        assert_eq!(region_axis(), vec![4, 8, 12, 16]);
    }

    #[test]
    fn output_dir_exists() {
        assert!(output_dir().is_dir());
    }
}
