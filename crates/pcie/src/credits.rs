//! PCIe credit-based flow control.
//!
//! PCIe is a lossless interconnect: a transmitter may only send a TLP when
//! the receiver has advertised enough *credits* for it (§2, step 3 of the
//! paper's datapath). Posted writes consume *posted header* (PH) credits —
//! one per TLP — and *posted data* (PD) credits in 16-byte units. The root
//! complex returns credits only after it has retired the write to memory,
//! so any latency on the NIC-to-memory path (IOTLB walks, memory-bus
//! queueing) directly shrinks the usable in-flight window. When credits run
//! out, packets wait in the NIC input buffer — the queue where the paper's
//! drops happen.

/// Posted-data credit granularity: one PD credit = 16 bytes (4 DW).
pub const PD_CREDIT_BYTES: u32 = 16;

/// Credits needed for a posted write of `len` payload bytes split into
/// TLPs of at most `max_payload` bytes: `(header_credits, data_credits)`.
pub fn credits_for_write(len: u64, max_payload: u32) -> (u32, u32) {
    let tlps = len.div_ceil(max_payload as u64).max(1) as u32;
    let data = (len.div_ceil(PD_CREDIT_BYTES as u64)) as u32;
    (tlps, data)
}

/// The (header, data) credit cost of one posted write, as a named pair so
/// datapath code can precompute it once and thread a single 8-byte value
/// through admission and release instead of loose tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteCredits {
    /// Posted header credits (one per TLP).
    pub header: u32,
    /// Posted data credits (16-byte units).
    pub data: u32,
}

impl WriteCredits {
    /// Credit cost of a posted write of `len` payload bytes at `max_payload`
    /// bytes per TLP.
    pub fn for_write(len: u64, max_payload: u32) -> Self {
        let (header, data) = credits_for_write(len, max_payload);
        WriteCredits { header, data }
    }
}

/// Advertised credit limits for the posted channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditConfig {
    /// Posted header credits (max in-flight TLPs).
    pub posted_header: u32,
    /// Posted data credits (16-byte units of in-flight payload).
    pub posted_data: u32,
}

impl Default for CreditConfig {
    /// A root complex advertising a ~32 KiB posted window (2048 PD) and
    /// 128 header credits — eight 4 KiB packets in flight, matching the
    /// small fixed number of in-flight DMAs the paper reasons about.
    fn default() -> Self {
        CreditConfig {
            posted_header: 128,
            posted_data: 2048,
        }
    }
}

impl CreditConfig {
    /// Maximum number of whole `pkt_len`-byte writes in flight at once.
    pub fn max_inflight_writes(&self, pkt_len: u64, max_payload: u32) -> u32 {
        let (h, d) = credits_for_write(pkt_len, max_payload);
        (self.posted_header / h).min(self.posted_data / d)
    }
}

/// Live credit state for the posted channel of one link.
#[derive(Debug, Clone)]
pub struct CreditState {
    config: CreditConfig,
    header_avail: u32,
    data_avail: u32,
    /// Lifetime count of admissions refused for want of credits.
    stalls: u64,
    /// Lifetime count of admitted writes.
    admissions: u64,
}

impl CreditState {
    /// Fresh state with all advertised credits available.
    pub fn new(config: CreditConfig) -> Self {
        CreditState {
            config,
            header_avail: config.posted_header,
            data_avail: config.posted_data,
            stalls: 0,
            admissions: 0,
        }
    }

    /// The advertised limits.
    pub fn config(&self) -> CreditConfig {
        self.config
    }

    /// Currently available (header, data) credits.
    pub fn available(&self) -> (u32, u32) {
        (self.header_avail, self.data_avail)
    }

    /// Whether a write consuming `(h, d)` credits can be admitted now.
    pub fn can_admit(&self, h: u32, d: u32) -> bool {
        h <= self.header_avail && d <= self.data_avail
    }

    /// Record a refused admission without attempting one. For callers that
    /// gate on [`can_admit`](Self::can_admit) and admit later (e.g. after a
    /// descriptor fetch that may itself fail), so stalls are still counted.
    pub fn note_stall(&mut self) {
        self.stalls += 1;
    }

    /// [`can_admit`](Self::can_admit) for a precomputed credit cost.
    pub fn can_admit_write(&self, w: WriteCredits) -> bool {
        self.can_admit(w.header, w.data)
    }

    /// [`try_admit`](Self::try_admit) for a precomputed credit cost.
    pub fn try_admit_write(&mut self, w: WriteCredits) -> bool {
        self.try_admit(w.header, w.data)
    }

    /// [`release`](Self::release) for a precomputed credit cost.
    pub fn release_write(&mut self, w: WriteCredits) {
        self.release(w.header, w.data)
    }

    /// Return the credits of `n` identical writes in one update.
    ///
    /// Exactly equivalent to `n` sequential [`release_write`] calls:
    /// release is a plain add with a bounds check at the end, so the
    /// intermediate states are never observed and coalescing them is
    /// lossless. Used by the batched dispatch path when a slot completes
    /// several same-sized DMAs at one timestamp.
    ///
    /// [`release_write`]: Self::release_write
    pub fn release_writes(&mut self, w: WriteCredits, n: u32) {
        self.release(w.header * n, w.data * n)
    }

    /// Try to admit a write; consumes credits on success.
    pub fn try_admit(&mut self, h: u32, d: u32) -> bool {
        debug_assert!(
            h <= self.config.posted_header && d <= self.config.posted_data,
            "write larger than the whole advertised window can never be admitted"
        );
        if self.can_admit(h, d) {
            self.header_avail -= h;
            self.data_avail -= d;
            self.admissions += 1;
            true
        } else {
            self.stalls += 1;
            false
        }
    }

    /// Return credits after the root complex retires the write to memory.
    pub fn release(&mut self, h: u32, d: u32) {
        self.header_avail += h;
        self.data_avail += d;
        debug_assert!(
            self.header_avail <= self.config.posted_header
                && self.data_avail <= self.config.posted_data,
            "released more credits than advertised"
        );
    }

    /// Writes admitted over the lifetime.
    pub fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Admission attempts refused for lack of credits.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Serialize the credit state (advertised limits, available credits,
    /// lifetime counters).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u32(self.config.posted_header);
        w.u32(self.config.posted_data);
        w.u32(self.header_avail);
        w.u32(self.data_avail);
        w.u64(self.stalls);
        w.u64(self.admissions);
    }

    /// Rebuild credit state from [`save_state`](Self::save_state) output.
    /// Available credits beyond the advertised window are corruption.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let config = CreditConfig {
            posted_header: r.u32()?,
            posted_data: r.u32()?,
        };
        let header_avail = r.u32()?;
        let data_avail = r.u32()?;
        if header_avail > config.posted_header || data_avail > config.posted_data {
            return Err(SnapError::Corrupt("credits exceed advertised window"));
        }
        Ok(CreditState {
            config,
            header_avail,
            data_avail,
            stalls: r.u64()?,
            admissions: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_for_typical_packet() {
        // 4 KiB packet, 256 B MPS: 16 TLPs, 256 PD credits.
        assert_eq!(credits_for_write(4096, 256), (16, 256));
        // Tiny descriptor write: 1 TLP, 1 PD credit.
        assert_eq!(credits_for_write(16, 256), (1, 1));
        // Zero-length (doorbell): 1 header, 0 data.
        assert_eq!(credits_for_write(0, 256), (1, 0));
    }

    #[test]
    fn default_window_is_eight_4k_packets() {
        let c = CreditConfig::default();
        assert_eq!(c.max_inflight_writes(4096, 256), 8);
    }

    #[test]
    fn admit_consume_release_cycle() {
        let mut s = CreditState::new(CreditConfig {
            posted_header: 32,
            posted_data: 512,
        });
        let (h, d) = credits_for_write(4096, 256);
        assert!(s.try_admit(h, d));
        assert!(s.try_admit(h, d));
        // 512 PD allows exactly two 4 KiB writes.
        assert!(!s.try_admit(h, d), "third write must stall");
        assert_eq!(s.stalls(), 1);
        s.release(h, d);
        assert!(s.try_admit(h, d));
        assert_eq!(s.admissions(), 3);
    }

    #[test]
    fn header_credits_can_be_the_binding_constraint() {
        // Many tiny writes: header-bound, not data-bound.
        let mut s = CreditState::new(CreditConfig {
            posted_header: 4,
            posted_data: 1000,
        });
        for _ in 0..4 {
            assert!(s.try_admit(1, 1));
        }
        assert!(!s.try_admit(1, 1));
        assert_eq!(s.available(), (0, 996));
    }

    #[test]
    fn can_admit_is_side_effect_free() {
        let s = CreditState::new(CreditConfig::default());
        assert!(s.can_admit(16, 256));
        assert_eq!(s.available(), (128, 2048));
    }

    #[test]
    fn bulk_release_equals_sequential_releases() {
        let cfg = CreditConfig {
            posted_header: 64,
            posted_data: 1024,
        };
        let w = WriteCredits::for_write(4096, 256);
        let mut bulk = CreditState::new(cfg);
        let mut seq = CreditState::new(cfg);
        for _ in 0..3 {
            assert!(bulk.try_admit_write(w));
            assert!(seq.try_admit_write(w));
        }
        bulk.release_writes(w, 3);
        for _ in 0..3 {
            seq.release_write(w);
        }
        assert_eq!(bulk.available(), seq.available());
        assert_eq!(bulk.available(), (64, 1024));
    }

    #[test]
    fn write_credits_mirror_tuple_helpers() {
        let w = WriteCredits::for_write(4096, 256);
        assert_eq!((w.header, w.data), credits_for_write(4096, 256));
        let mut s = CreditState::new(CreditConfig {
            posted_header: 32,
            posted_data: 512,
        });
        assert!(s.can_admit_write(w));
        assert!(s.try_admit_write(w));
        assert!(s.try_admit_write(w));
        assert!(
            !s.try_admit_write(w),
            "512 PD fits exactly two 4 KiB writes"
        );
        s.release_write(w);
        assert!(s.try_admit_write(w));
        assert_eq!(s.admissions(), 3);
        assert_eq!(s.stalls(), 1);
    }
}
