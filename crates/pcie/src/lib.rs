//! # hostcc-pcie
//!
//! PCIe substrate for the host-interconnect model: link bandwidth with
//! transaction/data-link-layer overhead accounting (why a "128 Gbps" Gen3
//! x16 slot delivers only ~110 Gbps of DMA goodput) and the credit-based
//! flow control that bounds how many DMA writes can be in flight — the `C`
//! in the paper's Little's-law throughput bound
//! `C · pkt_size / (T_base + M · T_miss)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod credits;
mod link;
mod reads;
mod replay;

pub use credits::{credits_for_write, CreditConfig, CreditState, WriteCredits, PD_CREDIT_BYTES};
pub use link::{PcieGen, PcieLinkConfig, DLLP_OVERHEAD_BYTES_PER_TLP, TLP_OVERHEAD_BYTES};
pub use reads::{read_round_trip_ns, ReadChannel, ReadChannelConfig};
pub use replay::{ReplayChannel, ReplayConfig};
