//! PCIe link bandwidth and transaction-layer overhead accounting.
//!
//! The paper's testbed pairs a 100 Gbps NIC with PCIe 3.0 x16 — nominally
//! 128 Gbps, but only ~110 Gbps of *goodput* once transaction-layer packet
//! (TLP) headers, framing and data-link-layer packets (DLLPs) are paid
//! (§3.1, citing Neugebauer et al.). That thin headroom is why modest
//! increases in per-DMA latency immediately turn into NIC buffer build-up.

/// PCIe generation: per-lane line rate and line encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 2.5 GT/s, 8b/10b encoding.
    Gen1,
    /// 5.0 GT/s, 8b/10b encoding.
    Gen2,
    /// 8.0 GT/s, 128b/130b encoding (the paper's testbed).
    Gen3,
    /// 16.0 GT/s, 128b/130b encoding.
    Gen4,
    /// 32.0 GT/s, 128b/130b encoding.
    Gen5,
}

impl PcieGen {
    /// Raw line rate per lane in transfers/sec (== bits/sec on the wire).
    pub fn raw_gt_per_sec(self) -> f64 {
        match self {
            PcieGen::Gen1 => 2.5e9,
            PcieGen::Gen2 => 5.0e9,
            PcieGen::Gen3 => 8.0e9,
            PcieGen::Gen4 => 16.0e9,
            PcieGen::Gen5 => 32.0e9,
        }
    }

    /// Fraction of raw bits carrying data after line encoding.
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            PcieGen::Gen1 | PcieGen::Gen2 => 8.0 / 10.0,
            _ => 128.0 / 130.0,
        }
    }

    /// Data-layer bytes per second per lane (after encoding, before TLP
    /// overheads).
    pub fn lane_bytes_per_sec(self) -> f64 {
        self.raw_gt_per_sec() * self.encoding_efficiency() / 8.0
    }
}

/// Link configuration: generation, width and maximum payload size.
#[derive(Debug, Clone, Copy)]
pub struct PcieLinkConfig {
    /// Link generation.
    pub gen: PcieGen,
    /// Number of lanes (x1/x4/x8/x16).
    pub lanes: u32,
    /// Maximum TLP payload size in bytes (128/256/512; testbed-typical 256).
    pub max_payload: u32,
}

impl Default for PcieLinkConfig {
    /// The paper's testbed link: Gen3 x16, 256 B MPS.
    fn default() -> Self {
        PcieLinkConfig {
            gen: PcieGen::Gen3,
            lanes: 16,
            max_payload: 256,
        }
    }
}

/// Per-TLP overhead bytes for a memory-write TLP with 64-bit addressing:
/// 16 B header (4 DW) + 4 B framing/STP (includes sequence number, Gen3)
/// + 4 B LCRC.
pub const TLP_OVERHEAD_BYTES: u32 = 24;

/// Amortised DLLP overhead (ACK/NAK + flow-control updates) charged per
/// TLP: one 8-byte DLLP roughly every four TLPs.
pub const DLLP_OVERHEAD_BYTES_PER_TLP: u32 = 2;

impl PcieLinkConfig {
    /// Total data-layer bandwidth in bytes/sec (before TLP overhead).
    pub fn raw_bytes_per_sec(&self) -> f64 {
        self.gen.lane_bytes_per_sec() * self.lanes as f64
    }

    /// Number of memory-write TLPs needed to move `len` payload bytes.
    pub fn tlps_for(&self, len: u64) -> u64 {
        len.div_ceil(self.max_payload as u64).max(1)
    }

    /// Bytes on the link for a write of `len` payload bytes, including TLP
    /// headers, framing and amortised DLLPs.
    pub fn wire_bytes_for(&self, len: u64) -> u64 {
        let tlps = self.tlps_for(len);
        len + tlps * (TLP_OVERHEAD_BYTES + DLLP_OVERHEAD_BYTES_PER_TLP) as u64
    }

    /// Payload fraction for maximum-size writes.
    pub fn payload_efficiency(&self) -> f64 {
        let mps = self.max_payload as u64;
        mps as f64 / self.wire_bytes_for(mps) as f64
    }

    /// Achievable payload goodput in bytes/sec for streaming maximum-size
    /// writes — the "~110 Gbps for Gen3 x16" number from the paper.
    pub fn effective_goodput_bytes_per_sec(&self) -> f64 {
        self.raw_bytes_per_sec() * self.payload_efficiency()
    }

    /// Convenience: goodput in Gbps.
    pub fn effective_goodput_gbps(&self) -> f64 {
        self.effective_goodput_bytes_per_sec() * 8.0 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x16_matches_paper_numbers() {
        let link = PcieLinkConfig::default();
        // Raw: 8 GT/s * 16 * (128/130) / 8 = 15.75 GB/s = 126 Gb/s.
        let raw_gbps = link.raw_bytes_per_sec() * 8.0 / 1e9;
        assert!((raw_gbps - 126.0).abs() < 0.5, "raw {raw_gbps}");
        // Effective goodput: paper says ~110 Gbps.
        let good = link.effective_goodput_gbps();
        assert!(
            (108.0..116.0).contains(&good),
            "goodput {good} Gbps should be ~110"
        );
    }

    #[test]
    fn encoding_efficiency_by_gen() {
        assert!((PcieGen::Gen1.encoding_efficiency() - 0.8).abs() < 1e-12);
        assert!((PcieGen::Gen3.encoding_efficiency() - 128.0 / 130.0).abs() < 1e-12);
    }

    #[test]
    fn tlp_count_rounds_up() {
        let link = PcieLinkConfig::default();
        assert_eq!(link.tlps_for(1), 1);
        assert_eq!(link.tlps_for(256), 1);
        assert_eq!(link.tlps_for(257), 2);
        assert_eq!(link.tlps_for(4096), 16);
        // Zero-length writes (doorbells) still cost one TLP.
        assert_eq!(link.tlps_for(0), 1);
    }

    #[test]
    fn wire_bytes_include_overheads() {
        let link = PcieLinkConfig::default();
        // 4096 B payload = 16 TLPs * 26 B overhead = 416 B extra.
        assert_eq!(link.wire_bytes_for(4096), 4096 + 16 * 26);
    }

    #[test]
    fn smaller_mps_is_less_efficient() {
        let big = PcieLinkConfig {
            max_payload: 512,
            ..Default::default()
        };
        let small = PcieLinkConfig {
            max_payload: 128,
            ..Default::default()
        };
        assert!(big.payload_efficiency() > small.payload_efficiency());
    }

    #[test]
    fn gen4_doubles_gen3() {
        let g3 = PcieLinkConfig::default();
        let g4 = PcieLinkConfig {
            gen: PcieGen::Gen4,
            ..g3
        };
        let ratio = g4.raw_bytes_per_sec() / g3.raw_bytes_per_sec();
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn gen1_gen2_encoding_penalty() {
        // 8b/10b loses 20%: Gen2 x8 raw = 5 GT/s * 8 * 0.8 / 8 = 4 GB/s.
        let link = PcieLinkConfig {
            gen: PcieGen::Gen2,
            lanes: 8,
            max_payload: 256,
        };
        assert!((link.raw_bytes_per_sec() - 4e9).abs() < 1e6);
    }

    #[test]
    fn gen5_x16_exceeds_400g() {
        let link = PcieLinkConfig {
            gen: PcieGen::Gen5,
            lanes: 16,
            max_payload: 512,
        };
        assert!(link.effective_goodput_gbps() > 400.0);
    }

    #[test]
    fn narrow_links_scale_linearly_with_lanes() {
        let x4 = PcieLinkConfig {
            lanes: 4,
            ..Default::default()
        };
        let x16 = PcieLinkConfig::default();
        let ratio = x16.raw_bytes_per_sec() / x4.raw_bytes_per_sec();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_efficiency_bounds() {
        for mps in [128u32, 256, 512] {
            let link = PcieLinkConfig {
                max_payload: mps,
                ..Default::default()
            };
            let eff = link.payload_efficiency();
            assert!(eff > 0.8 && eff < 1.0, "mps {mps}: eff {eff}");
        }
    }
}
