//! Non-posted DMA reads.
//!
//! Posted writes (the payload path modelled in `credits.rs`) are
//! fire-and-forget; *reads* — descriptor fetches, TX payload fetches for
//! outgoing ACKs — are non-posted: the NIC sends a read-request TLP
//! (consuming non-posted header credits), the root complex fetches the
//! data from memory, and one or more completion TLPs return it. A read
//! therefore costs a full PCIe round trip plus the memory access, and the
//! number of outstanding reads is bounded by the NIC's read-request tags
//! and the advertised completion credits.

use crate::link::PcieLinkConfig;

/// Credit/tag limits for the non-posted (read) channel.
#[derive(Debug, Clone, Copy)]
pub struct ReadChannelConfig {
    /// Maximum outstanding read requests (NIC tag space).
    pub max_outstanding: u32,
    /// Maximum bytes returned per completion TLP (read completion
    /// boundary; typically 64 or 128 on Intel root complexes).
    pub completion_boundary: u32,
}

impl Default for ReadChannelConfig {
    fn default() -> Self {
        ReadChannelConfig {
            max_outstanding: 32,
            completion_boundary: 128,
        }
    }
}

impl ReadChannelConfig {
    /// Number of completion TLPs a read of `len` bytes returns.
    pub fn completions_for(&self, len: u64) -> u64 {
        len.div_ceil(self.completion_boundary as u64).max(1)
    }
}

/// Live state of the read channel: outstanding-request accounting.
#[derive(Debug, Clone)]
pub struct ReadChannel {
    config: ReadChannelConfig,
    outstanding: u32,
    issued: u64,
    stalls: u64,
}

impl ReadChannel {
    /// A channel with all tags free.
    pub fn new(config: ReadChannelConfig) -> Self {
        ReadChannel {
            config,
            outstanding: 0,
            issued: 0,
            stalls: 0,
        }
    }

    /// The configured limits.
    pub fn config(&self) -> ReadChannelConfig {
        self.config
    }

    /// Try to issue a read; `false` when the tag space is exhausted.
    pub fn try_issue(&mut self) -> bool {
        if self.outstanding >= self.config.max_outstanding {
            self.stalls += 1;
            return false;
        }
        self.outstanding += 1;
        self.issued += 1;
        true
    }

    /// A read's completions have all returned; its tag frees.
    pub fn complete(&mut self) {
        debug_assert!(self.outstanding > 0, "completion without request");
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// Reads currently in flight.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Lifetime issued / stalled counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.issued, self.stalls)
    }

    /// Serialize the read channel (limits, outstanding tags, counters).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u32(self.config.max_outstanding);
        w.u32(self.config.completion_boundary);
        w.u32(self.outstanding);
        w.u64(self.issued);
        w.u64(self.stalls);
    }

    /// Rebuild a read channel from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let config = ReadChannelConfig {
            max_outstanding: r.u32()?,
            completion_boundary: r.u32()?,
        };
        let outstanding = r.u32()?;
        if outstanding > config.max_outstanding {
            return Err(SnapError::Corrupt("outstanding reads exceed tag space"));
        }
        Ok(ReadChannel {
            config,
            outstanding,
            issued: r.u64()?,
            stalls: r.u64()?,
        })
    }
}

/// Latency model for one DMA read round trip.
///
/// `request serialisation + request propagation + memory access +
/// completion serialisation + completion propagation`. The memory-access
/// term is supplied by the caller (it depends on bus load); this helper
/// adds the PCIe-side components.
pub fn read_round_trip_ns(
    link: &PcieLinkConfig,
    read_cfg: &ReadChannelConfig,
    len: u64,
    propagation_ns: f64,
    memory_access_ns: f64,
) -> f64 {
    let rate = link.raw_bytes_per_sec();
    // Request TLP: header-only (no payload).
    let request_ns = (crate::link::TLP_OVERHEAD_BYTES as f64) / rate * 1e9;
    // Completions: data split at the completion boundary, each with its
    // own TLP overhead.
    let completions = read_cfg.completions_for(len) as f64;
    let completion_bytes = len as f64 + completions * (crate::link::TLP_OVERHEAD_BYTES as f64);
    let completion_ns = completion_bytes / rate * 1e9;
    request_ns + completion_ns + 2.0 * propagation_ns + memory_access_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_count_respects_boundary() {
        let c = ReadChannelConfig::default();
        assert_eq!(c.completions_for(1), 1);
        assert_eq!(c.completions_for(128), 1);
        assert_eq!(c.completions_for(129), 2);
        assert_eq!(c.completions_for(4096), 32);
        assert_eq!(c.completions_for(0), 1, "zero-length read still completes");
    }

    #[test]
    fn tag_space_bounds_outstanding_reads() {
        let mut ch = ReadChannel::new(ReadChannelConfig {
            max_outstanding: 2,
            completion_boundary: 128,
        });
        assert!(ch.try_issue());
        assert!(ch.try_issue());
        assert!(!ch.try_issue(), "tags exhausted");
        assert_eq!(ch.outstanding(), 2);
        ch.complete();
        assert!(ch.try_issue());
        let (issued, stalls) = ch.stats();
        assert_eq!(issued, 3);
        assert_eq!(stalls, 1);
    }

    #[test]
    fn round_trip_dominated_by_propagation_and_memory() {
        let link = PcieLinkConfig::default();
        let cfg = ReadChannelConfig::default();
        // A 32-byte descriptor read with 250 ns propagation and 90 ns
        // memory access: mostly round-trip propagation.
        let ns = read_round_trip_ns(&link, &cfg, 32, 250.0, 90.0);
        assert!(
            (550.0..700.0).contains(&ns),
            "descriptor read {ns} ns should be ~600"
        );
        // Bigger reads serialise more completion data.
        let big = read_round_trip_ns(&link, &cfg, 4096, 250.0, 90.0);
        assert!(big > ns + 200.0, "4 KiB read {big} vs 32 B {ns}");
    }

    #[test]
    fn round_trip_monotone_in_length() {
        let link = PcieLinkConfig::default();
        let cfg = ReadChannelConfig::default();
        let mut last = 0.0;
        for len in [16u64, 64, 256, 1024, 4096] {
            let ns = read_round_trip_ns(&link, &cfg, len, 200.0, 90.0);
            assert!(ns > last);
            last = ns;
        }
    }
}
