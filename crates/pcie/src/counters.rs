//! PCIe credit-pipeline counters for the workspace counter registry.

use crate::credits::CreditState;
use hostcc_trace::{CounterRegistry, CounterSource};

impl CounterSource for CreditState {
    fn export_counters(&self, reg: &mut CounterRegistry) {
        let (h, d) = self.available();
        reg.set("pcie.credits.admissions", self.admissions());
        reg.set("pcie.credits.stalls", self.stalls());
        reg.set("pcie.credits.header_available", h as u64);
        reg.set("pcie.credits.data_available", d as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credits::CreditConfig;

    #[test]
    fn credit_state_exports_admissions_and_stalls() {
        let mut cs = CreditState::new(CreditConfig {
            posted_header: 2,
            posted_data: 8,
        });
        assert!(cs.try_admit(1, 4));
        assert!(
            !cs.try_admit(1, 8),
            "second write exceeds remaining data credits"
        );
        let mut reg = CounterRegistry::new();
        reg.collect(&cs);
        assert_eq!(reg.lifetime("pcie.credits.admissions"), 1);
        assert_eq!(reg.lifetime("pcie.credits.stalls"), 1);
    }
}
