//! PCIe data-link-layer retry: the DLLP ACK/NAK replay mechanism.
//!
//! Every TLP sits in the transmitter's replay buffer until the receiver
//! ACKs it. On a NAK (LCRC error, sequence gap) the transmitter waits out
//! its REPLAY_TIMER and resends everything from the NAKed sequence number
//! onward. Consecutive NAKs back the timer off exponentially — the link
//! keeps making progress, just slower, which is exactly the degradation
//! mode fault injection needs to exercise: latency inflation without
//! packet loss, invisible to the transport.

use hostcc_trace::{CounterRegistry, CounterSource};

/// Replay-timer parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Base REPLAY_TIMER expiry before the first retry, ns. PCIe Gen3
    /// x16 spec tables put this around 160–450 symbol times; ~500 ns is
    /// a realistic round figure at 8 GT/s.
    pub replay_timer_ns: u64,
    /// Cap on the exponential backoff shift (timer maxes out at
    /// `replay_timer_ns << max_backoff`).
    pub max_backoff: u32,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            replay_timer_ns: 500,
            max_backoff: 6,
        }
    }
}

/// Transmit-side replay state for one link: how long the current TLP is
/// delayed when NAKed, with exponential backoff across consecutive NAKs
/// and reset on the first clean ACK.
#[derive(Debug, Clone, Default)]
pub struct ReplayChannel {
    cfg: ReplayConfig,
    backoff: u32,
    naks: u64,
    replays: u64,
    replay_ns: u64,
}

impl ReplayChannel {
    /// A replay channel with the given timer parameters.
    pub fn new(cfg: ReplayConfig) -> Self {
        ReplayChannel {
            cfg,
            backoff: 0,
            naks: 0,
            replays: 0,
            replay_ns: 0,
        }
    }

    /// The receiver NAKed the in-flight TLP: charge one replay and return
    /// the extra link latency (REPLAY_TIMER at the current backoff). Each
    /// consecutive NAK doubles the timer up to the configured cap.
    pub fn nak(&mut self) -> u64 {
        let delay = self.cfg.replay_timer_ns << self.backoff.min(self.cfg.max_backoff);
        self.backoff = (self.backoff + 1).min(self.cfg.max_backoff);
        self.naks += 1;
        self.replays += 1;
        self.replay_ns += delay;
        delay
    }

    /// The receiver ACKed cleanly: the replay buffer advances and the
    /// backoff resets.
    pub fn ack(&mut self) {
        self.backoff = 0;
    }

    /// Current backoff shift (0 after a clean ACK).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Lifetime NAKs received.
    pub fn naks(&self) -> u64 {
        self.naks
    }

    /// Lifetime TLP replays issued.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Total link time spent waiting on the replay timer, ns.
    pub fn replay_ns(&self) -> u64 {
        self.replay_ns
    }

    /// Serialize the replay channel (timer config, backoff, counters).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.cfg.replay_timer_ns);
        w.u32(self.cfg.max_backoff);
        w.u32(self.backoff);
        w.u64(self.naks);
        w.u64(self.replays);
        w.u64(self.replay_ns);
    }

    /// Rebuild a replay channel from [`save_state`](Self::save_state)
    /// output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let cfg = ReplayConfig {
            replay_timer_ns: r.u64()?,
            max_backoff: r.u32()?,
        };
        let backoff = r.u32()?;
        if backoff > cfg.max_backoff {
            return Err(SnapError::Corrupt("replay backoff above cap"));
        }
        Ok(ReplayChannel {
            cfg,
            backoff,
            naks: r.u64()?,
            replays: r.u64()?,
            replay_ns: r.u64()?,
        })
    }
}

impl CounterSource for ReplayChannel {
    fn export_counters(&self, reg: &mut CounterRegistry) {
        reg.set("pcie.replay.naks", self.naks);
        reg.set("pcie.replay.replays", self.replays);
        reg.set("pcie.replay.ns", self.replay_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nak_backs_off_exponentially_and_caps() {
        let mut ch = ReplayChannel::new(ReplayConfig {
            replay_timer_ns: 100,
            max_backoff: 3,
        });
        assert_eq!(ch.nak(), 100);
        assert_eq!(ch.nak(), 200);
        assert_eq!(ch.nak(), 400);
        assert_eq!(ch.nak(), 800);
        assert_eq!(ch.nak(), 800, "capped at replay_timer << max_backoff");
        assert_eq!(ch.naks(), 5);
        assert_eq!(ch.replay_ns(), 100 + 200 + 400 + 800 + 800);
    }

    #[test]
    fn ack_resets_backoff() {
        let mut ch = ReplayChannel::new(ReplayConfig::default());
        ch.nak();
        ch.nak();
        assert!(ch.backoff() > 0);
        ch.ack();
        assert_eq!(ch.backoff(), 0);
        assert_eq!(ch.nak(), 500, "first NAK after an ACK pays the base timer");
    }

    #[test]
    fn counters_export() {
        let mut ch = ReplayChannel::new(ReplayConfig {
            replay_timer_ns: 10,
            max_backoff: 2,
        });
        ch.nak();
        ch.nak();
        let mut reg = CounterRegistry::new();
        reg.collect(&ch);
        assert_eq!(reg.lifetime("pcie.replay.naks"), 2);
        assert_eq!(reg.lifetime("pcie.replay.replays"), 2);
        assert_eq!(reg.lifetime("pcie.replay.ns"), 30);
    }
}
