//! IOMMU and IOTLB counters for the workspace counter registry.

use crate::device::Iommu;
use hostcc_trace::{CounterRegistry, CounterSource};

impl CounterSource for Iommu {
    fn export_counters(&self, reg: &mut CounterRegistry) {
        let s = self.stats();
        reg.set("iommu.translations", s.translations);
        reg.set("iommu.faults", s.faults);
        reg.set("iommu.walk_memory_accesses", s.walk_memory_accesses);
        let t = self.iotlb_stats();
        reg.set("iommu.iotlb.lookups", t.lookups);
        reg.set("iommu.iotlb.hits", t.hits);
        reg.set("iommu.iotlb.misses", t.misses);
        reg.set("iommu.iotlb.evictions", t.evictions);
        reg.set("iommu.iotlb.invalidations", t.invalidations);
        reg.set("iommu.mapped_pages", self.mapped_pages());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::IommuConfig;

    #[test]
    fn iommu_exports_translation_and_iotlb_counters() {
        let iommu = Iommu::new(IommuConfig::default());
        let mut reg = CounterRegistry::new();
        reg.collect(&iommu);
        assert_eq!(reg.lifetime("iommu.translations"), 0);
        assert_eq!(reg.lifetime("iommu.iotlb.misses"), 0);
        assert!(reg.len() >= 9);
    }
}
