//! # hostcc-iommu
//!
//! The I/O memory management unit model: an x86-style IOMMU with a
//! set-associative IOTLB, a page-walk cache, and per-translation cost
//! receipts. This is the first root cause of host interconnect congestion
//! studied by the paper (§3.1): when the pinned DMA working set exceeds the
//! IOTLB, every miss adds page-table memory accesses to the per-DMA
//! latency, and — via PCIe's credit-limited pipeline — caps NIC-to-memory
//! throughput below the line rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod device;
mod iotlb;
mod walk_cache;

pub use device::{DmaTranslation, DomainId, Iommu, IommuConfig, IommuStats, TranslationCost};
pub use iotlb::{Iotlb, IotlbStats, IotlbTag};
pub use walk_cache::WalkCache;
