//! The I/O Translation Lookaside Buffer (IOTLB).
//!
//! A small cache of completed IOVA→PA translations inside the IOMMU. The
//! paper's testbed has 128 entries per IOMMU; once the pinned working set
//! (threads × pages per region + control-structure pages) exceeds this,
//! misses-per-packet climb and the host interconnect becomes the bottleneck
//! (Fig. 3, right panel).
//!
//! Organisation is configurable: `ways == entries` gives a fully-associative
//! cache, smaller `ways` a set-associative one. Replacement is true LRU
//! within a set, maintained with per-entry stamps (sets are small, so a
//! scan per access is cheap and the code stays obvious).

use hostcc_mem::PageSize;

/// A translation-cache tag: the page this entry covers.
///
/// Entries are tagged by protection domain, page base *and* page size: a
/// 2 MiB mapping and a 4 KiB mapping occupy one entry each regardless of
/// span, which is exactly why hugepages relieve IOTLB pressure (Fig. 4);
/// the domain tag keeps devices in different domains from aliasing each
/// other's translations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IotlbTag {
    /// Protection domain the translation belongs to.
    pub domain: u32,
    /// Page number (IOVA >> page shift).
    pub page_number: u64,
    /// Size of the cached leaf mapping.
    pub page_size: PageSize,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: IotlbTag,
    last_used: u64,
    valid: bool,
}

/// Cumulative IOTLB statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct IotlbStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups requiring a page walk.
    pub misses: u64,
    /// Valid entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
}

impl IotlbStats {
    /// Miss ratio over all lookups (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }
}

/// Set-associative, LRU-replacement translation cache.
#[derive(Debug)]
pub struct Iotlb {
    ways: usize,
    sets: usize,
    entries: Vec<Entry>,
    clock: u64,
    stats: IotlbStats,
}

impl Iotlb {
    /// A cache with `entries` total entries and `ways` entries per set.
    ///
    /// `entries` must be a multiple of `ways`, and the number of sets a
    /// power of two (for mask indexing). `Iotlb::new(128, 128)` is a
    /// 128-entry fully-associative cache — the paper's testbed
    /// configuration is `Iotlb::new(128, 8)` unless stated otherwise.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "empty IOTLB");
        assert!(
            entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Iotlb {
            ways,
            sets,
            entries: vec![
                Entry {
                    tag: IotlbTag {
                        domain: 0,
                        page_number: 0,
                        page_size: PageSize::Size4K,
                    },
                    last_used: 0,
                    valid: false,
                };
                entries
            ],
            clock: 0,
            stats: IotlbStats::default(),
        }
    }

    /// Total entry count.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Entries per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, tag: IotlbTag) -> usize {
        // Mix the page number (and domain) so that large-stride access
        // patterns spread across sets; xor-fold high bits into the index.
        let pn = tag.page_number ^ ((tag.domain as u64) << 7);
        let h = pn ^ (pn >> 13) ^ (pn >> 29);
        (h as usize) & (self.sets - 1)
    }

    /// Look up a translation; inserts it on miss (the walk result is cached).
    ///
    /// Returns `true` on hit, `false` on miss.
    pub fn access(&mut self, tag: IotlbTag) -> bool {
        self.clock += 1;
        self.stats.lookups += 1;
        let set = self.set_of(tag);
        let base = set * self.ways;
        let slots = &mut self.entries[base..base + self.ways];

        // Hit path.
        if let Some(e) = slots.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.last_used = self.clock;
            self.stats.hits += 1;
            return true;
        }

        // Miss: fill (LRU victim within the set).
        self.stats.misses += 1;
        let victim = slots
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_used } else { 0 })
            .expect("non-empty set");
        if victim.valid {
            self.stats.evictions += 1;
        }
        *victim = Entry {
            tag,
            last_used: self.clock,
            valid: true,
        };
        false
    }

    /// Probe without inserting or updating recency (diagnostics only).
    pub fn probe(&self, tag: IotlbTag) -> bool {
        let set = self.set_of(tag);
        let base = set * self.ways;
        self.entries[base..base + self.ways]
            .iter()
            .any(|e| e.valid && e.tag == tag)
    }

    /// Invalidate one translation (software unmap; strict-mode IOMMU).
    pub fn invalidate(&mut self, tag: IotlbTag) {
        let set = self.set_of(tag);
        let base = set * self.ways;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.tag == tag {
                e.valid = false;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidate everything (global flush).
    pub fn invalidate_all(&mut self) {
        for e in &mut self.entries {
            if e.valid {
                e.valid = false;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidate every entry belonging to one protection domain.
    pub fn invalidate_domain(&mut self, domain: u32) {
        for e in &mut self.entries {
            if e.valid && e.tag.domain == domain {
                e.valid = false;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Number of currently-valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> IotlbStats {
        self.stats
    }

    /// Reset statistics (keep contents). Used to discard warm-up counts.
    pub fn reset_stats(&mut self) {
        self.stats = IotlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(pn: u64) -> IotlbTag {
        IotlbTag {
            domain: 0,
            page_number: pn,
            page_size: PageSize::Size2M,
        }
    }

    fn dtag(domain: u32, pn: u64) -> IotlbTag {
        IotlbTag {
            domain,
            page_number: pn,
            page_size: PageSize::Size2M,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut t = Iotlb::new(8, 8);
        assert!(!t.access(tag(1)));
        assert!(t.access(tag(1)));
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut t = Iotlb::new(128, 8);
        for pn in 0..128 {
            t.access(tag(pn));
        }
        t.reset_stats();
        // With uniform set hashing, 128 distinct pages may not fit all sets
        // perfectly, but a second pass over a small working set (64) must
        // hit entirely.
        let mut t = Iotlb::new(128, 8);
        for pn in 0..64 {
            t.access(tag(pn));
        }
        t.reset_stats();
        for pn in 0..64 {
            t.access(tag(pn));
        }
        assert_eq!(t.stats().miss_ratio(), 0.0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        // Cyclic sweep over 2x capacity with LRU = near-100% misses.
        let mut t = Iotlb::new(128, 8);
        for round in 0..4 {
            for pn in 0..256 {
                let hit = t.access(tag(pn));
                if round == 0 {
                    assert!(!hit, "cold pass cannot hit");
                }
            }
        }
        assert!(
            t.stats().miss_ratio() > 0.9,
            "cyclic overflow should thrash LRU, got {}",
            t.stats().miss_ratio()
        );
    }

    #[test]
    fn lru_keeps_hot_entry_under_pressure() {
        let mut t = Iotlb::new(4, 4); // one fully-associative set
        t.access(tag(0)); // hot
        for pn in 1..4 {
            t.access(tag(pn));
        }
        // Re-touch the hot entry, then bring in one more page: the victim
        // must be page 1 (LRU), not page 0.
        assert!(t.access(tag(0)));
        t.access(tag(99));
        assert!(t.probe(tag(0)), "hot entry should survive");
        assert!(!t.probe(tag(1)), "LRU entry should be evicted");
    }

    #[test]
    fn domains_tag_separately_and_flush_selectively() {
        let mut t = Iotlb::new(16, 16);
        t.access(dtag(0, 5));
        assert!(!t.access(dtag(1, 5)), "same page, other domain: miss");
        assert_eq!(t.occupancy(), 2);
        t.invalidate_domain(0);
        assert!(!t.probe(dtag(0, 5)), "domain 0 flushed");
        assert!(t.probe(dtag(1, 5)), "domain 1 untouched");
    }

    #[test]
    fn page_sizes_tag_separately() {
        let mut t = Iotlb::new(8, 8);
        let t2m = IotlbTag {
            domain: 0,
            page_number: 5,
            page_size: PageSize::Size2M,
        };
        let t4k = IotlbTag {
            domain: 0,
            page_number: 5,
            page_size: PageSize::Size4K,
        };
        t.access(t2m);
        assert!(!t.access(t4k), "same page number, different size: miss");
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn invalidate_forces_next_miss() {
        let mut t = Iotlb::new(8, 8);
        t.access(tag(7));
        t.invalidate(tag(7));
        assert!(!t.probe(tag(7)));
        assert!(!t.access(tag(7)));
        assert_eq!(t.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut t = Iotlb::new(16, 4);
        for pn in 0..10 {
            t.access(tag(pn));
        }
        t.invalidate_all();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.stats().invalidations, 10);
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut t = Iotlb::new(128, 128);
        for pn in 0..128 {
            t.access(tag(pn));
        }
        t.reset_stats();
        for pn in 0..128 {
            assert!(t.access(tag(pn)), "page {pn} should hit");
        }
        assert_eq!(t.stats().miss_ratio(), 0.0);
        assert_eq!(t.occupancy(), 128);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = Iotlb::new(100, 8);
    }

    #[test]
    fn eviction_counter_counts_only_valid_victims() {
        let mut t = Iotlb::new(2, 2);
        t.access(tag(1));
        t.access(tag(2)); // fills; no eviction yet
        assert_eq!(t.stats().evictions, 0);
        t.access(tag(3)); // evicts LRU (tag 1)
        assert_eq!(t.stats().evictions, 1);
    }
}
