//! The I/O Translation Lookaside Buffer (IOTLB).
//!
//! A small cache of completed IOVA→PA translations inside the IOMMU. The
//! paper's testbed has 128 entries per IOMMU; once the pinned working set
//! (threads × pages per region + control-structure pages) exceeds this,
//! misses-per-packet climb and the host interconnect becomes the bottleneck
//! (Fig. 3, right panel).
//!
//! Organisation is configurable: `ways == entries` gives a fully-associative
//! cache, smaller `ways` a set-associative one. Replacement is true LRU
//! within a set, maintained with per-entry stamps (sets are small, so a
//! scan per access is cheap and the code stays obvious).

use hostcc_mem::PageSize;

/// A translation-cache tag: the page this entry covers.
///
/// Entries are tagged by protection domain, page base *and* page size: a
/// 2 MiB mapping and a 4 KiB mapping occupy one entry each regardless of
/// span, which is exactly why hugepages relieve IOTLB pressure (Fig. 4);
/// the domain tag keeps devices in different domains from aliasing each
/// other's translations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IotlbTag {
    /// Protection domain the translation belongs to.
    pub domain: u32,
    /// Page number (IOVA >> page shift).
    pub page_number: u64,
    /// Size of the cached leaf mapping.
    pub page_size: PageSize,
}

/// Sentinel for an empty/invalidated slot. Unreachable as a packed tag:
/// the page-size field only takes values 0–2, so bits 52–53 are never
/// both set.
const INVALID_KEY: u64 = u64::MAX;

/// Pack a tag into one u64 so a set's tags fit a single cache line and
/// the hit scan compares one word per way.
///
/// Layout: bits 0–51 page number, 52–53 page size, 54–63 domain. The
/// page number is structurally bounded (an IOVA is 64 bits, so
/// `iova >> 12 < 2^52`); the domain budget is asserted. Distinct tags
/// pack to distinct keys, so key equality *is* tag equality.
#[inline]
fn pack_tag(tag: IotlbTag) -> u64 {
    debug_assert!(tag.page_number < 1 << 52, "page number exceeds 52 bits");
    assert!(
        (tag.domain as u64) < 1 << 10,
        "domain id exceeds packing budget"
    );
    let size = match tag.page_size {
        PageSize::Size4K => 0u64,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    };
    tag.page_number | (size << 52) | ((tag.domain as u64) << 54)
}

/// Cumulative IOTLB statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct IotlbStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups requiring a page walk.
    pub misses: u64,
    /// Valid entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
}

impl IotlbStats {
    /// Miss ratio over all lookups (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }
}

/// Set-associative, LRU-replacement translation cache.
///
/// Storage is two parallel arrays (packed tag keys and LRU stamps)
/// rather than an array of entry structs: the hit scan — the hottest
/// loop in the whole simulator, three lookups per DMA — then touches
/// one cache line of keys per 8-way set instead of four lines of
/// padded structs. A stamp of 0 means the slot is empty (live stamps
/// start at 1, since the clock pre-increments).
#[derive(Debug)]
pub struct Iotlb {
    ways: usize,
    sets: usize,
    keys: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    stats: IotlbStats,
}

impl Iotlb {
    /// A cache with `entries` total entries and `ways` entries per set.
    ///
    /// `entries` must be a multiple of `ways`, and the number of sets a
    /// power of two (for mask indexing). `Iotlb::new(128, 128)` is a
    /// 128-entry fully-associative cache — the paper's testbed
    /// configuration is `Iotlb::new(128, 8)` unless stated otherwise.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "empty IOTLB");
        assert!(
            entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Iotlb {
            ways,
            sets,
            keys: vec![INVALID_KEY; entries],
            stamps: vec![0u64; entries],
            clock: 0,
            stats: IotlbStats::default(),
        }
    }

    /// Total entry count.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Entries per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_index(&self, page_number: u64, domain: u32) -> usize {
        // Mix the page number (and domain) so that large-stride access
        // patterns spread across sets; xor-fold high bits into the index.
        let pn = page_number ^ ((domain as u64) << 7);
        let h = pn ^ (pn >> 13) ^ (pn >> 29);
        (h as usize) & (self.sets - 1)
    }

    #[inline]
    fn set_of(&self, tag: IotlbTag) -> usize {
        self.set_index(tag.page_number, tag.domain)
    }

    /// Look up a translation; inserts it on miss (the walk result is cached).
    ///
    /// Returns `true` on hit, `false` on miss.
    pub fn access(&mut self, tag: IotlbTag) -> bool {
        let key = pack_tag(tag);
        let base = self.set_of(tag) * self.ways;
        self.access_slot(key, base)
    }

    /// Look up `count` consecutive pages of one region in a single call:
    /// page numbers `first_pn .. first_pn + count`, all sharing `domain`
    /// and `page_size`. Returns a bitmask of *misses* — bit `i` set means
    /// page `first_pn + i` missed (and was filled, exactly as
    /// [`access`](Iotlb::access) would have). State and statistics after
    /// this call are identical to `count` sequential `access` calls in
    /// ascending page order.
    ///
    /// The win over the scalar loop is hoisting: the size/domain bits are
    /// packed once, and the per-page tag is a single add. `count` must be
    /// at most 64 so the mask fits one word (DMA ranges in the testbed
    /// touch a handful of pages).
    pub fn access_run(
        &mut self,
        domain: u32,
        page_size: PageSize,
        first_pn: u64,
        count: u32,
    ) -> u64 {
        assert!(count <= 64, "run of {count} pages exceeds the 64-bit mask");
        let high = pack_tag(IotlbTag {
            domain,
            page_number: 0,
            page_size,
        });
        debug_assert!(
            first_pn + count as u64 <= 1 << 52,
            "page number exceeds 52 bits"
        );
        let mut missed = 0u64;
        for i in 0..count {
            let pn = first_pn + i as u64;
            let base = self.set_index(pn, domain) * self.ways;
            if !self.access_slot(high | pn, base) {
                missed |= 1u64 << i;
            }
        }
        missed
    }

    /// The per-slot body shared by [`access`](Iotlb::access) and
    /// [`access_run`](Iotlb::access_run): recency bump, hit scan, LRU fill.
    #[inline]
    fn access_slot(&mut self, key: u64, base: usize) -> bool {
        self.clock += 1;
        self.stats.lookups += 1;
        let keys = &self.keys[base..base + self.ways];

        // Hit path: one packed compare per way over a contiguous line,
        // tracking the matching index branch-free (keys are unique within
        // a set, so at most one way matches). The branch-free scan
        // matters: the hit way is effectively random, so an early-exit
        // loop would mispredict on nearly every lookup. Index tracking
        // (not a bitmask) keeps this correct for fully-associative
        // geometries with more than 64 ways.
        let mut found = usize::MAX;
        for (i, k) in keys.iter().enumerate() {
            found = if *k == key { i } else { found };
        }
        if found != usize::MAX {
            self.stamps[base + found] = self.clock;
            self.stats.hits += 1;
            return true;
        }

        // Miss: fill (LRU victim within the set; empty slots carry stamp
        // 0 and therefore lose every comparison, and ties keep the first
        // index — both exactly as the entry-struct scan behaved).
        self.stats.misses += 1;
        let stamps = &self.stamps[base..base + self.ways];
        let mut victim = 0;
        let mut best = stamps[0];
        for (i, s) in stamps.iter().enumerate().skip(1) {
            let better = *s < best;
            victim = if better { i } else { victim };
            best = if better { *s } else { best };
        }
        if self.keys[base + victim] != INVALID_KEY {
            self.stats.evictions += 1;
        }
        self.keys[base + victim] = key;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Probe without inserting or updating recency (diagnostics only).
    pub fn probe(&self, tag: IotlbTag) -> bool {
        let key = pack_tag(tag);
        let base = self.set_of(tag) * self.ways;
        self.keys[base..base + self.ways].contains(&key)
    }

    /// Invalidate one translation (software unmap; strict-mode IOMMU).
    pub fn invalidate(&mut self, tag: IotlbTag) {
        let key = pack_tag(tag);
        let base = self.set_of(tag) * self.ways;
        for i in base..base + self.ways {
            if self.keys[i] == key {
                self.keys[i] = INVALID_KEY;
                self.stamps[i] = 0;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidate everything (global flush).
    pub fn invalidate_all(&mut self) {
        for (k, s) in self.keys.iter_mut().zip(self.stamps.iter_mut()) {
            if *k != INVALID_KEY {
                *k = INVALID_KEY;
                *s = 0;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidate every entry belonging to one protection domain.
    pub fn invalidate_domain(&mut self, domain: u32) {
        for (k, s) in self.keys.iter_mut().zip(self.stamps.iter_mut()) {
            if *k != INVALID_KEY && (*k >> 54) as u32 == domain {
                *k = INVALID_KEY;
                *s = 0;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Number of currently-valid entries.
    pub fn occupancy(&self) -> usize {
        self.keys.iter().filter(|&&k| k != INVALID_KEY).count()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> IotlbStats {
        self.stats
    }

    /// Reset statistics (keep contents). Used to discard warm-up counts.
    pub fn reset_stats(&mut self) {
        self.stats = IotlbStats::default();
    }

    /// Serialize the cache: geometry, every slot's packed tag + LRU stamp
    /// (empty slots included so replacement order survives), the recency
    /// clock and the statistics.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.usize(self.ways);
        w.usize(self.sets);
        for (&k, &s) in self.keys.iter().zip(self.stamps.iter()) {
            w.u64(k);
            w.u64(s);
        }
        w.u64(self.clock);
        w.u64(self.stats.lookups);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.evictions);
        w.u64(self.stats.invalidations);
    }

    /// Rebuild a cache from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let ways = r.usize()?;
        let sets = r.usize()?;
        if ways == 0 || sets == 0 || !sets.is_power_of_two() {
            return Err(SnapError::Corrupt("iotlb geometry invalid"));
        }
        let entries = ways
            .checked_mul(sets)
            .ok_or(SnapError::Corrupt("iotlb geometry overflow"))?;
        if entries.saturating_mul(16) > r.remaining() {
            return Err(SnapError::Corrupt("iotlb entries exceed payload"));
        }
        let mut keys = Vec::with_capacity(entries);
        let mut stamps = Vec::with_capacity(entries);
        for _ in 0..entries {
            keys.push(r.u64()?);
            stamps.push(r.u64()?);
        }
        let clock = r.u64()?;
        if stamps.iter().any(|&s| s > clock) {
            return Err(SnapError::Corrupt("iotlb stamp beyond clock"));
        }
        Ok(Iotlb {
            ways,
            sets,
            keys,
            stamps,
            clock,
            stats: IotlbStats {
                lookups: r.u64()?,
                hits: r.u64()?,
                misses: r.u64()?,
                evictions: r.u64()?,
                invalidations: r.u64()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(pn: u64) -> IotlbTag {
        IotlbTag {
            domain: 0,
            page_number: pn,
            page_size: PageSize::Size2M,
        }
    }

    fn dtag(domain: u32, pn: u64) -> IotlbTag {
        IotlbTag {
            domain,
            page_number: pn,
            page_size: PageSize::Size2M,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut t = Iotlb::new(8, 8);
        assert!(!t.access(tag(1)));
        assert!(t.access(tag(1)));
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut t = Iotlb::new(128, 8);
        for pn in 0..128 {
            t.access(tag(pn));
        }
        t.reset_stats();
        // With uniform set hashing, 128 distinct pages may not fit all sets
        // perfectly, but a second pass over a small working set (64) must
        // hit entirely.
        let mut t = Iotlb::new(128, 8);
        for pn in 0..64 {
            t.access(tag(pn));
        }
        t.reset_stats();
        for pn in 0..64 {
            t.access(tag(pn));
        }
        assert_eq!(t.stats().miss_ratio(), 0.0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        // Cyclic sweep over 2x capacity with LRU = near-100% misses.
        let mut t = Iotlb::new(128, 8);
        for round in 0..4 {
            for pn in 0..256 {
                let hit = t.access(tag(pn));
                if round == 0 {
                    assert!(!hit, "cold pass cannot hit");
                }
            }
        }
        assert!(
            t.stats().miss_ratio() > 0.9,
            "cyclic overflow should thrash LRU, got {}",
            t.stats().miss_ratio()
        );
    }

    #[test]
    fn lru_keeps_hot_entry_under_pressure() {
        let mut t = Iotlb::new(4, 4); // one fully-associative set
        t.access(tag(0)); // hot
        for pn in 1..4 {
            t.access(tag(pn));
        }
        // Re-touch the hot entry, then bring in one more page: the victim
        // must be page 1 (LRU), not page 0.
        assert!(t.access(tag(0)));
        t.access(tag(99));
        assert!(t.probe(tag(0)), "hot entry should survive");
        assert!(!t.probe(tag(1)), "LRU entry should be evicted");
    }

    #[test]
    fn domains_tag_separately_and_flush_selectively() {
        let mut t = Iotlb::new(16, 16);
        t.access(dtag(0, 5));
        assert!(!t.access(dtag(1, 5)), "same page, other domain: miss");
        assert_eq!(t.occupancy(), 2);
        t.invalidate_domain(0);
        assert!(!t.probe(dtag(0, 5)), "domain 0 flushed");
        assert!(t.probe(dtag(1, 5)), "domain 1 untouched");
    }

    #[test]
    fn page_sizes_tag_separately() {
        let mut t = Iotlb::new(8, 8);
        let t2m = IotlbTag {
            domain: 0,
            page_number: 5,
            page_size: PageSize::Size2M,
        };
        let t4k = IotlbTag {
            domain: 0,
            page_number: 5,
            page_size: PageSize::Size4K,
        };
        t.access(t2m);
        assert!(!t.access(t4k), "same page number, different size: miss");
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn invalidate_forces_next_miss() {
        let mut t = Iotlb::new(8, 8);
        t.access(tag(7));
        t.invalidate(tag(7));
        assert!(!t.probe(tag(7)));
        assert!(!t.access(tag(7)));
        assert_eq!(t.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut t = Iotlb::new(16, 4);
        for pn in 0..10 {
            t.access(tag(pn));
        }
        t.invalidate_all();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.stats().invalidations, 10);
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut t = Iotlb::new(128, 128);
        for pn in 0..128 {
            t.access(tag(pn));
        }
        t.reset_stats();
        for pn in 0..128 {
            assert!(t.access(tag(pn)), "page {pn} should hit");
        }
        assert_eq!(t.stats().miss_ratio(), 0.0);
        assert_eq!(t.occupancy(), 128);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = Iotlb::new(100, 8);
    }

    #[test]
    fn access_run_matches_sequential_accesses() {
        // Drive two identically-configured caches through the same page
        // sequence — one via access_run, one via scalar access — and
        // demand identical miss masks, statistics and final contents.
        let mut batch = Iotlb::new(128, 8);
        let mut scalar = Iotlb::new(128, 8);
        let runs: &[(u32, PageSize, u64, u32)] = &[
            (0, PageSize::Size4K, 100, 5),
            (0, PageSize::Size4K, 102, 5), // overlaps the previous run
            (1, PageSize::Size2M, 100, 3), // same pages, other domain/size
            (0, PageSize::Size4K, 0, 64),  // max-width run
            (0, PageSize::Size4K, 100, 1),
            (2, PageSize::Size1G, 7, 2),
        ];
        for &(domain, page_size, first_pn, count) in runs {
            let mask = batch.access_run(domain, page_size, first_pn, count);
            let mut expect = 0u64;
            for i in 0..count {
                let hit = scalar.access(IotlbTag {
                    domain,
                    page_number: first_pn + i as u64,
                    page_size,
                });
                if !hit {
                    expect |= 1u64 << i;
                }
            }
            assert_eq!(mask, expect, "miss masks diverged");
        }
        let (b, s) = (batch.stats(), scalar.stats());
        assert_eq!(b.lookups, s.lookups);
        assert_eq!(b.hits, s.hits);
        assert_eq!(b.misses, s.misses);
        assert_eq!(b.evictions, s.evictions);
        assert_eq!(batch.occupancy(), scalar.occupancy());
        for &(domain, page_size, first_pn, count) in runs {
            for i in 0..count {
                let tag = IotlbTag {
                    domain,
                    page_number: first_pn + i as u64,
                    page_size,
                };
                assert_eq!(batch.probe(tag), scalar.probe(tag), "contents diverged");
            }
        }
    }

    #[test]
    #[should_panic(expected = "64-bit mask")]
    fn access_run_rejects_oversized_runs() {
        let mut t = Iotlb::new(128, 8);
        t.access_run(0, PageSize::Size4K, 0, 65);
    }

    #[test]
    fn eviction_counter_counts_only_valid_victims() {
        let mut t = Iotlb::new(2, 2);
        t.access(tag(1));
        t.access(tag(2)); // fills; no eviction yet
        assert_eq!(t.stats().evictions, 0);
        t.access(tag(3)); // evicts LRU (tag 1)
        assert_eq!(t.stats().evictions, 1);
    }
}
