//! The IOMMU device model: page table + IOTLB + page-walk cache, with
//! per-translation cost accounting.
//!
//! On every NIC-initiated DMA the root complex asks the IOMMU to translate
//! the I/O virtual address. The IOMMU returns the physical address plus a
//! *cost receipt*: how many IOTLB lookups were needed for the byte range,
//! how many missed, and how many page-table memory accesses the walks
//! performed. The caller (the root-complex pipeline in `hostcc-host`)
//! converts those memory accesses into latency using the memory-subsystem
//! model, so walk cost automatically inflates when the memory bus is
//! contended — the coupling at the heart of the paper.

use crate::iotlb::{Iotlb, IotlbStats, IotlbTag};
use crate::walk_cache::WalkCache;
use hostcc_mem::{pages_touched, Fault, IoPageTable, Iova, MapError, PageSize, PhysAddr};

/// A protection domain: one isolated I/O address space (typically one per
/// device or per VM passthrough assignment). The NIC of the paper's
/// testbed lives alone in domain 0; multi-device hosts attach each device
/// to its own domain and all domains share the IOTLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The default domain (the NIC's, in the testbed).
    pub const DEFAULT: DomainId = DomainId(0);
}

/// IOMMU configuration.
#[derive(Debug, Clone)]
pub struct IommuConfig {
    /// Memory protection on/off. When off, DMA addresses pass through
    /// untranslated and at zero cost (the paper's "IOMMU OFF" baseline).
    pub enabled: bool,
    /// Total IOTLB entries (paper testbed: 128 per IOMMU).
    pub iotlb_entries: usize,
    /// IOTLB associativity (entries per set).
    pub iotlb_ways: usize,
    /// Latency of an IOTLB hit, nanoseconds ("a few ns").
    pub iotlb_hit_ns: u64,
    /// Page-walk cache entries (0 disables the PWC).
    pub pwc_entries: usize,
}

impl Default for IommuConfig {
    fn default() -> Self {
        IommuConfig {
            enabled: true,
            iotlb_entries: 128,
            iotlb_ways: 8,
            iotlb_hit_ns: 2,
            pwc_entries: 32,
        }
    }
}

/// Cost receipt for translating one DMA byte range.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationCost {
    /// IOTLB lookups performed (== pages touched by the range).
    pub iotlb_lookups: u32,
    /// Lookups that missed and required a walk.
    pub iotlb_misses: u32,
    /// Page-table memory accesses performed by the walks (after PWC).
    pub walk_memory_accesses: u32,
    /// Fixed IOTLB lookup latency to charge, nanoseconds.
    pub lookup_ns: u64,
}

impl TranslationCost {
    /// Accumulate another receipt (multiple DMAs of one packet).
    pub fn add(&mut self, other: TranslationCost) {
        self.iotlb_lookups += other.iotlb_lookups;
        self.iotlb_misses += other.iotlb_misses;
        self.walk_memory_accesses += other.walk_memory_accesses;
        self.lookup_ns += other.lookup_ns;
    }
}

/// A successful DMA translation.
#[derive(Debug, Clone, Copy)]
pub struct DmaTranslation {
    /// Physical address of the first byte.
    pub pa: PhysAddr,
    /// Cost receipt for the whole range.
    pub cost: TranslationCost,
}

/// Cumulative IOMMU statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct IommuStats {
    /// Translation requests (DMA ranges).
    pub translations: u64,
    /// Translation faults (unmapped IOVA) — indicates a simulator bug or a
    /// deliberately-injected fault.
    pub faults: u64,
    /// Total page-table memory accesses performed.
    pub walk_memory_accesses: u64,
}

/// The IOMMU: one or more protection domains sharing an IOTLB and a
/// page-walk cache. The paper's testbed uses a single domain (the NIC's);
/// additional domains model multi-device hosts.
#[derive(Debug)]
pub struct Iommu {
    config: IommuConfig,
    tables: Vec<IoPageTable>,
    iotlb: Iotlb,
    pwc: WalkCache,
    stats: IommuStats,
}

impl Iommu {
    /// Build an IOMMU with the given configuration and an empty page table.
    pub fn new(config: IommuConfig) -> Self {
        let iotlb = Iotlb::new(config.iotlb_entries, config.iotlb_ways);
        let pwc = WalkCache::new(config.pwc_entries);
        Iommu {
            config,
            tables: vec![IoPageTable::new()],
            iotlb,
            pwc,
            stats: IommuStats::default(),
        }
    }

    /// Create a new (empty) protection domain and return its id.
    pub fn create_domain(&mut self) -> DomainId {
        self.tables.push(IoPageTable::new());
        DomainId(self.tables.len() as u32 - 1)
    }

    /// Number of protection domains.
    pub fn domain_count(&self) -> usize {
        self.tables.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &IommuConfig {
        &self.config
    }

    /// Whether memory protection is enabled.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Install a mapping range in the default domain (driver registration
    /// path; "loose mode" keeps these alive for the lifetime of the run).
    pub fn map_range(
        &mut self,
        iova: Iova,
        pa: PhysAddr,
        len: u64,
        size: PageSize,
    ) -> Result<u64, MapError> {
        self.map_range_in(DomainId::DEFAULT, iova, pa, len, size)
    }

    /// Install a mapping range in a specific domain.
    pub fn map_range_in(
        &mut self,
        domain: DomainId,
        iova: Iova,
        pa: PhysAddr,
        len: u64,
        size: PageSize,
    ) -> Result<u64, MapError> {
        self.tables[domain.0 as usize].map_range(iova, pa, len, size)
    }

    /// Mutable access to the default domain's page table (registration
    /// helpers).
    pub fn page_table_mut(&mut self) -> &mut IoPageTable {
        &mut self.tables[0]
    }

    /// Number of leaf mappings currently installed across all domains.
    pub fn mapped_pages(&self) -> u64 {
        self.tables.iter().map(|t| t.mapped_pages()).sum()
    }

    /// Translate the DMA byte range `[iova, iova+len)`.
    ///
    /// Performs one IOTLB lookup per page the range touches; every miss
    /// walks the page table, with the page-walk cache trimming the upper
    /// levels. With the IOMMU disabled this is an identity translation at
    /// zero cost.
    pub fn translate_range(&mut self, iova: Iova, len: u64) -> Result<DmaTranslation, Fault> {
        self.translate_range_in(DomainId::DEFAULT, iova, len)
    }

    /// Translate a DMA byte range within a specific protection domain.
    pub fn translate_range_in(
        &mut self,
        domain: DomainId,
        iova: Iova,
        len: u64,
    ) -> Result<DmaTranslation, Fault> {
        if !self.config.enabled {
            return Ok(DmaTranslation {
                pa: PhysAddr(iova.as_u64()),
                cost: TranslationCost::default(),
            });
        }
        self.stats.translations += 1;

        // Resolve the first page to learn the mapping size; regions are
        // registered with a uniform page size, so the rest of the range
        // shares it.
        let first = self.tables[domain.0 as usize]
            .translate(iova)
            .inspect_err(|_| {
                self.stats.faults += 1;
            })?;
        let page_size = first.page_size;

        let mut cost = TranslationCost::default();
        for pn in pages_touched(iova, len, page_size) {
            cost.iotlb_lookups += 1;
            cost.lookup_ns += self.config.iotlb_hit_ns;
            let tag = IotlbTag {
                domain: domain.0,
                page_number: pn,
                page_size,
            };
            if self.iotlb.access(tag) {
                continue;
            }
            cost.iotlb_misses += 1;
            // Walk. PWC caches the path down to the directory level:
            //  - 4 KiB leaf: key = 2 MiB region; hit -> 1 access (PT leaf),
            //    miss -> 4 accesses (PML4, PDPT, PD, PT).
            //  - 2 MiB leaf: key = 1 GiB region; hit -> 1 access (PD leaf),
            //    miss -> 3 accesses (PML4, PDPT, PD).
            let full_walk = page_size.walk_levels();
            let pwc_key = match page_size {
                PageSize::Size4K => (pn << 12) >> 21, // 2 MiB region
                PageSize::Size2M => ((pn << 21) >> 30) | (1 << 62), // 1 GiB region
                PageSize::Size1G => (pn << 30) >> 39 | (1 << 63),
            };
            let accesses = if self.pwc.access(pwc_key) {
                1
            } else {
                full_walk
            };
            cost.walk_memory_accesses += accesses;
        }
        self.stats.walk_memory_accesses += cost.walk_memory_accesses as u64;
        Ok(DmaTranslation { pa: first.pa, cost })
    }

    /// Cost-only translation of a default-domain DMA byte range whose
    /// mapping page size the caller already knows.
    ///
    /// The hot datapath translates the same statically-registered regions
    /// on every packet; the physical address is never consumed (the
    /// simulator models latency, not data movement) and the page size is a
    /// run constant per region. This path therefore skips the
    /// learn-the-page-size table descent [`translate_range`] performs on
    /// every call and touches the page table only when a page actually
    /// missed the IOTLB. On a mapped range the receipt, the IOTLB/PWC
    /// state and every statistic come out identical to
    /// [`translate_range`]; `debug_assert` cross-checks the page-size hint
    /// against the installed mapping.
    ///
    /// Divergence on *unmapped* ranges: the IOTLB is probed (and filled)
    /// before the fault surfaces, where the scalar path faults first. The
    /// testbed treats translation faults as fatal configuration errors,
    /// so the divergence is unobservable in any completed run.
    pub fn translate_range_cost(
        &mut self,
        iova: Iova,
        len: u64,
        page_size: PageSize,
    ) -> Result<TranslationCost, Fault> {
        if !self.config.enabled {
            return Ok(TranslationCost::default());
        }
        self.stats.translations += 1;
        debug_assert!(
            self.tables[0]
                .translate(iova)
                .map(|t| t.page_size == page_size)
                .unwrap_or(true),
            "page-size hint disagrees with the installed mapping"
        );

        let first_pn = iova.page_number(page_size);
        let last_pn = if len == 0 {
            first_pn
        } else {
            iova.add(len - 1).page_number(page_size)
        };
        let count = (last_pn - first_pn + 1) as u32;
        let mut cost = TranslationCost {
            iotlb_lookups: count,
            iotlb_misses: 0,
            walk_memory_accesses: 0,
            lookup_ns: self.config.iotlb_hit_ns * count as u64,
        };
        let mut missed = self
            .iotlb
            .access_run(DomainId::DEFAULT.0, page_size, first_pn, count);
        if missed != 0 {
            // A page actually needs a walk: validate the mapping (this is
            // where an unmapped range faults) and charge the PWC-trimmed
            // walk for each missing page in ascending order.
            self.tables[0].translate(iova).inspect_err(|_| {
                self.stats.faults += 1;
            })?;
            cost.iotlb_misses = missed.count_ones();
            let full_walk = page_size.walk_levels();
            while missed != 0 {
                let pn = first_pn + missed.trailing_zeros() as u64;
                missed &= missed - 1;
                let pwc_key = match page_size {
                    PageSize::Size4K => (pn << 12) >> 21,
                    PageSize::Size2M => ((pn << 21) >> 30) | (1 << 62),
                    PageSize::Size1G => (pn << 30) >> 39 | (1 << 63),
                };
                cost.walk_memory_accesses += if self.pwc.access(pwc_key) {
                    1
                } else {
                    full_walk
                };
            }
            self.stats.walk_memory_accesses += cost.walk_memory_accesses as u64;
        }
        Ok(cost)
    }

    /// Invalidate the cached translation for one page of the default
    /// domain (strict-mode unmap).
    pub fn invalidate_page(&mut self, iova: Iova, size: PageSize) {
        self.iotlb.invalidate(IotlbTag {
            domain: DomainId::DEFAULT.0,
            page_number: iova.page_number(size),
            page_size: size,
        });
    }

    /// Invalidate every cached translation of one domain (device detach,
    /// VM teardown).
    pub fn invalidate_domain(&mut self, domain: DomainId) {
        self.iotlb.invalidate_domain(domain.0);
    }

    /// Domain-wide invalidation of IOTLB and PWC.
    pub fn invalidate_all(&mut self) {
        self.iotlb.invalidate_all();
        self.pwc.invalidate_all();
    }

    /// IOTLB statistics.
    pub fn iotlb_stats(&self) -> IotlbStats {
        self.iotlb.stats()
    }

    /// IOMMU statistics.
    pub fn stats(&self) -> IommuStats {
        self.stats
    }

    /// Reset all statistics (warm-up discard); cache contents are kept.
    pub fn reset_stats(&mut self) {
        self.iotlb.reset_stats();
        self.stats = IommuStats::default();
    }

    /// Serialize the IOMMU's evolving state: IOTLB contents, page-walk
    /// cache contents, and statistics. Page tables are not written —
    /// mappings are registered at construction from config, so restore
    /// targets an IOMMU rebuilt the same way.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        self.iotlb.save_state(w);
        self.pwc.save_state(w);
        w.u64(self.stats.translations);
        w.u64(self.stats.faults);
        w.u64(self.stats.walk_memory_accesses);
    }

    /// Overwrite this IOMMU's caches and statistics from
    /// [`save_state`](Self::save_state) output. `self` must have been
    /// rebuilt from the same config; a cache-geometry mismatch is a typed
    /// error and leaves `self` untouched.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let iotlb = Iotlb::load_state(r)?;
        let pwc = WalkCache::load_state(r)?;
        if iotlb.capacity() != self.iotlb.capacity() || iotlb.ways() != self.iotlb.ways() {
            return Err(SnapError::Corrupt("iotlb geometry mismatch"));
        }
        let stats = IommuStats {
            translations: r.u64()?,
            faults: r.u64()?,
            walk_memory_accesses: r.u64()?,
        };
        self.iotlb = iotlb;
        self.pwc = pwc;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped_iommu(enabled: bool, region_bytes: u64, size: PageSize) -> Iommu {
        let mut io = Iommu::new(IommuConfig {
            enabled,
            ..IommuConfig::default()
        });
        io.map_range(Iova(0x100_0000), PhysAddr(0x8000_0000), region_bytes, size)
            .unwrap();
        io
    }

    #[test]
    fn disabled_iommu_is_identity_and_free() {
        let mut io = mapped_iommu(false, 4 << 20, PageSize::Size2M);
        let t = io.translate_range(Iova(0xdead_b000), 4096).unwrap();
        assert_eq!(t.pa, PhysAddr(0xdead_b000));
        assert_eq!(t.cost, TranslationCost::default());
        assert_eq!(io.stats().translations, 0);
    }

    #[test]
    fn enabled_iommu_translates_and_charges() {
        let mut io = mapped_iommu(true, 4 << 20, PageSize::Size2M);
        let t = io.translate_range(Iova(0x100_0000 + 0x1234), 4096).unwrap();
        assert_eq!(t.pa, PhysAddr(0x8000_0000 + 0x1234));
        assert_eq!(t.cost.iotlb_lookups, 1);
        assert_eq!(t.cost.iotlb_misses, 1, "cold cache");
        assert!(t.cost.walk_memory_accesses >= 1);
        // Second access to the same page: hit, no walk.
        let t2 = io.translate_range(Iova(0x100_0000 + 0x5678), 4096).unwrap();
        assert_eq!(t2.cost.iotlb_misses, 0);
        assert_eq!(t2.cost.walk_memory_accesses, 0);
    }

    #[test]
    fn unmapped_address_faults() {
        let mut io = mapped_iommu(true, 4 << 20, PageSize::Size2M);
        assert!(io.translate_range(Iova(0x10), 64).is_err());
        assert_eq!(io.stats().faults, 1);
    }

    #[test]
    fn range_straddling_4k_pages_costs_two_lookups() {
        let mut io = mapped_iommu(true, 4 << 20, PageSize::Size4K);
        // 4096 bytes starting mid-page touch two 4K pages.
        let t = io.translate_range(Iova(0x100_0000 + 0x800), 4096).unwrap();
        assert_eq!(t.cost.iotlb_lookups, 2);
        // Same range within one 2M hugepage: one lookup.
        let mut io2 = mapped_iommu(true, 4 << 20, PageSize::Size2M);
        let t2 = io2.translate_range(Iova(0x100_0000 + 0x800), 4096).unwrap();
        assert_eq!(t2.cost.iotlb_lookups, 1);
    }

    #[test]
    fn pwc_trims_walk_for_neighbouring_pages() {
        let mut io = mapped_iommu(true, 4 << 20, PageSize::Size4K);
        // First 4K page in a 2M region: full walk (4 accesses).
        let t1 = io.translate_range(Iova(0x100_0000), 64).unwrap();
        assert_eq!(t1.cost.walk_memory_accesses, 4);
        // Next 4K page shares the PD path: PWC hit -> 1 access.
        let t2 = io.translate_range(Iova(0x100_1000), 64).unwrap();
        assert_eq!(t2.cost.walk_memory_accesses, 1);
    }

    #[test]
    fn hugepage_walk_is_shallower() {
        let mut io = mapped_iommu(true, 4 << 20, PageSize::Size2M);
        let t = io.translate_range(Iova(0x100_0000), 64).unwrap();
        assert_eq!(t.cost.walk_memory_accesses, 3, "2M leaf full walk");
        // Second hugepage in the same 1G region: PWC hit -> 1 access.
        let t2 = io.translate_range(Iova(0x120_0000), 64).unwrap();
        assert_eq!(t2.cost.walk_memory_accesses, 1);
    }

    #[test]
    fn invalidate_page_forces_refill() {
        let mut io = mapped_iommu(true, 4 << 20, PageSize::Size2M);
        io.translate_range(Iova(0x100_0000), 64).unwrap();
        io.invalidate_page(Iova(0x100_0000), PageSize::Size2M);
        let t = io.translate_range(Iova(0x100_0000), 64).unwrap();
        assert_eq!(t.cost.iotlb_misses, 1);
    }

    #[test]
    fn working_set_overflow_generates_steady_misses() {
        // 256 hugepages over a 128-entry IOTLB, cyclic access: thrash.
        let mut io = Iommu::new(IommuConfig::default());
        io.map_range(Iova(0), PhysAddr(0), 512 << 20, PageSize::Size2M)
            .unwrap();
        for _ in 0..3 {
            for p in 0..256u64 {
                io.translate_range(Iova(p * (2 << 20)), 4096).unwrap();
            }
        }
        let s = io.iotlb_stats();
        assert!(
            s.miss_ratio() > 0.9,
            "expected thrashing, miss ratio {}",
            s.miss_ratio()
        );
    }

    /// The cost-only path must be indistinguishable from the full
    /// translation on mapped ranges: same receipts, same cache state,
    /// same statistics, for any interleaving of the two.
    #[test]
    fn cost_only_path_matches_translate_range() {
        for size in [PageSize::Size4K, PageSize::Size2M] {
            let mut full = mapped_iommu(true, 64 << 20, size);
            let mut cost = mapped_iommu(true, 64 << 20, size);
            // Sweep a working set larger than the IOTLB so the comparison
            // covers cold misses, hits, PWC hits and LRU evictions.
            let ranges: Vec<(u64, u64)> = (0..300u64)
                .map(|i| {
                    let off = (i * 7919) % (60 << 20);
                    let len = 64 + (i % 5) * 4096;
                    (off, len)
                })
                .collect();
            for &(off, len) in &ranges {
                let iova = Iova(0x100_0000 + off);
                let a = full.translate_range(iova, len).unwrap();
                let b = cost.translate_range_cost(iova, len, size).unwrap();
                assert_eq!(a.cost, b, "receipts diverged at off={off} len={len}");
            }
            let (fs, cs) = (full.iotlb_stats(), cost.iotlb_stats());
            assert_eq!(fs.lookups, cs.lookups);
            assert_eq!(fs.hits, cs.hits);
            assert_eq!(fs.misses, cs.misses);
            assert_eq!(fs.evictions, cs.evictions);
            assert_eq!(full.stats().translations, cost.stats().translations);
            assert_eq!(
                full.stats().walk_memory_accesses,
                cost.stats().walk_memory_accesses
            );
            // Final cache state is interchangeable: replaying one more
            // range on each yields the same receipt again.
            let a = full.translate_range(Iova(0x100_0000), 4096).unwrap();
            let b = cost
                .translate_range_cost(Iova(0x100_0000), 4096, size)
                .unwrap();
            assert_eq!(a.cost, b);
        }
    }

    #[test]
    fn cost_only_path_is_free_when_disabled() {
        let mut io = mapped_iommu(false, 4 << 20, PageSize::Size2M);
        let c = io
            .translate_range_cost(Iova(0xdead_b000), 4096, PageSize::Size2M)
            .unwrap();
        assert_eq!(c, TranslationCost::default());
        assert_eq!(io.stats().translations, 0);
    }

    #[test]
    fn cost_only_path_faults_on_unmapped_miss() {
        let mut io = mapped_iommu(true, 4 << 20, PageSize::Size4K);
        let err = io.translate_range_cost(Iova(0x10), 64, PageSize::Size4K);
        assert!(err.is_err());
        assert_eq!(io.stats().faults, 1);
    }

    #[test]
    fn cost_receipts_accumulate() {
        let mut a = TranslationCost {
            iotlb_lookups: 1,
            iotlb_misses: 1,
            walk_memory_accesses: 3,
            lookup_ns: 2,
        };
        a.add(TranslationCost {
            iotlb_lookups: 2,
            iotlb_misses: 0,
            walk_memory_accesses: 0,
            lookup_ns: 4,
        });
        assert_eq!(a.iotlb_lookups, 3);
        assert_eq!(a.iotlb_misses, 1);
        assert_eq!(a.walk_memory_accesses, 3);
        assert_eq!(a.lookup_ns, 6);
    }
}

#[cfg(test)]
mod domain_tests {
    use super::*;

    #[test]
    fn domains_are_isolated_address_spaces() {
        let mut io = Iommu::new(IommuConfig::default());
        let d1 = io.create_domain();
        // The *same* IOVA maps to different physical pages per domain.
        io.map_range(
            Iova(0x10_0000),
            PhysAddr(0x1000_0000),
            4096,
            PageSize::Size4K,
        )
        .unwrap();
        io.map_range_in(
            d1,
            Iova(0x10_0000),
            PhysAddr(0x2000_0000),
            4096,
            PageSize::Size4K,
        )
        .unwrap();
        let a = io.translate_range(Iova(0x10_0000), 64).unwrap();
        let b = io.translate_range_in(d1, Iova(0x10_0000), 64).unwrap();
        assert_eq!(a.pa, PhysAddr(0x1000_0000));
        assert_eq!(b.pa, PhysAddr(0x2000_0000));
        assert_eq!(io.domain_count(), 2);
    }

    #[test]
    fn iotlb_entries_do_not_alias_across_domains() {
        let mut io = Iommu::new(IommuConfig::default());
        let d1 = io.create_domain();
        io.map_range(Iova(0), PhysAddr(0x1000_0000), 4096, PageSize::Size4K)
            .unwrap();
        io.map_range_in(d1, Iova(0), PhysAddr(0x2000_0000), 4096, PageSize::Size4K)
            .unwrap();
        // Warm domain 0's entry; the same page number in d1 must still miss.
        io.translate_range(Iova(0), 64).unwrap();
        let b = io.translate_range_in(d1, Iova(0), 64).unwrap();
        assert_eq!(b.cost.iotlb_misses, 1, "no cross-domain hit");
        // Both now cached independently.
        assert_eq!(
            io.translate_range(Iova(0), 64).unwrap().cost.iotlb_misses,
            0
        );
        assert_eq!(
            io.translate_range_in(d1, Iova(0), 64)
                .unwrap()
                .cost
                .iotlb_misses,
            0
        );
    }

    #[test]
    fn unmapped_domain_faults_independently() {
        let mut io = Iommu::new(IommuConfig::default());
        let d1 = io.create_domain();
        io.map_range(Iova(0x1000), PhysAddr(0x1000), 4096, PageSize::Size4K)
            .unwrap();
        assert!(io.translate_range(Iova(0x1000), 64).is_ok());
        assert!(io.translate_range_in(d1, Iova(0x1000), 64).is_err());
    }

    #[test]
    fn domain_selective_invalidation() {
        let mut io = Iommu::new(IommuConfig::default());
        let d1 = io.create_domain();
        io.map_range(Iova(0), PhysAddr(0x1000_0000), 4096, PageSize::Size4K)
            .unwrap();
        io.map_range_in(d1, Iova(0), PhysAddr(0x2000_0000), 4096, PageSize::Size4K)
            .unwrap();
        io.translate_range(Iova(0), 64).unwrap();
        io.translate_range_in(d1, Iova(0), 64).unwrap();
        io.invalidate_domain(d1);
        // d1 refills; d0 still hits.
        assert_eq!(
            io.translate_range_in(d1, Iova(0), 64)
                .unwrap()
                .cost
                .iotlb_misses,
            1
        );
        assert_eq!(
            io.translate_range(Iova(0), 64).unwrap().cost.iotlb_misses,
            0
        );
    }

    #[test]
    fn shared_iotlb_capacity_couples_domains() {
        // Two busy domains contend for the same 128 entries: a second
        // device's translations evict the first's — the multi-device
        // pressure scenario.
        let mut io = Iommu::new(IommuConfig {
            iotlb_entries: 128,
            iotlb_ways: 128,
            ..IommuConfig::default()
        });
        let d1 = io.create_domain();
        io.map_range(Iova(0), PhysAddr(0), 512 << 20, PageSize::Size2M)
            .unwrap();
        io.map_range_in(d1, Iova(0), PhysAddr(1 << 33), 512 << 20, PageSize::Size2M)
            .unwrap();
        // Fill with domain 0 (96 pages), then touch 96 pages of domain 1.
        for p in 0..96u64 {
            io.translate_range(Iova(p * (2 << 20)), 64).unwrap();
        }
        io.reset_stats();
        for p in 0..96u64 {
            io.translate_range_in(d1, Iova(p * (2 << 20)), 64).unwrap();
        }
        // Re-touch domain 0: many of its entries were evicted.
        for p in 0..96u64 {
            io.translate_range(Iova(p * (2 << 20)), 64).unwrap();
        }
        let s = io.iotlb_stats();
        assert!(
            s.misses > 96,
            "cross-domain capacity pressure expected, misses {}",
            s.misses
        );
    }
}
