//! Page-walk cache (PWC).
//!
//! Real IOMMUs cache intermediate page-table entries so that an IOTLB miss
//! does not always cost a full multi-level walk — the paper notes a miss
//! "can trigger one or more memory accesses (depending on what page entry
//! level was already cached)". We model a PWC that caches the *path* down
//! to the page-directory level: a PWC hit leaves only the leaf level(s) to
//! fetch from memory.

use std::collections::HashMap;

/// LRU cache of intermediate walk paths, keyed by the covered region.
///
/// For a 4 KiB leaf the key is the 2 MiB-aligned region (the PD entry that
/// points at the PT); for a 2 MiB leaf it is the 1 GiB-aligned region (the
/// PDPT entry that points at the PD).
#[derive(Debug)]
pub struct WalkCache {
    capacity: usize,
    // key -> last-used stamp
    entries: HashMap<u64, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl WalkCache {
    /// A PWC with `capacity` entries; capacity 0 disables the cache.
    pub fn new(capacity: usize) -> Self {
        WalkCache {
            capacity,
            entries: HashMap::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether the cache is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up the walk path for `key`; inserts on miss. Returns hit/miss.
    pub fn access(&mut self, key: u64) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        self.clock += 1;
        if let Some(stamp) = self.entries.get_mut(&key) {
            *stamp = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the least recently used key. Linear scan is fine: PWCs
            // are tiny (tens of entries) and only misses pay this cost.
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(k, _)| k)
                .expect("non-empty");
            self.entries.remove(&victim);
        }
        self.entries.insert(key, self.clock);
        false
    }

    /// Drop all cached paths.
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Current number of cached paths.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = WalkCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
        assert_eq!(c.stats(), (0, 2));
        assert!(!c.is_enabled());
    }

    #[test]
    fn hit_after_fill() {
        let mut c = WalkCache::new(4);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut c = WalkCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.access(1), "1 was hot");
        assert!(!c.access(2), "2 was evicted");
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = WalkCache::new(4);
        c.access(1);
        c.invalidate_all();
        assert!(!c.access(1));
        assert_eq!(c.occupancy(), 1);
    }
}
