//! Page-walk cache (PWC).
//!
//! Real IOMMUs cache intermediate page-table entries so that an IOTLB miss
//! does not always cost a full multi-level walk — the paper notes a miss
//! "can trigger one or more memory accesses (depending on what page entry
//! level was already cached)". We model a PWC that caches the *path* down
//! to the page-directory level: a PWC hit leaves only the leaf level(s) to
//! fetch from memory.

/// LRU cache of intermediate walk paths, keyed by the covered region.
///
/// For a 4 KiB leaf the key is the 2 MiB-aligned region (the PD entry that
/// points at the PT); for a 2 MiB leaf it is the 1 GiB-aligned region (the
/// PDPT entry that points at the PD).
///
/// Storage is two parallel arrays scanned linearly. A PWC is tiny (tens
/// of entries, a few cache lines of keys) and it is consulted on *every*
/// IOTLB miss — in the paper's thrash regimes that is nearly every DMA —
/// so a flat scan beats hashing the key on each probe. LRU stamps are
/// unique (the clock advances per probe), so the eviction victim is
/// deterministic.
#[derive(Debug)]
pub struct WalkCache {
    capacity: usize,
    keys: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl WalkCache {
    /// A PWC with `capacity` entries; capacity 0 disables the cache.
    pub fn new(capacity: usize) -> Self {
        WalkCache {
            capacity,
            keys: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether the cache is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up the walk path for `key`; inserts on miss. Returns hit/miss.
    pub fn access(&mut self, key: u64) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        self.clock += 1;
        if let Some(i) = self.keys.iter().position(|&k| k == key) {
            self.stamps[i] = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.keys.len() >= self.capacity {
            // Evict the least recently used key (unique minimum stamp).
            let mut victim = 0;
            for i in 1..self.stamps.len() {
                if self.stamps[i] < self.stamps[victim] {
                    victim = i;
                }
            }
            self.keys[victim] = key;
            self.stamps[victim] = self.clock;
        } else {
            self.keys.push(key);
            self.stamps.push(self.clock);
        }
        false
    }

    /// Drop all cached paths.
    pub fn invalidate_all(&mut self) {
        self.keys.clear();
        self.stamps.clear();
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Current number of cached paths.
    pub fn occupancy(&self) -> usize {
        self.keys.len()
    }

    /// Serialize the cache (capacity, cached paths with stamps, counters).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.usize(self.capacity);
        w.usize(self.keys.len());
        for (&k, &s) in self.keys.iter().zip(self.stamps.iter()) {
            w.u64(k);
            w.u64(s);
        }
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
    }

    /// Rebuild a cache from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let capacity = r.usize()?;
        let n = r.len(16)?;
        if n > capacity {
            return Err(SnapError::Corrupt("walk cache overfull"));
        }
        let mut keys = Vec::with_capacity(capacity);
        let mut stamps = Vec::with_capacity(capacity);
        for _ in 0..n {
            keys.push(r.u64()?);
            stamps.push(r.u64()?);
        }
        let clock = r.u64()?;
        if stamps.iter().any(|&s| s > clock) {
            return Err(SnapError::Corrupt("walk-cache stamp beyond clock"));
        }
        Ok(WalkCache {
            capacity,
            keys,
            stamps,
            clock,
            hits: r.u64()?,
            misses: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = WalkCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
        assert_eq!(c.stats(), (0, 2));
        assert!(!c.is_enabled());
    }

    #[test]
    fn hit_after_fill() {
        let mut c = WalkCache::new(4);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut c = WalkCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.access(1), "1 was hot");
        assert!(!c.access(2), "2 was evicted");
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = WalkCache::new(4);
        c.access(1);
        c.invalidate_all();
        assert!(!c.access(1));
        assert_eq!(c.occupancy(), 1);
    }
}
