//! The NIC input buffer.
//!
//! A small on-NIC SRAM (≈1–2 MiB on commodity 100 Gbps NICs) where every
//! arriving packet waits for its DMA to the host. This queue is where host
//! congestion becomes visible: when the NIC-to-memory path slows down
//! (IOTLB walks, memory-bus contention, exhausted PCIe credits) the buffer
//! fills within tens of microseconds and packets tail-drop. The paper's key
//! arithmetic: a 1 MiB buffer drains in < 90 µs whenever the NIC can move
//! ≥ 88.8 Gbps to the host, so a congestion controller watching for a
//! 100 µs host-delay target never sees the queue before it overflows.

use hostcc_fabric::Packet;
use hostcc_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A packet waiting in the input buffer.
#[derive(Debug, Clone, Copy)]
pub struct QueuedPacket {
    /// The packet.
    pub packet: Packet,
    /// When it arrived at the NIC (starts the host-delay clock).
    pub arrived: SimTime,
}

/// Byte-bounded tail-drop FIFO.
#[derive(Debug)]
pub struct InputBuffer {
    capacity_bytes: u64,
    queued_bytes: u64,
    queue: VecDeque<QueuedPacket>,
    drops: u64,
    dropped_bytes: u64,
    enqueued: u64,
    peak_bytes: u64,
}

impl InputBuffer {
    /// A buffer holding at most `capacity_bytes` of packet data.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "zero-capacity buffer");
        InputBuffer {
            capacity_bytes,
            queued_bytes: 0,
            queue: VecDeque::new(),
            drops: 0,
            dropped_bytes: 0,
            enqueued: 0,
            peak_bytes: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Offer an arriving packet. Returns `false` if it was tail-dropped.
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> bool {
        let bytes = packet.wire_bytes as u64;
        if self.queued_bytes + bytes > self.capacity_bytes {
            self.drops += 1;
            self.dropped_bytes += bytes;
            return false;
        }
        self.queued_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.queued_bytes);
        self.enqueued += 1;
        self.queue.push_back(QueuedPacket {
            packet,
            arrived: now,
        });
        true
    }

    /// Take the packet at the head of the queue (next to DMA).
    pub fn dequeue(&mut self) -> Option<QueuedPacket> {
        let qp = self.queue.pop_front()?;
        self.queued_bytes -= qp.packet.wire_bytes as u64;
        Some(qp)
    }

    /// Peek at the head without removing it.
    pub fn peek(&self) -> Option<&QueuedPacket> {
        self.queue.front()
    }

    /// Bytes currently queued.
    pub fn occupancy_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently queued.
    pub fn occupancy_packets(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer holds no packets.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Highest occupancy observed, bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Restart peak tracking from the current occupancy (warm-up discard).
    pub fn reset_peak(&mut self) {
        self.peak_bytes = self.queued_bytes;
    }

    /// Packets tail-dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Bytes tail-dropped so far.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Packets accepted so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Queueing delay the head packet has suffered so far.
    pub fn head_delay(&self, now: SimTime) -> SimDuration {
        self.queue
            .front()
            .map(|qp| now.saturating_since(qp.arrived))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Time to drain the current occupancy at `bytes_per_sec` — the
    /// buffer-vs-target-delay arithmetic from §3.1.
    pub fn drain_time(&self, bytes_per_sec: f64) -> SimDuration {
        SimDuration::for_bytes(self.queued_bytes, bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::{FlowId, WireFormat};

    fn pkt() -> Packet {
        WireFormat::default().data_packet(
            FlowId {
                sender: 0,
                thread: 0,
            },
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn fifo_order_and_occupancy() {
        let mut b = InputBuffer::new(1 << 20);
        let mut p1 = pkt();
        p1.seq = 1;
        let mut p2 = pkt();
        p2.seq = 2;
        assert!(b.enqueue(SimTime::ZERO, p1));
        assert!(b.enqueue(SimTime::ZERO, p2));
        assert_eq!(b.occupancy_packets(), 2);
        assert_eq!(b.occupancy_bytes(), 2 * 4452);
        assert_eq!(b.dequeue().unwrap().packet.seq, 1);
        assert_eq!(b.dequeue().unwrap().packet.seq, 2);
        assert!(b.dequeue().is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn tail_drop_when_full() {
        // Capacity for exactly 2 packets.
        let mut b = InputBuffer::new(9000);
        assert!(b.enqueue(SimTime::ZERO, pkt()));
        assert!(b.enqueue(SimTime::ZERO, pkt()));
        assert!(!b.enqueue(SimTime::ZERO, pkt()));
        assert_eq!(b.drops(), 1);
        assert_eq!(b.dropped_bytes(), 4452);
        assert_eq!(b.enqueued(), 2);
        // Draining one admits one more.
        b.dequeue();
        assert!(b.enqueue(SimTime::ZERO, pkt()));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut b = InputBuffer::new(1 << 20);
        b.enqueue(SimTime::ZERO, pkt());
        b.enqueue(SimTime::ZERO, pkt());
        b.dequeue();
        b.dequeue();
        assert_eq!(b.peak_bytes(), 2 * 4452);
        assert_eq!(b.occupancy_bytes(), 0);
    }

    #[test]
    fn head_delay_measures_waiting_time() {
        let mut b = InputBuffer::new(1 << 20);
        b.enqueue(SimTime::from_micros(10), pkt());
        assert_eq!(
            b.head_delay(SimTime::from_micros(35)),
            SimDuration::from_micros(25)
        );
        b.dequeue();
        assert_eq!(b.head_delay(SimTime::from_micros(99)), SimDuration::ZERO);
    }

    #[test]
    fn drain_time_matches_paper_arithmetic() {
        // A full 1 MiB buffer at 88.8 Gbps wire rate drains in ~94 us; the
        // paper rounds to "less than 90 us of queueing when the NIC moves
        // >= 88.8 Gbps" (they use 1 MB = 1e6 bytes: 1e6*8/88.8e9 = 90.1 us).
        let mut b = InputBuffer::new(1_000_000);
        // Fill with ~1 MB of packets.
        let mut n = 0;
        while b.enqueue(SimTime::ZERO, pkt()) {
            n += 1;
        }
        assert!(n > 200);
        let t = b.drain_time(88.8e9 / 8.0);
        let us = t.as_micros_f64();
        assert!((85.0..91.0).contains(&us), "drain {us} us should be ~90");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use hostcc_fabric::{FlowId, WireFormat};

    fn pkt() -> Packet {
        WireFormat::default().data_packet(
            FlowId {
                sender: 0,
                thread: 0,
            },
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn dropped_bytes_accumulate() {
        let mut b = InputBuffer::new(4452);
        assert!(b.enqueue(SimTime::ZERO, pkt()));
        for _ in 0..3 {
            assert!(!b.enqueue(SimTime::ZERO, pkt()));
        }
        assert_eq!(b.drops(), 3);
        assert_eq!(b.dropped_bytes(), 3 * 4452);
    }

    #[test]
    fn reset_peak_restarts_from_current_occupancy() {
        let mut b = InputBuffer::new(1 << 20);
        for _ in 0..10 {
            b.enqueue(SimTime::ZERO, pkt());
        }
        for _ in 0..8 {
            b.dequeue();
        }
        b.reset_peak();
        assert_eq!(b.peak_bytes(), 2 * 4452, "peak restarts at current level");
        b.enqueue(SimTime::ZERO, pkt());
        assert_eq!(b.peak_bytes(), 3 * 4452);
    }

    #[test]
    fn exact_fit_is_accepted() {
        // Capacity exactly one wire packet: boundary must admit it.
        let mut b = InputBuffer::new(4452);
        assert!(b.enqueue(SimTime::ZERO, pkt()));
        assert_eq!(b.occupancy_bytes(), 4452);
        assert!(!b.enqueue(SimTime::ZERO, pkt()));
    }
}
