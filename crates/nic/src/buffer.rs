//! The NIC input buffer.
//!
//! A small on-NIC SRAM (≈1–2 MiB on commodity 100 Gbps NICs) where every
//! arriving packet waits for its DMA to the host. This queue is where host
//! congestion becomes visible: when the NIC-to-memory path slows down
//! (IOTLB walks, memory-bus contention, exhausted PCIe credits) the buffer
//! fills within tens of microseconds and packets tail-drop. The paper's key
//! arithmetic: a 1 MiB buffer drains in < 90 µs whenever the NIC can move
//! ≥ 88.8 Gbps to the host, so a congestion controller watching for a
//! 100 µs host-delay target never sees the queue before it overflows.
//!
//! The queue stores [`PacketRef`] handles, not packets: the packet bytes
//! live in the shared `PacketStore` slab and only an 8-byte handle (plus
//! the wire size needed for byte accounting and the arrival timestamp)
//! transits the buffer. On a tail-drop the caller still owns the handle
//! and is responsible for freeing the slab entry.

use hostcc_fabric::PacketRef;
use hostcc_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A packet waiting in the input buffer: a slab handle plus the two
/// fields the buffer itself needs (byte accounting, host-delay clock).
#[derive(Debug, Clone, Copy)]
pub struct QueuedPacket {
    /// Handle to the packet in the `PacketStore`.
    pub pkt: PacketRef,
    /// Wire size of the packet, for occupancy accounting.
    pub wire_bytes: u32,
    /// When it arrived at the NIC (starts the host-delay clock).
    pub arrived: SimTime,
}

/// Byte-bounded tail-drop FIFO.
#[derive(Debug)]
pub struct InputBuffer {
    capacity_bytes: u64,
    queued_bytes: u64,
    queue: VecDeque<QueuedPacket>,
    drops: u64,
    dropped_bytes: u64,
    enqueued: u64,
    peak_bytes: u64,
}

impl InputBuffer {
    /// A buffer holding at most `capacity_bytes` of packet data.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "zero-capacity buffer");
        // The queue can never hold more packets than fit in the byte
        // budget; 1 KiB is a conservative lower bound on wire size (data
        // packets are ~4.4 KiB), so this pre-size makes enqueue
        // allocation-free for the life of the buffer.
        let max_entries = (capacity_bytes / 1024 + 1) as usize;
        InputBuffer {
            capacity_bytes,
            queued_bytes: 0,
            queue: VecDeque::with_capacity(max_entries),
            drops: 0,
            dropped_bytes: 0,
            enqueued: 0,
            peak_bytes: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Offer an arriving packet of `wire_bytes`. Returns `false` if it was
    /// tail-dropped — the caller keeps ownership of the handle and must
    /// free the slab entry.
    pub fn enqueue(&mut self, now: SimTime, pkt: PacketRef, wire_bytes: u32) -> bool {
        let bytes = wire_bytes as u64;
        if self.queued_bytes + bytes > self.capacity_bytes {
            self.drops += 1;
            self.dropped_bytes += bytes;
            return false;
        }
        self.queued_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.queued_bytes);
        self.enqueued += 1;
        self.queue.push_back(QueuedPacket {
            pkt,
            wire_bytes,
            arrived: now,
        });
        true
    }

    /// Offer a run of packets arriving at one timestamp; `on_drop` is
    /// called with each tail-dropped handle (the slab entry must be
    /// freed by the callback). Returns the number admitted.
    ///
    /// Behaviourally identical to calling [`enqueue`](Self::enqueue) per
    /// packet: admission is decided packet by packet against the running
    /// occupancy. The only difference is bookkeeping — occupancy can only
    /// grow within a run, so the high-water mark is settled once at the
    /// end instead of per packet.
    pub fn enqueue_run(
        &mut self,
        now: SimTime,
        arrivals: &[(PacketRef, u32)],
        mut on_drop: impl FnMut(PacketRef),
    ) -> u32 {
        let mut admitted = 0;
        for &(pkt, wire_bytes) in arrivals {
            let bytes = wire_bytes as u64;
            if self.queued_bytes + bytes > self.capacity_bytes {
                self.drops += 1;
                self.dropped_bytes += bytes;
                on_drop(pkt);
                continue;
            }
            self.queued_bytes += bytes;
            self.enqueued += 1;
            admitted += 1;
            self.queue.push_back(QueuedPacket {
                pkt,
                wire_bytes,
                arrived: now,
            });
        }
        self.peak_bytes = self.peak_bytes.max(self.queued_bytes);
        admitted
    }

    /// Take the packet at the head of the queue (next to DMA).
    pub fn dequeue(&mut self) -> Option<QueuedPacket> {
        let qp = self.queue.pop_front()?;
        self.queued_bytes -= qp.wire_bytes as u64;
        Some(qp)
    }

    /// Peek at the head without removing it.
    pub fn peek(&self) -> Option<&QueuedPacket> {
        self.queue.front()
    }

    /// Bytes currently queued.
    pub fn occupancy_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently queued.
    pub fn occupancy_packets(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer holds no packets.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Highest occupancy observed, bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Restart peak tracking from the current occupancy (warm-up discard).
    pub fn reset_peak(&mut self) {
        self.peak_bytes = self.queued_bytes;
    }

    /// Packets tail-dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Bytes tail-dropped so far.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Packets accepted so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Queueing delay the head packet has suffered so far.
    pub fn head_delay(&self, now: SimTime) -> SimDuration {
        self.queue
            .front()
            .map(|qp| now.saturating_since(qp.arrived))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Time to drain the current occupancy at `bytes_per_sec` — the
    /// buffer-vs-target-delay arithmetic from §3.1.
    pub fn drain_time(&self, bytes_per_sec: f64) -> SimDuration {
        SimDuration::for_bytes(self.queued_bytes, bytes_per_sec)
    }

    /// Serialize the buffer: capacity, the FIFO contents (slab handles +
    /// byte accounting + arrival clocks) and the drop counters.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.capacity_bytes);
        w.u64(self.queued_bytes);
        w.usize(self.queue.len());
        for qp in &self.queue {
            qp.pkt.save_state(w);
            w.u32(qp.wire_bytes);
            w.time(qp.arrived);
        }
        w.u64(self.drops);
        w.u64(self.dropped_bytes);
        w.u64(self.enqueued);
        w.u64(self.peak_bytes);
    }

    /// Rebuild a buffer from [`save_state`](Self::save_state) output,
    /// revalidating the occupancy invariant (queued bytes == sum of queued
    /// packets' wire sizes, within capacity).
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let capacity_bytes = r.u64()?;
        if capacity_bytes == 0 {
            return Err(SnapError::Corrupt("zero-capacity input buffer"));
        }
        let queued_bytes = r.u64()?;
        let n = r.len(20)?;
        let max_entries = (capacity_bytes / 1024 + 1) as usize;
        let mut queue = VecDeque::with_capacity(max_entries.max(n));
        let mut sum = 0u64;
        for _ in 0..n {
            let pkt = PacketRef::load_state(r)?;
            let wire_bytes = r.u32()?;
            let arrived = r.time()?;
            sum = sum
                .checked_add(wire_bytes as u64)
                .ok_or(SnapError::Corrupt("input-buffer bytes overflow"))?;
            queue.push_back(QueuedPacket {
                pkt,
                wire_bytes,
                arrived,
            });
        }
        if sum != queued_bytes || queued_bytes > capacity_bytes {
            return Err(SnapError::Corrupt("input-buffer occupancy mismatch"));
        }
        let drops = r.u64()?;
        let dropped_bytes = r.u64()?;
        let enqueued = r.u64()?;
        let peak_bytes = r.u64()?;
        if peak_bytes < queued_bytes {
            return Err(SnapError::Corrupt("input-buffer peak below occupancy"));
        }
        Ok(InputBuffer {
            capacity_bytes,
            queued_bytes,
            queue,
            drops,
            dropped_bytes,
            enqueued,
            peak_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::{FlowId, Packet, PacketStore, WireFormat};

    fn pkt(seq: u64) -> Packet {
        WireFormat::default().data_packet(
            FlowId {
                sender: 0,
                thread: 0,
            },
            seq,
            SimTime::ZERO,
        )
    }

    fn put(store: &mut PacketStore, b: &mut InputBuffer, now: SimTime, seq: u64) -> bool {
        let p = pkt(seq);
        let wire = p.wire_bytes;
        let r = store.alloc(p);
        let ok = b.enqueue(now, r, wire);
        if !ok {
            store.free(r);
        }
        ok
    }

    #[test]
    fn fifo_order_and_occupancy() {
        let mut store = PacketStore::new();
        let mut b = InputBuffer::new(1 << 20);
        assert!(put(&mut store, &mut b, SimTime::ZERO, 1));
        assert!(put(&mut store, &mut b, SimTime::ZERO, 2));
        assert_eq!(b.occupancy_packets(), 2);
        assert_eq!(b.occupancy_bytes(), 2 * 4452);
        assert_eq!(store.get(b.dequeue().unwrap().pkt).seq, 1);
        assert_eq!(store.get(b.dequeue().unwrap().pkt).seq, 2);
        assert!(b.dequeue().is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn tail_drop_when_full() {
        // Capacity for exactly 2 packets.
        let mut store = PacketStore::new();
        let mut b = InputBuffer::new(9000);
        assert!(put(&mut store, &mut b, SimTime::ZERO, 0));
        assert!(put(&mut store, &mut b, SimTime::ZERO, 1));
        assert!(!put(&mut store, &mut b, SimTime::ZERO, 2));
        assert_eq!(b.drops(), 1);
        assert_eq!(b.dropped_bytes(), 4452);
        assert_eq!(b.enqueued(), 2);
        assert_eq!(store.live(), 2, "dropped packet's slab entry was freed");
        // Draining one admits one more.
        store.free(b.dequeue().unwrap().pkt);
        assert!(put(&mut store, &mut b, SimTime::ZERO, 3));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut store = PacketStore::new();
        let mut b = InputBuffer::new(1 << 20);
        put(&mut store, &mut b, SimTime::ZERO, 0);
        put(&mut store, &mut b, SimTime::ZERO, 1);
        b.dequeue();
        b.dequeue();
        assert_eq!(b.peak_bytes(), 2 * 4452);
        assert_eq!(b.occupancy_bytes(), 0);
    }

    #[test]
    fn head_delay_measures_waiting_time() {
        let mut store = PacketStore::new();
        let mut b = InputBuffer::new(1 << 20);
        put(&mut store, &mut b, SimTime::from_micros(10), 0);
        assert_eq!(
            b.head_delay(SimTime::from_micros(35)),
            SimDuration::from_micros(25)
        );
        b.dequeue();
        assert_eq!(b.head_delay(SimTime::from_micros(99)), SimDuration::ZERO);
    }

    #[test]
    fn drain_time_matches_paper_arithmetic() {
        // A full 1 MiB buffer at 88.8 Gbps wire rate drains in ~94 us; the
        // paper rounds to "less than 90 us of queueing when the NIC moves
        // >= 88.8 Gbps" (they use 1 MB = 1e6 bytes: 1e6*8/88.8e9 = 90.1 us).
        let mut store = PacketStore::new();
        let mut b = InputBuffer::new(1_000_000);
        // Fill with ~1 MB of packets.
        let mut n = 0;
        while put(&mut store, &mut b, SimTime::ZERO, n) {
            n += 1;
        }
        assert!(n > 200);
        let t = b.drain_time(88.8e9 / 8.0);
        let us = t.as_micros_f64();
        assert!((85.0..91.0).contains(&us), "drain {us} us should be ~90");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use hostcc_fabric::{FlowId, Packet, PacketStore, WireFormat};

    fn pkt() -> Packet {
        WireFormat::default().data_packet(
            FlowId {
                sender: 0,
                thread: 0,
            },
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn dropped_bytes_accumulate() {
        let mut store = PacketStore::new();
        let mut b = InputBuffer::new(4452);
        let first = store.alloc(pkt());
        assert!(b.enqueue(SimTime::ZERO, first, 4452));
        for _ in 0..3 {
            let r = store.alloc(pkt());
            assert!(!b.enqueue(SimTime::ZERO, r, 4452));
            store.free(r);
        }
        assert_eq!(b.drops(), 3);
        assert_eq!(b.dropped_bytes(), 3 * 4452);
    }

    #[test]
    fn reset_peak_restarts_from_current_occupancy() {
        let mut store = PacketStore::new();
        let mut b = InputBuffer::new(1 << 20);
        for _ in 0..10 {
            b.enqueue(SimTime::ZERO, store.alloc(pkt()), 4452);
        }
        for _ in 0..8 {
            store.free(b.dequeue().unwrap().pkt);
        }
        b.reset_peak();
        assert_eq!(b.peak_bytes(), 2 * 4452, "peak restarts at current level");
        b.enqueue(SimTime::ZERO, store.alloc(pkt()), 4452);
        assert_eq!(b.peak_bytes(), 3 * 4452);
    }

    #[test]
    fn exact_fit_is_accepted() {
        // Capacity exactly one wire packet: boundary must admit it.
        let mut store = PacketStore::new();
        let mut b = InputBuffer::new(4452);
        assert!(b.enqueue(SimTime::ZERO, store.alloc(pkt()), 4452));
        assert_eq!(b.occupancy_bytes(), 4452);
        let r = store.alloc(pkt());
        assert!(!b.enqueue(SimTime::ZERO, r, 4452));
    }

    #[test]
    fn enqueue_run_matches_per_packet_enqueue() {
        // Same arrivals through the run path and the scalar path: same
        // admissions, same drops, same FIFO contents and counters.
        let mut store = PacketStore::new();
        let mut run_buf = InputBuffer::new(9000);
        let mut seq_buf = InputBuffer::new(9000);
        let arrivals: Vec<(PacketRef, u32)> = (0..4).map(|_| (store.alloc(pkt()), 4452)).collect();
        let mut run_dropped = Vec::new();
        let admitted = run_buf.enqueue_run(SimTime::from_micros(3), &arrivals, |p| {
            run_dropped.push(p);
        });
        let mut seq_admitted = 0;
        let mut seq_dropped = Vec::new();
        for &(p, wire) in &arrivals {
            if seq_buf.enqueue(SimTime::from_micros(3), p, wire) {
                seq_admitted += 1;
            } else {
                seq_dropped.push(p);
            }
        }
        assert_eq!(admitted, seq_admitted);
        assert_eq!(admitted, 2, "9000 B capacity fits two 4452 B packets");
        assert_eq!(run_dropped, seq_dropped);
        assert_eq!(run_buf.drops(), seq_buf.drops());
        assert_eq!(run_buf.dropped_bytes(), seq_buf.dropped_bytes());
        assert_eq!(run_buf.enqueued(), seq_buf.enqueued());
        assert_eq!(run_buf.occupancy_bytes(), seq_buf.occupancy_bytes());
        assert_eq!(run_buf.peak_bytes(), seq_buf.peak_bytes());
        loop {
            let (a, b) = (run_buf.dequeue(), seq_buf.dequeue());
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.pkt, y.pkt);
                    assert_eq!(x.wire_bytes, y.wire_bytes);
                    assert_eq!(x.arrived, y.arrived);
                }
                _ => panic!("queues diverged in length"),
            }
        }
    }

    #[test]
    fn queue_is_presized_for_capacity() {
        let b = InputBuffer::new(2 << 20);
        assert!(b.queue.capacity() >= ((2 << 20) / 1024) as usize);
    }
}
