//! Rx descriptor rings and completion queues.
//!
//! Step 2 of the paper's datapath: the NIC fetches an Rx descriptor — which
//! carries the (virtual, when the IOMMU is on) buffer address — for every
//! arriving packet, and after DMA-ing the payload writes a completion
//! entry. Both structures live in host memory mapped with ordinary 4 KiB
//! pages, so descriptor fetches and completion writes contribute their own
//! IOTLB lookups: this is how a single packet can cost up to six misses
//! (payload + descriptor + completion + ACK, §3.1 footnote 3).

use hostcc_mem::Iova;
use std::collections::VecDeque;

/// An Rx descriptor: points at a posted receive buffer.
#[derive(Debug, Clone, Copy)]
pub struct RxDescriptor {
    /// Ring slot the descriptor occupies (determines its own address).
    pub index: u32,
    /// IOVA of the receive buffer the payload should be DMA-ed to.
    pub buffer: Iova,
}

/// A descriptor ring in host memory.
///
/// The driver replenishes descriptors (posting free buffers); the NIC
/// consumes one per packet. An empty ring means an arriving packet has
/// nowhere to go — accounted as a descriptor-starvation drop.
#[derive(Debug)]
pub struct RxRing {
    base: Iova,
    entries: u32,
    desc_bytes: u64,
    queue: VecDeque<RxDescriptor>,
    head: u32,
    posted: u64,
    consumed: u64,
    empty_events: u64,
}

impl RxRing {
    /// A ring of `entries` descriptors of `desc_bytes` each, resident at
    /// `base` in the (4 KiB-mapped) control region.
    pub fn new(base: Iova, entries: u32, desc_bytes: u64) -> Self {
        assert!(entries > 0, "empty ring");
        RxRing {
            base,
            entries,
            desc_bytes,
            queue: VecDeque::with_capacity(entries as usize),
            head: 0,
            posted: 0,
            consumed: 0,
            empty_events: 0,
        }
    }

    /// Number of descriptors currently posted and unconsumed.
    pub fn available(&self) -> u32 {
        self.queue.len() as u32
    }

    /// Ring capacity.
    pub fn capacity(&self) -> u32 {
        self.entries
    }

    /// Free slots the driver could still post into.
    pub fn free_slots(&self) -> u32 {
        self.entries - self.available()
    }

    /// Driver path: post a receive buffer. Returns `false` if the ring is
    /// already full.
    pub fn post(&mut self, buffer: Iova) -> bool {
        if self.queue.len() as u32 >= self.entries {
            return false;
        }
        let index = self.head;
        self.head = (self.head + 1) % self.entries;
        self.queue.push_back(RxDescriptor { index, buffer });
        self.posted += 1;
        true
    }

    /// NIC path: consume the next descriptor for an arriving packet.
    pub fn take(&mut self) -> Option<RxDescriptor> {
        match self.queue.pop_front() {
            Some(d) => {
                self.consumed += 1;
                Some(d)
            }
            None => {
                self.empty_events += 1;
                None
            }
        }
    }

    /// Host-memory address of the descriptor in `slot` (what the NIC's
    /// descriptor-fetch DMA reads).
    pub fn descriptor_iova(&self, slot: u32) -> Iova {
        self.base
            .add(slot as u64 % self.entries as u64 * self.desc_bytes)
    }

    /// Lifetime (posted, consumed, empty-on-take) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.posted, self.consumed, self.empty_events)
    }

    /// Serialize the ring: geometry, posted descriptors in FIFO order,
    /// head cursor and lifetime counters.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.base.0);
        w.u32(self.entries);
        w.u64(self.desc_bytes);
        w.usize(self.queue.len());
        for d in &self.queue {
            w.u32(d.index);
            w.u64(d.buffer.0);
        }
        w.u32(self.head);
        w.u64(self.posted);
        w.u64(self.consumed);
        w.u64(self.empty_events);
    }

    /// Rebuild a ring from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let base = Iova(r.u64()?);
        let entries = r.u32()?;
        if entries == 0 {
            return Err(SnapError::Corrupt("empty descriptor ring"));
        }
        let desc_bytes = r.u64()?;
        let n = r.len(12)?;
        if n > entries as usize {
            return Err(SnapError::Corrupt("descriptor ring overfull"));
        }
        let mut queue = VecDeque::with_capacity(entries as usize);
        for _ in 0..n {
            let index = r.u32()?;
            if index >= entries {
                return Err(SnapError::Corrupt("descriptor slot out of range"));
            }
            queue.push_back(RxDescriptor {
                index,
                buffer: Iova(r.u64()?),
            });
        }
        let head = r.u32()?;
        if head >= entries {
            return Err(SnapError::Corrupt("ring head out of range"));
        }
        Ok(RxRing {
            base,
            entries,
            desc_bytes,
            queue,
            head,
            posted: r.u64()?,
            consumed: r.u64()?,
            empty_events: r.u64()?,
        })
    }
}

/// A completion queue in host memory: the NIC writes one entry per
/// received packet (step 7 precursor: the CQE is what packet-processing
/// threads poll).
#[derive(Debug)]
pub struct CompletionRing {
    base: Iova,
    entries: u32,
    cqe_bytes: u64,
    head: u32,
    written: u64,
}

impl CompletionRing {
    /// A CQ of `entries` entries of `cqe_bytes` each at `base`.
    pub fn new(base: Iova, entries: u32, cqe_bytes: u64) -> Self {
        assert!(entries > 0, "empty CQ");
        CompletionRing {
            base,
            entries,
            cqe_bytes,
            head: 0,
            written: 0,
        }
    }

    /// Record a completion; returns the IOVA of the entry the NIC DMA-writes.
    pub fn push(&mut self) -> Iova {
        let iova = self.base.add(self.head as u64 * self.cqe_bytes);
        self.head = (self.head + 1) % self.entries;
        self.written += 1;
        iova
    }

    /// Completions written over the lifetime.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Serialize the completion queue (geometry + cursor + counter).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.base.0);
        w.u32(self.entries);
        w.u64(self.cqe_bytes);
        w.u32(self.head);
        w.u64(self.written);
    }

    /// Rebuild a completion queue from [`save_state`](Self::save_state)
    /// output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let base = Iova(r.u64()?);
        let entries = r.u32()?;
        if entries == 0 {
            return Err(SnapError::Corrupt("empty completion queue"));
        }
        let cqe_bytes = r.u64()?;
        let head = r.u32()?;
        if head >= entries {
            return Err(SnapError::Corrupt("completion head out of range"));
        }
        Ok(CompletionRing {
            base,
            entries,
            cqe_bytes,
            head,
            written: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_take_roundtrip() {
        let mut r = RxRing::new(Iova(0x1000), 4, 32);
        assert!(r.post(Iova(0xA000)));
        assert!(r.post(Iova(0xB000)));
        assert_eq!(r.available(), 2);
        let d = r.take().unwrap();
        assert_eq!(d.buffer, Iova(0xA000));
        assert_eq!(d.index, 0);
        let d2 = r.take().unwrap();
        assert_eq!(d2.buffer, Iova(0xB000));
        assert_eq!(d2.index, 1);
        assert_eq!(r.stats(), (2, 2, 0));
    }

    #[test]
    fn empty_ring_counts_starvation() {
        let mut r = RxRing::new(Iova(0), 4, 32);
        assert!(r.take().is_none());
        assert!(r.take().is_none());
        assert_eq!(r.stats().2, 2);
    }

    #[test]
    fn full_ring_rejects_posts() {
        let mut r = RxRing::new(Iova(0), 2, 32);
        assert!(r.post(Iova(0x1000)));
        assert!(r.post(Iova(0x2000)));
        assert!(!r.post(Iova(0x3000)));
        assert_eq!(r.free_slots(), 0);
        r.take();
        assert!(r.post(Iova(0x3000)));
    }

    #[test]
    fn descriptor_addresses_wrap_within_ring() {
        let r = RxRing::new(Iova(0x1000), 4, 32);
        assert_eq!(r.descriptor_iova(0), Iova(0x1000));
        assert_eq!(r.descriptor_iova(3), Iova(0x1000 + 96));
        assert_eq!(r.descriptor_iova(4), Iova(0x1000)); // wraps
    }

    #[test]
    fn completion_ring_wraps_and_counts() {
        let mut c = CompletionRing::new(Iova(0x2000), 2, 64);
        assert_eq!(c.push(), Iova(0x2000));
        assert_eq!(c.push(), Iova(0x2040));
        assert_eq!(c.push(), Iova(0x2000));
        assert_eq!(c.written(), 3);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn sustained_post_take_cycles_indices() {
        let mut r = RxRing::new(Iova(0x1000), 4, 32);
        let mut indices = Vec::new();
        for i in 0..12u64 {
            assert!(r.post(Iova(0x10_0000 + i * 0x1000)));
            let d = r.take().unwrap();
            indices.push(d.index);
        }
        // Indices wrap modulo the ring size.
        assert_eq!(indices, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
        let (posted, consumed, empty) = r.stats();
        assert_eq!(posted, 12);
        assert_eq!(consumed, 12);
        assert_eq!(empty, 0);
    }

    #[test]
    fn take_preserves_post_order_under_partial_fill() {
        let mut r = RxRing::new(Iova(0), 8, 32);
        r.post(Iova(0xA000));
        r.post(Iova(0xB000));
        assert_eq!(r.take().unwrap().buffer, Iova(0xA000));
        r.post(Iova(0xC000));
        assert_eq!(r.take().unwrap().buffer, Iova(0xB000));
        assert_eq!(r.take().unwrap().buffer, Iova(0xC000));
    }
}
