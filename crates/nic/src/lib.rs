//! # hostcc-nic
//!
//! The receive-side NIC model: the shared input SRAM where host-congestion
//! drops occur, Rx descriptor rings + completion queues (whose 4 KiB-mapped
//! control structures add their own IOTLB pressure), and delivery/drop
//! counters. The credit/translation/memory pipeline that drains the NIC is
//! composed in `hostcc-host`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod counters;
mod nic;
mod ring;

pub use buffer::{InputBuffer, QueuedPacket};
pub use nic::{Nic, NicConfig, NicStats, RxQueue};
pub use ring::{CompletionRing, RxDescriptor, RxRing};
