//! The NIC's contribution to the workspace counter registry.

use crate::nic::Nic;
use hostcc_trace::{CounterRegistry, CounterSource};

impl CounterSource for Nic {
    fn export_counters(&self, reg: &mut CounterRegistry) {
        reg.set("nic.delivered_packets", self.stats.delivered_packets);
        reg.set(
            "nic.delivered_payload_bytes",
            self.stats.delivered_payload_bytes,
        );
        reg.set("nic.drops.buffer_full", self.stats.drops_buffer_full);
        reg.set("nic.drops.no_descriptor", self.stats.drops_no_descriptor);
        reg.set("nic.descriptor_starvation", self.descriptor_starvation());
        reg.set("nic.buffer.peak_bytes", self.input.peak_bytes());
        reg.set("nic.buffer.occupancy_bytes", self.input.occupancy_bytes());
        reg.set("nic.buffer.enqueued", self.input.enqueued());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::NicConfig;

    #[test]
    fn nic_exports_delivery_and_drop_counters() {
        let nic = Nic::new(NicConfig::default());
        let mut reg = CounterRegistry::new();
        reg.collect(&nic);
        assert_eq!(reg.lifetime("nic.delivered_packets"), 0);
        assert_eq!(reg.lifetime("nic.drops.buffer_full"), 0);
        assert!(reg.len() >= 8);
    }
}
