//! The NIC device: input buffer + per-thread Rx queues + counters.
//!
//! The NIC itself is dumb on purpose — it queues arriving packets, consumes
//! descriptors and exposes counters. The *pipeline* that drains it (PCIe
//! credits → IOMMU translation → memory write → credit return) lives in
//! `hostcc-host`, where those substrates are composed; splitting it this
//! way keeps each model independently testable.

use crate::buffer::InputBuffer;
use crate::ring::{CompletionRing, RxRing};
use hostcc_mem::Iova;

/// NIC hardware parameters.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Input SRAM capacity in bytes (commodity 100 G NICs: 1–2 MiB; the
    /// paper's testbed behaves like ~1 MiB).
    pub input_buffer_bytes: u64,
    /// Rx descriptor ring entries per queue.
    pub ring_entries: u32,
    /// Bytes per Rx descriptor (what the descriptor-fetch DMA reads).
    pub desc_bytes: u64,
    /// Bytes per completion-queue entry (what the CQE DMA writes).
    pub cqe_bytes: u64,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            input_buffer_bytes: 1 << 20,
            ring_entries: 1024,
            desc_bytes: 32,
            cqe_bytes: 64,
        }
    }
}

/// One Rx queue: a descriptor ring and its completion queue, both living
/// in a 4 KiB-mapped control region owned by one receiver thread.
#[derive(Debug)]
pub struct RxQueue {
    /// Descriptor ring.
    pub ring: RxRing,
    /// Completion queue.
    pub cq: CompletionRing,
    /// IOVA the thread's outbound ACK packets are read from (one small
    /// buffer, reused; contributes the "ACK packet" IOTLB access).
    pub ack_buffer: Iova,
}

/// Delivery/drop counters for the whole NIC.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Packets successfully DMA-ed to host memory.
    pub delivered_packets: u64,
    /// Payload bytes successfully DMA-ed.
    pub delivered_payload_bytes: u64,
    /// Packets dropped because the input buffer was full.
    pub drops_buffer_full: u64,
    /// Packets dropped because no Rx descriptor was available.
    pub drops_no_descriptor: u64,
}

impl NicStats {
    /// All drops regardless of cause.
    pub fn total_drops(&self) -> u64 {
        self.drops_buffer_full + self.drops_no_descriptor
    }
}

/// The receive-side NIC.
#[derive(Debug)]
pub struct Nic {
    config: NicConfig,
    /// Shared input SRAM (all queues drop here — the isolation-violation
    /// surface the paper calls out).
    pub input: InputBuffer,
    /// Per-receiver-thread queues.
    pub queues: Vec<RxQueue>,
    /// Delivery/drop counters.
    pub stats: NicStats,
}

impl Nic {
    /// A NIC with no queues yet (add one per receiver thread).
    pub fn new(config: NicConfig) -> Self {
        let input = InputBuffer::new(config.input_buffer_bytes);
        Nic {
            config,
            input,
            queues: Vec::new(),
            stats: NicStats::default(),
        }
    }

    /// The hardware parameters.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Add an Rx queue whose ring/CQ/ACK structures live at the given
    /// control-region IOVAs. Returns the queue index.
    pub fn add_queue(&mut self, ring_base: Iova, cq_base: Iova, ack_buffer: Iova) -> usize {
        let q = RxQueue {
            ring: RxRing::new(ring_base, self.config.ring_entries, self.config.desc_bytes),
            cq: CompletionRing::new(cq_base, self.config.ring_entries, self.config.cqe_bytes),
            ack_buffer,
        };
        self.queues.push(q);
        self.queues.len() - 1
    }

    /// Aggregate descriptor-ring starvation events across queues.
    pub fn descriptor_starvation(&self) -> u64 {
        self.queues.iter().map(|q| q.ring.stats().2).sum()
    }

    /// Serialize the NIC's evolving state: input buffer, every queue's
    /// ring/CQ state, and the delivery counters. The config is not
    /// written — restore targets a NIC rebuilt from the same config.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        self.input.save_state(w);
        w.usize(self.queues.len());
        for q in &self.queues {
            q.ring.save_state(w);
            q.cq.save_state(w);
            w.u64(q.ack_buffer.0);
        }
        w.u64(self.stats.delivered_packets);
        w.u64(self.stats.delivered_payload_bytes);
        w.u64(self.stats.drops_buffer_full);
        w.u64(self.stats.drops_no_descriptor);
    }

    /// Overwrite this NIC's evolving state from
    /// [`save_state`](Self::save_state) output. `self` must have been
    /// rebuilt from the same config (same queue count); a mismatch is a
    /// typed error, and on any error `self` is left untouched.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let input = crate::buffer::InputBuffer::load_state(r)?;
        let n = r.len(8)?;
        if n != self.queues.len() {
            return Err(SnapError::Corrupt("nic queue count mismatch"));
        }
        let mut queues = Vec::with_capacity(n);
        for _ in 0..n {
            queues.push(RxQueue {
                ring: RxRing::load_state(r)?,
                cq: CompletionRing::load_state(r)?,
                ack_buffer: Iova(r.u64()?),
            });
        }
        let stats = NicStats {
            delivered_packets: r.u64()?,
            delivered_payload_bytes: r.u64()?,
            drops_buffer_full: r.u64()?,
            drops_no_descriptor: r.u64()?,
        };
        self.input = input;
        self.queues = queues;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_builds_queues() {
        let mut nic = Nic::new(NicConfig::default());
        let q0 = nic.add_queue(Iova(0x1000), Iova(0x2000), Iova(0x3000));
        let q1 = nic.add_queue(Iova(0x4000), Iova(0x5000), Iova(0x6000));
        assert_eq!(q0, 0);
        assert_eq!(q1, 1);
        assert_eq!(nic.queues.len(), 2);
        assert_eq!(nic.queues[0].ring.capacity(), 1024);
        assert_eq!(nic.queues[1].ack_buffer, Iova(0x6000));
    }

    #[test]
    fn stats_roll_up() {
        let s = NicStats {
            drops_buffer_full: 3,
            drops_no_descriptor: 2,
            ..NicStats::default()
        };
        assert_eq!(s.total_drops(), 5);
    }

    #[test]
    fn starvation_aggregates_across_queues() {
        let mut nic = Nic::new(NicConfig::default());
        nic.add_queue(Iova(0x1000), Iova(0x2000), Iova(0x3000));
        nic.add_queue(Iova(0x4000), Iova(0x5000), Iova(0x6000));
        nic.queues[0].ring.take();
        nic.queues[1].ring.take();
        nic.queues[1].ring.take();
        assert_eq!(nic.descriptor_starvation(), 3);
    }
}
