//! Generational slab storage for hot-path payloads.
//!
//! The dispatch loop moves ~10^7 events per second, and before this module
//! existed every one of them carried its payload (`Packet`, DMA job) *by
//! value* through the event queue — ~100+ bytes copied into the wheel's
//! node arena, through the NIC input buffer and back out. A slab turns
//! each of those copies into an 8-byte handle: payloads are written once
//! at allocation and every queue in the datapath shuttles `SlabRef`s
//! instead.
//!
//! The slab is *generational*: each slot carries a generation counter that
//! advances on every allocate and every free (odd = live, even = free), and
//! a handle embeds the generation it was minted with. A stale handle — one
//! whose slot has since been freed or recycled — can therefore be detected
//! instead of silently reading another packet's bytes. Lookups check the
//! generation in debug builds; `free` checks it in every build profile,
//! because a double-free would push the same slot index onto the free list
//! twice and alias two live packets (the one failure mode that corrupts
//! the simulation rather than crashing it).
//!
//! Allocation behaviour: the slab grows (amortised `Vec` growth) only
//! until the peak live population is reached; after that every
//! alloc/free pair recycles a slot and touches the heap zero times. This
//! is what makes the steady-state dispatch loop allocation-free.

use crate::packet::Packet;
use std::marker::PhantomData;

/// A handle into a [`GenSlab`]: slot index plus the generation the slot
/// had when the value was allocated. 8 bytes, `Copy`, and typed by the
/// stored value so a packet handle cannot be mistaken for (say) a DMA-job
/// handle.
pub struct SlabRef<T> {
    idx: u32,
    gen: u32,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: derive would needlessly bound them on `T`.
impl<T> Clone for SlabRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlabRef<T> {}
impl<T> PartialEq for SlabRef<T> {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx && self.gen == other.gen
    }
}
impl<T> Eq for SlabRef<T> {}
impl<T> std::hash::Hash for SlabRef<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.idx.hash(state);
        self.gen.hash(state);
    }
}
impl<T> std::fmt::Debug for SlabRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SlabRef({}v{})", self.idx, self.gen)
    }
}

impl<T> SlabRef<T> {
    /// Slot index (diagnostics; does not identify a value across reuse).
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Generation the handle was minted with (odd for live handles).
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// Reassemble a handle from its `(index, generation)` parts.
    ///
    /// Exists for checkpoint restore, where handles embedded in serialized
    /// events must be rebuilt verbatim. A handle fabricated with the wrong
    /// parts is caught exactly like any stale handle: `free` panics on a
    /// generation mismatch, `is_live` reports false.
    pub fn from_parts(idx: u32, gen: u32) -> Self {
        SlabRef {
            idx,
            gen,
            _marker: PhantomData,
        }
    }

    /// Serialize the handle (index + generation) for a checkpoint.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u32(self.idx);
        w.u32(self.gen);
    }

    /// Rebuild a handle from [`save_state`](Self::save_state) output.
    /// Validity against a restored slab is checked by the slab itself.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        let idx = r.u32()?;
        let gen = r.u32()?;
        Ok(SlabRef::from_parts(idx, gen))
    }
}

#[derive(Debug)]
struct Slot<T> {
    /// Odd while the slot is live, even while it is free. Advances on
    /// every transition, so a handle is valid iff `handle.gen == slot.gen`.
    gen: u32,
    value: T,
}

/// A generational slab: stable `u32`-indexed storage with O(1)
/// allocate/free, slot recycling through a free list, and stale-handle
/// detection. Values must be `Copy` so freed slots need no destructor and
/// `free` can return the final value by copy.
#[derive(Debug)]
pub struct GenSlab<T: Copy> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: u32,
    peak_live: u32,
    allocs: u64,
    frees: u64,
}

impl<T: Copy> Default for GenSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> GenSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty slab with room for `cap` live values before any heap
    /// growth.
    pub fn with_capacity(cap: usize) -> Self {
        GenSlab {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
            peak_live: 0,
            allocs: 0,
            frees: 0,
        }
    }

    /// Store `value`, returning its handle.
    pub fn alloc(&mut self, value: T) -> SlabRef<T> {
        self.allocs += 1;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        let (idx, gen) = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.gen.is_multiple_of(2), "free-list slot marked live");
                slot.gen = slot.gen.wrapping_add(1);
                slot.value = value;
                (idx, slot.gen)
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("slab full");
                self.slots.push(Slot { gen: 1, value });
                (idx, 1)
            }
        };
        SlabRef {
            idx,
            gen,
            _marker: PhantomData,
        }
    }

    /// Release the value behind `r`, returning it. Panics on a stale or
    /// double-freed handle *in every build profile*: a double-free would
    /// put the slot on the free list twice and silently alias two live
    /// values, which is the one corruption a simulation cannot detect
    /// downstream.
    pub fn free(&mut self, r: SlabRef<T>) -> T {
        let slot = &mut self.slots[r.idx as usize];
        assert!(
            slot.gen == r.gen,
            "stale or double free: slot {} is at generation {}, handle has {}",
            r.idx,
            slot.gen,
            r.gen
        );
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.live -= 1;
        self.frees += 1;
        slot.value
    }

    /// Read access. Debug builds panic on a stale handle; release builds
    /// only bounds-check the index (the hot path dereferences twice per
    /// event, and the lifecycle discipline is enforced by `free` plus the
    /// debug-build property tests).
    #[inline]
    pub fn get(&self, r: SlabRef<T>) -> &T {
        let slot = &self.slots[r.idx as usize];
        debug_assert!(
            slot.gen == r.gen,
            "stale handle: slot {} is at generation {}, handle has {}",
            r.idx,
            slot.gen,
            r.gen
        );
        &slot.value
    }

    /// Mutable access; same staleness contract as [`get`](Self::get).
    #[inline]
    pub fn get_mut(&mut self, r: SlabRef<T>) -> &mut T {
        let slot = &mut self.slots[r.idx as usize];
        debug_assert!(
            slot.gen == r.gen,
            "stale handle: slot {} is at generation {}, handle has {}",
            r.idx,
            slot.gen,
            r.gen
        );
        &mut slot.value
    }

    /// Whether `r` still refers to a live value.
    pub fn is_live(&self, r: SlabRef<T>) -> bool {
        self.slots
            .get(r.idx as usize)
            .is_some_and(|s| s.gen == r.gen)
    }

    /// Values currently live.
    pub fn live(&self) -> usize {
        self.live as usize
    }

    /// Highest live population ever reached (the slab's working-set size).
    pub fn peak_live(&self) -> usize {
        self.peak_live as usize
    }

    /// Slots ever created (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lifetime (allocations, frees).
    pub fn stats(&self) -> (u64, u64) {
        (self.allocs, self.frees)
    }

    /// Serialize the whole slab for a checkpoint: every slot (generation
    /// plus value, free slots included so recycled generations survive),
    /// the free list in LIFO order, and the lifetime counters. `enc`
    /// encodes one stored value.
    pub fn save_with<F: FnMut(&T, &mut hostcc_sim::SnapWriter)>(
        &self,
        w: &mut hostcc_sim::SnapWriter,
        mut enc: F,
    ) {
        w.usize(self.slots.len());
        for slot in &self.slots {
            w.u32(slot.gen);
            enc(&slot.value, w);
        }
        w.seq(&self.free, |&idx, w| w.u32(idx));
        w.u32(self.live);
        w.u32(self.peak_live);
        w.u64(self.allocs);
        w.u64(self.frees);
    }

    /// Rebuild a slab from [`save_with`](Self::save_with) output. Restored
    /// handles (same index + generation) resolve to the same values, the
    /// free list recycles in the same order, and the odd-live/even-free
    /// generation invariant is revalidated — any violation is a typed
    /// [`SnapError`](hostcc_sim::SnapError), never a panic.
    pub fn load_with<'a, F>(
        r: &mut hostcc_sim::SnapReader<'a>,
        mut dec: F,
    ) -> Result<Self, hostcc_sim::SnapError>
    where
        F: FnMut(&mut hostcc_sim::SnapReader<'a>) -> Result<T, hostcc_sim::SnapError>,
    {
        use hostcc_sim::SnapError;
        let n = r.len(5)?; // each slot: gen (4 B) + at least one value byte
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let gen = r.u32()?;
            let value = dec(r)?;
            slots.push(Slot { gen, value });
        }
        let free = r.seq(4, |r| r.u32())?;
        let live = r.u32()?;
        let peak_live = r.u32()?;
        let allocs = r.u64()?;
        let frees = r.u64()?;
        let mut on_free_list = vec![false; slots.len()];
        for &idx in &free {
            let seen = on_free_list
                .get_mut(idx as usize)
                .ok_or(SnapError::Corrupt("free-list index out of range"))?;
            if *seen {
                return Err(SnapError::Corrupt("duplicate free-list index"));
            }
            *seen = true;
            if slots[idx as usize].gen % 2 != 0 {
                return Err(SnapError::Corrupt("free-list slot marked live"));
            }
        }
        let live_slots = slots.iter().filter(|s| s.gen % 2 == 1).count();
        if live_slots != live as usize {
            return Err(SnapError::Corrupt("slab live count mismatch"));
        }
        // Every non-live slot must be recyclable, or alloc would grow the
        // slab forever past the restored working set.
        if slots.len() - live_slots != free.len() {
            return Err(SnapError::Corrupt("slab free-list incomplete"));
        }
        if live > peak_live || allocs.wrapping_sub(frees) != live as u64 {
            return Err(SnapError::Corrupt("slab lifetime counters inconsistent"));
        }
        Ok(GenSlab {
            slots,
            free,
            live,
            peak_live,
            allocs,
            frees,
        })
    }
}

/// The packet store: every packet in the simulation lives here from
/// `TrySend` until its lifecycle ends (ACK consumed at the sender, or a
/// drop), and every queue in between carries only [`PacketRef`]s.
pub type PacketStore = GenSlab<Packet>;

/// Handle to a packet in the [`PacketStore`].
pub type PacketRef = SlabRef<Packet>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, WireFormat};
    use hostcc_sim::{SimRng, SimTime};

    fn pkt(seq: u64) -> Packet {
        WireFormat::default().data_packet(
            FlowId {
                sender: 0,
                thread: 0,
            },
            seq,
            SimTime::ZERO,
        )
    }

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut s = PacketStore::new();
        let a = s.alloc(pkt(7));
        let b = s.alloc(pkt(9));
        assert_eq!(s.get(a).seq, 7);
        assert_eq!(s.get(b).seq, 9);
        assert_eq!(s.live(), 2);
        let freed = s.free(a);
        assert_eq!(freed.seq, 7);
        assert_eq!(s.live(), 1);
        assert_eq!(s.get(b).seq, 9, "freeing a must not disturb b");
        assert_eq!(s.stats(), (2, 1));
    }

    #[test]
    fn slots_recycle_with_new_generations() {
        let mut s = PacketStore::new();
        let a = s.alloc(pkt(1));
        let idx = a.index();
        s.free(a);
        let b = s.alloc(pkt(2));
        assert_eq!(b.index(), idx, "freed slot is recycled");
        assert_ne!(
            b.generation(),
            a.generation(),
            "recycled slot has a new generation"
        );
        assert!(!s.is_live(a));
        assert!(s.is_live(b));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = PacketStore::new();
        let r = s.alloc(pkt(0));
        s.get_mut(r).ecn_ce = true;
        assert!(s.get(r).ecn_ce);
    }

    #[test]
    fn steady_state_is_growth_free() {
        let mut s = PacketStore::new();
        // Reach a working set of 32 live packets.
        let mut live: Vec<PacketRef> = (0..32).map(|i| s.alloc(pkt(i))).collect();
        let cap = s.capacity();
        // Churn well past the working set: capacity must not move.
        for i in 0..10_000u64 {
            let r = live.swap_remove((i % 31) as usize);
            s.free(r);
            live.push(s.alloc(pkt(i)));
        }
        assert_eq!(s.capacity(), cap, "steady-state churn must not grow");
        assert_eq!(s.peak_live(), 32);
    }

    /// Seeded property test: across 100k alloc/free cycles with a
    /// randomly churning live set, the store never hands out a handle
    /// that aliases a live one, frees return exactly the stored value,
    /// and every live handle stays readable.
    #[test]
    fn property_no_aliasing_across_100k_cycles() {
        let mut rng = SimRng::new(0x5AB5_1AB5);
        let mut s = PacketStore::new();
        let mut live: Vec<(PacketRef, u64)> = Vec::new();
        let mut next_seq = 0u64;
        for _ in 0..100_000 {
            if live.len() < 8 || (live.len() < 256 && rng.chance(0.55)) {
                let r = s.alloc(pkt(next_seq));
                // A fresh handle must not alias any live handle: distinct
                // as a (index, generation) pair, and distinct by index
                // alone (two live values must never share a slot).
                for (l, _) in &live {
                    assert_ne!(*l, r, "handle aliases a live handle");
                    assert_ne!(l.index(), r.index(), "slot aliases a live slot");
                }
                live.push((r, next_seq));
                next_seq += 1;
            } else {
                let pick = rng.next_below(live.len() as u64) as usize;
                let (r, expect) = live.swap_remove(pick);
                assert_eq!(s.free(r).seq, expect, "freed value corrupted");
                assert!(!s.is_live(r), "freed handle still live");
            }
            // Every live handle still reads back its own packet.
            if !live.is_empty() {
                let probe = rng.next_below(live.len() as u64) as usize;
                let (r, expect) = live[probe];
                assert_eq!(s.get(r).seq, expect);
            }
        }
        assert_eq!(s.live(), live.len());
        let (allocs, frees) = s.stats();
        assert_eq!(allocs - frees, live.len() as u64);
        assert!(
            s.capacity() <= 256,
            "capacity {} exceeded the live-set bound",
            s.capacity()
        );
    }

    #[test]
    #[should_panic(expected = "stale or double free")]
    fn double_free_is_caught_in_all_profiles() {
        let mut s = PacketStore::new();
        let r = s.alloc(pkt(0));
        s.free(r);
        s.free(r);
    }

    #[test]
    #[should_panic(expected = "stale or double free")]
    fn free_of_recycled_slot_is_caught() {
        let mut s = PacketStore::new();
        let a = s.alloc(pkt(0));
        s.free(a);
        let _b = s.alloc(pkt(1)); // recycles the slot under a new generation
        s.free(a); // stale: generation mismatch
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale handle")]
    fn debug_get_catches_use_after_free() {
        let mut s = PacketStore::new();
        let r = s.alloc(pkt(3));
        s.free(r);
        let _ = s.get(r);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale handle")]
    fn debug_get_mut_catches_recycled_slot() {
        let mut s = PacketStore::new();
        let a = s.alloc(pkt(3));
        s.free(a);
        let _b = s.alloc(pkt(4));
        let _ = s.get_mut(a);
    }
}
