//! # hostcc-fabric
//!
//! The network between senders and the receiver host: the shared wire
//! packet format (with the timestamp/delay-echo fields Swift needs), links
//! with serialisation + propagation, and an output-queued switch port with
//! tail-drop and ECN marking. In all of the paper's experiments the fabric
//! has headroom — congestion lives at the host — but the incast egress
//! port into the receiver's access link must still be modelled so that
//! fabric RTTs and Swift's fabric-delay component are realistic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interhost;
mod link;
mod packet;
mod store;

pub use interhost::WireMsg;
pub use link::{EnqueueOutcome, Link, SwitchPort};
pub use packet::{FlowId, Packet, PacketKind, WireFormat};
pub use store::{GenSlab, PacketRef, PacketStore, SlabRef};
