//! Links and output-queued switch ports.
//!
//! The fabric in the paper's workload is a 40-to-1 incast into the
//! receiver's 100 Gbps access link. We model the contended element — the
//! switch egress port feeding that link — as an output queue with a finite
//! byte budget and optional ECN marking, and every other hop as pure
//! serialisation + propagation (the fabric itself is not the bottleneck in
//! any of the paper's experiments; the host is).

use crate::packet::Packet;
use hostcc_sim::{Resolution, SerialLink, SimDuration, SimTime};

/// A point-to-point link: serialisation at a fixed rate plus propagation.
#[derive(Debug)]
pub struct Link {
    serial: SerialLink,
    propagation: SimDuration,
    delivered_bytes: u64,
    delivered_packets: u64,
}

impl Link {
    /// `bits_per_sec` line rate, `propagation` one-way latency.
    pub fn new(bits_per_sec: f64, propagation: SimDuration) -> Self {
        Link {
            serial: SerialLink::new(bits_per_sec / 8.0),
            propagation,
            delivered_bytes: 0,
            delivered_packets: 0,
        }
    }

    /// Quantise per-packet serialisation boundaries up to `res`. The
    /// 1 ns `for_bytes` ceiling is already an approximation of the true
    /// fractional wire time; a coarse grid widens it so arrivals coalesce
    /// onto shared wheel slots (identity at the default exact resolution).
    pub fn set_resolution(&mut self, res: Resolution) {
        self.serial.set_resolution(res);
    }

    /// Transmit a packet entering the link at `now`; returns its arrival
    /// time at the far end.
    pub fn transmit(&mut self, now: SimTime, pkt: &Packet) -> SimTime {
        self.delivered_bytes += pkt.wire_bytes as u64;
        self.delivered_packets += 1;
        self.serial.transmit(now, pkt.wire_bytes as u64) + self.propagation
    }

    /// Line rate in bits/sec.
    pub fn bits_per_sec(&self) -> f64 {
        self.serial.bytes_per_sec() * 8.0
    }

    /// Time the transmitter becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.serial.free_at()
    }

    /// (bytes, packets) delivered over the lifetime.
    pub fn delivered(&self) -> (u64, u64) {
        (self.delivered_bytes, self.delivered_packets)
    }

    /// Serialize the link (rate, in-flight serialisation state, counters).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        self.serial.save_state(w);
        w.duration(self.propagation);
        w.u64(self.delivered_bytes);
        w.u64(self.delivered_packets);
    }

    /// Rebuild a link from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        Ok(Link {
            serial: hostcc_sim::SerialLink::load_state(r)?,
            propagation: r.duration()?,
            delivered_bytes: r.u64()?,
            delivered_packets: r.u64()?,
        })
    }
}

/// Outcome of offering a packet to a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Accepted; will arrive at the attached host at this time. The packet
    /// may have been ECN-marked (check the returned packet).
    DeliverAt(SimTime),
    /// Tail-dropped: the output queue byte budget was exceeded.
    Dropped,
}

/// An output-queued switch egress port with tail-drop and ECN marking.
#[derive(Debug)]
pub struct SwitchPort {
    link: SerialLink,
    propagation: SimDuration,
    buffer_bytes: u64,
    ecn_threshold_bytes: u64,
    queued_bytes: u64,
    /// (time, bytes) of queued packets, used to age out departures. Every
    /// entry accounts for >= `MIN_WIRE_BYTES` of `queued_bytes`, which is
    /// capped at `buffer_bytes`, so the ring's length is bounded by
    /// `buffer_bytes / MIN_WIRE_BYTES` regardless of run length; it is
    /// pre-sized to that bound so steady state never reallocates.
    departures: std::collections::VecDeque<(SimTime, u64)>,
    drops: u64,
    marks: u64,
    forwarded: u64,
}

impl SwitchPort {
    /// A port draining at `bits_per_sec` with `buffer_bytes` of queue and
    /// ECN marking past `ecn_threshold_bytes` (0 disables marking; use
    /// `u64::MAX` threshold to never mark while keeping ECN plumbing).
    pub fn new(
        bits_per_sec: f64,
        propagation: SimDuration,
        buffer_bytes: u64,
        ecn_threshold_bytes: u64,
    ) -> Self {
        // Worst case the queue is full of minimum-size frames; one ring
        // entry each. Pre-sizing to that bound makes enqueue
        // allocation-free for the life of the port.
        let max_entries = (buffer_bytes / Self::MIN_WIRE_BYTES + 1) as usize;
        SwitchPort {
            link: SerialLink::new(bits_per_sec / 8.0),
            propagation,
            buffer_bytes,
            ecn_threshold_bytes,
            queued_bytes: 0,
            departures: std::collections::VecDeque::with_capacity(max_entries),
            drops: 0,
            marks: 0,
            forwarded: 0,
        }
    }

    /// Minimum Ethernet frame size; no packet on the wire is smaller, so
    /// `buffer_bytes / MIN_WIRE_BYTES` bounds the departure-ring length.
    const MIN_WIRE_BYTES: u64 = 64;

    /// Quantise egress serialisation boundaries up to `res` (see
    /// [`Link::set_resolution`]).
    pub fn set_resolution(&mut self, res: Resolution) {
        self.link.set_resolution(res);
    }

    /// Drop packets whose serialisation finished before `now` from the
    /// occupancy accounting.
    fn age(&mut self, now: SimTime) {
        while let Some(&(t, bytes)) = self.departures.front() {
            if t <= now {
                self.queued_bytes -= bytes;
                self.departures.pop_front();
            } else {
                break;
            }
        }
    }

    /// Offer `pkt` to the port at `now`. On acceptance the packet's ECN
    /// mark may be set in place and its delivery time is returned.
    pub fn enqueue(&mut self, now: SimTime, pkt: &mut Packet) -> EnqueueOutcome {
        self.age(now);
        let bytes = pkt.wire_bytes as u64;
        if self.queued_bytes + bytes > self.buffer_bytes {
            self.drops += 1;
            return EnqueueOutcome::Dropped;
        }
        if self.ecn_threshold_bytes > 0 && self.queued_bytes >= self.ecn_threshold_bytes {
            pkt.ecn_ce = true;
            self.marks += 1;
        }
        self.queued_bytes += bytes;
        let done = self.link.transmit(now, bytes);
        self.departures.push_back((done, bytes));
        self.forwarded += 1;
        EnqueueOutcome::DeliverAt(done + self.propagation)
    }

    /// Bytes currently queued (after ageing to `now`).
    pub fn occupancy(&mut self, now: SimTime) -> u64 {
        self.age(now);
        self.queued_bytes
    }

    /// Queueing + serialisation delay a packet arriving now would see.
    pub fn backlog_delay(&self, now: SimTime) -> SimDuration {
        self.link.backlog_delay(now)
    }

    /// Packets tail-dropped.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Packets ECN-marked.
    pub fn marks(&self) -> u64 {
        self.marks
    }

    /// Packets forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Serialize the port: drain link, queue occupancy, the pending
    /// departure ring in FIFO order, and drop/mark/forward counters.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        self.link.save_state(w);
        w.duration(self.propagation);
        w.u64(self.buffer_bytes);
        w.u64(self.ecn_threshold_bytes);
        w.u64(self.queued_bytes);
        w.usize(self.departures.len());
        for &(t, bytes) in &self.departures {
            w.time(t);
            w.u64(bytes);
        }
        w.u64(self.drops);
        w.u64(self.marks);
        w.u64(self.forwarded);
    }

    /// Rebuild a port from [`save_state`](Self::save_state) output. The
    /// departure ring is re-presized from the restored buffer budget so
    /// steady state stays allocation-free, and the occupancy invariant
    /// (queued bytes == sum of pending departures) is revalidated.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let link = hostcc_sim::SerialLink::load_state(r)?;
        let propagation = r.duration()?;
        let buffer_bytes = r.u64()?;
        let ecn_threshold_bytes = r.u64()?;
        let queued_bytes = r.u64()?;
        let n = r.len(16)?;
        let max_entries = (buffer_bytes / Self::MIN_WIRE_BYTES + 1) as usize;
        let mut departures = std::collections::VecDeque::with_capacity(max_entries.max(n));
        let mut last = hostcc_sim::SimTime::ZERO;
        let mut pending = 0u64;
        for _ in 0..n {
            let t = r.time()?;
            let bytes = r.u64()?;
            if t < last {
                return Err(SnapError::Corrupt("departure ring out of order"));
            }
            last = t;
            pending = pending
                .checked_add(bytes)
                .ok_or(SnapError::Corrupt("departure bytes overflow"))?;
            departures.push_back((t, bytes));
        }
        if pending != queued_bytes {
            return Err(SnapError::Corrupt("switch occupancy mismatch"));
        }
        if queued_bytes > buffer_bytes {
            return Err(SnapError::Corrupt("switch occupancy exceeds buffer"));
        }
        Ok(SwitchPort {
            link,
            propagation,
            buffer_bytes,
            ecn_threshold_bytes,
            queued_bytes,
            departures,
            drops: r.u64()?,
            marks: r.u64()?,
            forwarded: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, WireFormat};

    fn pkt() -> Packet {
        WireFormat::default().data_packet(
            FlowId {
                sender: 0,
                thread: 0,
            },
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn link_adds_serialisation_and_propagation() {
        // 100 Gbps: 4452 B = 356.16 ns (ceil 357); + 1 us propagation.
        let mut l = Link::new(100e9, SimDuration::from_micros(1));
        let arrive = l.transmit(SimTime::ZERO, &pkt());
        let ser_ns = (4452.0_f64 * 8.0 / 100e9 * 1e9).ceil() as u64;
        assert_eq!(arrive.as_nanos(), ser_ns + 1000);
        assert_eq!(l.delivered(), (4452, 1));
    }

    #[test]
    fn back_to_back_packets_queue_on_link() {
        let mut l = Link::new(100e9, SimDuration::ZERO);
        let a = l.transmit(SimTime::ZERO, &pkt());
        let b = l.transmit(SimTime::ZERO, &pkt());
        assert!(b > a, "second packet serialises after the first");
        assert_eq!(b.as_nanos(), 2 * a.as_nanos());
    }

    #[test]
    fn switch_port_tail_drops_when_full() {
        // Buffer fits exactly two data packets.
        let mut p = SwitchPort::new(100e9, SimDuration::ZERO, 9000, 0);
        let o1 = p.enqueue(SimTime::ZERO, &mut pkt());
        let o2 = p.enqueue(SimTime::ZERO, &mut pkt());
        let o3 = p.enqueue(SimTime::ZERO, &mut pkt());
        assert!(matches!(o1, EnqueueOutcome::DeliverAt(_)));
        assert!(matches!(o2, EnqueueOutcome::DeliverAt(_)));
        assert_eq!(o3, EnqueueOutcome::Dropped);
        assert_eq!(p.drops(), 1);
        assert_eq!(p.forwarded(), 2);
    }

    #[test]
    fn switch_port_drains_over_time() {
        let mut p = SwitchPort::new(100e9, SimDuration::ZERO, 9000, 0);
        p.enqueue(SimTime::ZERO, &mut pkt());
        p.enqueue(SimTime::ZERO, &mut pkt());
        assert_eq!(p.occupancy(SimTime::ZERO), 2 * 4452);
        // After both serialise (~713 ns), the queue is empty and new
        // packets are accepted again.
        let later = SimTime::from_micros(1);
        assert_eq!(p.occupancy(later), 0);
        let o = p.enqueue(later, &mut pkt());
        assert!(matches!(o, EnqueueOutcome::DeliverAt(_)));
    }

    #[test]
    fn ecn_marks_past_threshold() {
        let mut p = SwitchPort::new(100e9, SimDuration::ZERO, 100_000, 5000);
        let mut first = pkt();
        p.enqueue(SimTime::ZERO, &mut first);
        assert!(!first.ecn_ce, "queue below threshold");
        let mut second = pkt();
        p.enqueue(SimTime::ZERO, &mut second);
        assert!(!second.ecn_ce, "4452 < 5000 still below");
        let mut third = pkt();
        p.enqueue(SimTime::ZERO, &mut third);
        assert!(third.ecn_ce, "8904 >= 5000: mark");
        assert_eq!(p.marks(), 1);
    }

    #[test]
    fn zero_threshold_disables_ecn() {
        let mut p = SwitchPort::new(100e9, SimDuration::ZERO, 1 << 20, 0);
        for _ in 0..50 {
            let mut q = pkt();
            p.enqueue(SimTime::ZERO, &mut q);
            assert!(!q.ecn_ce);
        }
        assert_eq!(p.marks(), 0);
    }

    #[test]
    fn departure_ring_is_presized_and_bounded() {
        let buffer = 1 << 20;
        let mut p = SwitchPort::new(100e9, SimDuration::ZERO, buffer, 0);
        let cap = p.departures.capacity();
        assert!(cap >= (buffer / SwitchPort::MIN_WIRE_BYTES) as usize);
        // Fill-and-drain repeatedly; the ring must never outgrow its
        // pre-sized bound.
        for round in 0..50u64 {
            let now = SimTime::from_micros(100 * round);
            while matches!(p.enqueue(now, &mut pkt()), EnqueueOutcome::DeliverAt(_)) {}
            assert!(p.departures.len() <= cap);
        }
        assert_eq!(p.departures.capacity(), cap, "ring reallocated");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::packet::{FlowId, WireFormat};

    fn pkt() -> Packet {
        WireFormat::default().data_packet(
            FlowId {
                sender: 0,
                thread: 0,
            },
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn switch_ages_out_across_long_idle_gaps() {
        let mut p = SwitchPort::new(100e9, SimDuration::ZERO, 9000, 0);
        p.enqueue(SimTime::ZERO, &mut pkt());
        p.enqueue(SimTime::ZERO, &mut pkt());
        // Far in the future everything has drained; a burst fits again.
        let later = SimTime::from_secs(1);
        assert_eq!(p.occupancy(later), 0);
        let o1 = p.enqueue(later, &mut pkt());
        let o2 = p.enqueue(later, &mut pkt());
        assert!(matches!(o1, EnqueueOutcome::DeliverAt(_)));
        assert!(matches!(o2, EnqueueOutcome::DeliverAt(_)));
        assert_eq!(p.forwarded(), 4);
        assert_eq!(p.drops(), 0);
    }

    #[test]
    fn switch_delivery_preserves_fifo_order() {
        let mut p = SwitchPort::new(100e9, SimDuration::from_micros(1), 1 << 20, 0);
        let mut last = SimTime::ZERO;
        for _ in 0..32 {
            match p.enqueue(SimTime::ZERO, &mut pkt()) {
                EnqueueOutcome::DeliverAt(t) => {
                    assert!(t > last, "deliveries must be strictly ordered");
                    last = t;
                }
                EnqueueOutcome::Dropped => panic!("buffer should fit 32 packets"),
            }
        }
    }

    #[test]
    fn link_counts_deliveries() {
        let mut l = Link::new(100e9, SimDuration::ZERO);
        for _ in 0..5 {
            l.transmit(SimTime::ZERO, &pkt());
        }
        let (bytes, pkts) = l.delivered();
        assert_eq!(pkts, 5);
        assert_eq!(bytes, 5 * 4452);
        assert!((l.bits_per_sec() - 100e9).abs() < 1.0);
    }

    #[test]
    fn backlog_delay_reflects_queued_serialisation() {
        let mut p = SwitchPort::new(10e9, SimDuration::ZERO, 1 << 20, 0);
        for _ in 0..10 {
            p.enqueue(SimTime::ZERO, &mut pkt());
        }
        // 10 packets x 4452 B at 10 Gbps = ~35.6 us of backlog.
        let d = p.backlog_delay(SimTime::ZERO).as_micros_f64();
        assert!((34.0..38.0).contains(&d), "backlog {d} us");
    }
}
