//! Wire packet format.
//!
//! One concrete packet type is shared by the fabric, the NIC and the
//! transport so the simulator stays monomorphic and easy to reason about.
//! The congestion-control fields mirror what Swift actually carries:
//! timestamps for RTT measurement and the receiver-side delay echo that
//! lets the sender decompose *fabric* delay from *endpoint (host)* delay.

use hostcc_sim::{SimDuration, SimTime};

/// Identifies a flow: one connection between a sender machine and one
/// receiver thread (the paper's workload opens one connection per
/// (receiver-thread, sender) pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    /// Sender machine index.
    pub sender: u32,
    /// Receiver thread (core) index the connection is pinned to.
    pub thread: u32,
}

/// Packet payload kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data (MTU-sized) segment travelling sender → receiver.
    Data,
    /// An acknowledgement travelling receiver → sender.
    Ack,
}

/// A packet on the wire.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Sequence number (data) or cumulative ack number (ack).
    pub seq: u64,
    /// Payload bytes carried (0 for pure ACKs).
    pub payload_bytes: u32,
    /// Total on-wire size including all headers and framing.
    pub wire_bytes: u32,
    /// Data or ACK.
    pub kind: PacketKind,
    /// When the *original data packet* left the sender. Data packets carry
    /// their own transmit time; ACKs echo the data packet's time so the
    /// sender can compute an RTT without per-packet state.
    pub sent_at: SimTime,
    /// Receiver-side host delay echoed on ACKs: time from arrival at the
    /// NIC input buffer until the receiver stack finished processing the
    /// packet. Swift subtracts this "endpoint" component from the measured
    /// RTT to obtain the fabric component, and compares it against the
    /// 100 µs host target delay.
    pub host_delay_echo: SimDuration,
    /// ECN congestion-experienced mark (set by switch queues past their
    /// marking threshold; used by the DCTCP-style baseline, ignored by
    /// Swift).
    pub ecn_ce: bool,
    /// NIC input-buffer occupancy fraction echoed on ACKs (0.0–1.0): the
    /// "outside the network" congestion signal §4 of the paper argues
    /// future protocols need. Always available in the ACK; controllers
    /// that predate the idea (Swift, DCTCP) ignore it.
    pub nic_buffer_frac: f64,
}

/// Header/framing overhead model for the access network.
///
/// With 4 KiB MTUs the paper reports a maximum achievable application
/// throughput of ~92 Gbps on the 100 Gbps link "due to protocol header
/// overheads" — i.e. headers + framing consume ~8% of the wire. We charge a
/// fixed per-packet overhead calibrated to that figure (Ethernet + IP +
/// transport + SNAP RPC framing + preamble/IFG).
#[derive(Debug, Clone, Copy)]
pub struct WireFormat {
    /// MTU-sized payload carried by a full data packet, bytes.
    pub mtu_payload: u32,
    /// Per-data-packet header + framing overhead, bytes.
    pub data_overhead: u32,
    /// On-wire size of a pure ACK, bytes.
    pub ack_wire_bytes: u32,
}

impl Default for WireFormat {
    fn default() -> Self {
        WireFormat {
            mtu_payload: 4096,
            // 4096 / (4096 + 356) = 0.920 -> 92 Gbps of app goodput at
            // 100 Gbps line rate, matching the paper's ceiling.
            data_overhead: 356,
            ack_wire_bytes: 84,
        }
    }
}

impl FlowId {
    /// Serialize the flow identifier for a checkpoint.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u32(self.sender);
        w.u32(self.thread);
    }

    /// Rebuild a flow identifier from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        Ok(FlowId {
            sender: r.u32()?,
            thread: r.u32()?,
        })
    }
}

impl Packet {
    /// Serialize the full wire header for a checkpoint.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        self.flow.save_state(w);
        w.u64(self.seq);
        w.u32(self.payload_bytes);
        w.u32(self.wire_bytes);
        w.u8(match self.kind {
            PacketKind::Data => 0,
            PacketKind::Ack => 1,
        });
        w.time(self.sent_at);
        w.duration(self.host_delay_echo);
        w.bool(self.ecn_ce);
        w.f64(self.nic_buffer_frac);
    }

    /// Rebuild a packet from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        let flow = FlowId::load_state(r)?;
        let seq = r.u64()?;
        let payload_bytes = r.u32()?;
        let wire_bytes = r.u32()?;
        let kind = match r.u8()? {
            0 => PacketKind::Data,
            1 => PacketKind::Ack,
            _ => return Err(hostcc_sim::SnapError::Corrupt("packet kind out of range")),
        };
        Ok(Packet {
            flow,
            seq,
            payload_bytes,
            wire_bytes,
            kind,
            sent_at: r.time()?,
            host_delay_echo: r.duration()?,
            ecn_ce: r.bool()?,
            nic_buffer_frac: r.f64()?,
        })
    }
}

impl WireFormat {
    /// On-wire bytes of a data packet carrying `payload` bytes.
    pub fn data_wire_bytes(&self, payload: u32) -> u32 {
        payload + self.data_overhead
    }

    /// Application goodput fraction at full-MTU streaming.
    pub fn goodput_efficiency(&self) -> f64 {
        self.mtu_payload as f64 / self.data_wire_bytes(self.mtu_payload) as f64
    }

    /// Build a full-MTU data packet.
    pub fn data_packet(&self, flow: FlowId, seq: u64, sent_at: SimTime) -> Packet {
        Packet {
            flow,
            seq,
            payload_bytes: self.mtu_payload,
            wire_bytes: self.data_wire_bytes(self.mtu_payload),
            kind: PacketKind::Data,
            sent_at,
            host_delay_echo: SimDuration::ZERO,
            ecn_ce: false,
            nic_buffer_frac: 0.0,
        }
    }

    /// Build an ACK for a received data packet.
    ///
    /// `data` is the packet being acknowledged; its `sent_at` and ECN mark
    /// are echoed, and `host_delay` reports the receiver-side delay.
    pub fn ack_packet(&self, data: &Packet, ack_seq: u64, host_delay: SimDuration) -> Packet {
        Packet {
            flow: data.flow,
            seq: ack_seq,
            payload_bytes: 0,
            wire_bytes: self.ack_wire_bytes,
            kind: PacketKind::Ack,
            sent_at: data.sent_at,
            host_delay_echo: host_delay,
            ecn_ce: data.ecn_ce,
            nic_buffer_frac: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_efficiency_matches_paper_ceiling() {
        let wf = WireFormat::default();
        let eff = wf.goodput_efficiency();
        // 100 Gbps * eff ~= 92 Gbps.
        assert!(
            (0.915..0.925).contains(&eff),
            "efficiency {eff} should give ~92 Gbps app ceiling"
        );
    }

    #[test]
    fn data_packet_fields() {
        let wf = WireFormat::default();
        let flow = FlowId {
            sender: 3,
            thread: 1,
        };
        let t = SimTime::from_micros(7);
        let p = wf.data_packet(flow, 42, t);
        assert_eq!(p.kind, PacketKind::Data);
        assert_eq!(p.payload_bytes, 4096);
        assert_eq!(p.wire_bytes, 4096 + 356);
        assert_eq!(p.seq, 42);
        assert_eq!(p.sent_at, t);
        assert!(!p.ecn_ce);
    }

    #[test]
    fn ack_echoes_timestamp_delay_and_ecn() {
        let wf = WireFormat::default();
        let flow = FlowId {
            sender: 0,
            thread: 0,
        };
        let t = SimTime::from_micros(3);
        let mut data = wf.data_packet(flow, 9, t);
        data.ecn_ce = true;
        let ack = wf.ack_packet(&data, 10, SimDuration::from_micros(120));
        assert_eq!(ack.kind, PacketKind::Ack);
        assert_eq!(ack.sent_at, t, "ACK echoes the data transmit time");
        assert_eq!(ack.host_delay_echo, SimDuration::from_micros(120));
        assert!(ack.ecn_ce, "ECN mark must be reflected");
        assert_eq!(ack.payload_bytes, 0);
        assert_eq!(ack.wire_bytes, 84);
        assert_eq!(ack.seq, 10);
    }

    #[test]
    fn occupancy_echo_defaults_to_zero() {
        let wf = WireFormat::default();
        let flow = FlowId {
            sender: 0,
            thread: 0,
        };
        let data = wf.data_packet(flow, 0, SimTime::ZERO);
        assert_eq!(data.nic_buffer_frac, 0.0);
        let ack = wf.ack_packet(&data, 1, SimDuration::ZERO);
        assert_eq!(ack.nic_buffer_frac, 0.0);
    }
}
