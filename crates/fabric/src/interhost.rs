//! Inter-host fabric messages.
//!
//! When a fleet of `Testbed` hosts is coupled through the parallel
//! engine, packets that cross a host boundary travel as self-contained
//! [`WireMsg`] values inside `hostcc_sim::Envelope`s instead of as
//! `PacketRef`s into a host-local store ([`Packet`](crate::Packet) is
//! `Copy`, so the whole header rides along). The inter-host link is
//! modelled as a fixed minimum latency — the parallel engine's
//! lookahead — added on top of the sender's local serialisation and
//! propagation; contention on the *destination* host's access link is
//! modelled for real, because inbound data is injected at the
//! destination's switch port and traverses its full NIC/DMA/CPU
//! datapath.

use crate::Packet;

/// A message crossing an inter-host fabric link.
#[derive(Debug, Clone, Copy)]
pub enum WireMsg {
    /// A data packet arriving at the destination host's switch. `pkt.flow`
    /// already names the *destination-side* flow (the virtual-sender slot
    /// allocated by `add_remote_receiver`), so the receive path needs no
    /// translation.
    Data(Packet),
    /// An ACK returning to the sending host.
    Ack {
        /// Sender-side flow index the ACK belongs to.
        flow: u32,
        /// The ACK packet (echoes `sent_at`, host-delay and ECN state).
        ack: Packet,
        /// Receiver-side RPC data frontier, piggybacked like local ACKs.
        frontier: u64,
    },
}

impl WireMsg {
    /// Serialize an in-flight inter-host message for a checkpoint.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        match self {
            WireMsg::Data(pkt) => {
                w.u8(0);
                pkt.save_state(w);
            }
            WireMsg::Ack {
                flow,
                ack,
                frontier,
            } => {
                w.u8(1);
                w.u32(*flow);
                ack.save_state(w);
                w.u64(*frontier);
            }
        }
    }

    /// Rebuild a message from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        match r.u8()? {
            0 => Ok(WireMsg::Data(Packet::load_state(r)?)),
            1 => Ok(WireMsg::Ack {
                flow: r.u32()?,
                ack: Packet::load_state(r)?,
                frontier: r.u64()?,
            }),
            _ => Err(hostcc_sim::SnapError::Corrupt(
                "wire message tag out of range",
            )),
        }
    }
}
