//! Named scenario registry: maps CLI names to configuration builders.

use hostcc::scenarios;
use hostcc::TestbedConfig;

/// One registered scenario.
pub struct Scenario {
    /// CLI name.
    pub name: &'static str,
    /// One-line description shown by `hostcc list`.
    pub description: &'static str,
    /// Builder (default parameters; CLI flags override afterwards).
    pub build: fn() -> TestbedConfig,
}

/// All scenarios reachable from the CLI.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "baseline",
            description: "the §3 testbed: 40 senders, 12 cores, IOMMU on, hugepages",
            build: scenarios::baseline,
        },
        Scenario {
            name: "fig3",
            description: "Fig. 3 point: IOMMU-induced congestion (use --threads/--iommu)",
            build: || scenarios::fig3(12, true),
        },
        Scenario {
            name: "fig4-4k",
            description: "Fig. 4 point: hugepages disabled (4 KiB mappings)",
            build: || scenarios::fig4(12, false),
        },
        Scenario {
            name: "fig5",
            description: "Fig. 5 point: region-size pressure (use --region-mib)",
            build: || scenarios::fig5(12, true),
        },
        Scenario {
            name: "fig6",
            description: "Fig. 6 point: memory antagonist (use --antagonists/--iommu)",
            build: || scenarios::fig6(12, false),
        },
        Scenario {
            name: "blindspot",
            description: "§3.1 CC blind spot at 14 cores (use --host-target-us)",
            build: || scenarios::cc_blindspot(14, 100),
        },
        Scenario {
            name: "host-aware",
            description: "§4 extension: occupancy-echo CC with sub-RTT response",
            build: || scenarios::with_host_aware(scenarios::fig3(14, true)),
        },
        Scenario {
            name: "hot-buffers",
            description: "§4 on-NIC-memory direction: hot pool + DDIO absorption",
            build: || scenarios::with_hot_buffers(scenarios::fig3(14, true)),
        },
        Scenario {
            name: "strict-iommu",
            description: "strict mapping mode: per-buffer unmap + invalidation",
            build: || scenarios::with_strict_iommu(scenarios::fig3(14, true)),
        },
        Scenario {
            name: "dctcp",
            description: "TCP-like baseline (ECN only) at the congested point",
            build: || scenarios::with_dctcp(scenarios::fig3(14, true)),
        },
        Scenario {
            name: "remote-numa",
            description: "§4 coordinated response: antagonist on the remote NUMA node",
            build: || scenarios::with_remote_antagonist(scenarios::fig6(12, false)),
        },
        Scenario {
            name: "chaos-replay",
            description: "chaos: recurring PCIe link-error windows (DLLP NAK/replay)",
            build: scenarios::chaos_replay,
        },
        Scenario {
            name: "chaos-flap",
            description: "chaos: recurring access-link blackouts (transport recovers)",
            build: scenarios::chaos_flap,
        },
        Scenario {
            name: "chaos-invalidate",
            description: "chaos: recurring IOTLB invalidation storms (page-walk bursts)",
            build: scenarios::chaos_invalidate,
        },
    ]
}

/// Look up a scenario by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|s| s.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_scenario_builds() {
        for s in all() {
            let cfg = (s.build)();
            assert!(cfg.senders > 0, "{} must be runnable", s.name);
            assert!(cfg.receiver_threads > 0);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(find("fig3").is_some());
        assert!(find("fig6").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn scenario_semantics_spot_checks() {
        assert!(!(find("fig6").unwrap().build)().iommu.enabled);
        assert!((find("strict-iommu").unwrap().build)().strict_iommu);
        let ha = (find("host-aware").unwrap().build)();
        assert!(matches!(ha.cc, hostcc::CcKind::HostAware(_)));
    }

    #[test]
    fn chaos_scenarios_are_registered_with_fault_plans() {
        for name in ["chaos-replay", "chaos-flap", "chaos-invalidate"] {
            let cfg = (find(name).expect("registered").build)();
            assert!(!cfg.faults.is_empty(), "{name} must carry a fault plan");
        }
    }
}
