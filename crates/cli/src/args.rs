//! Minimal dependency-free argument parsing for the `hostcc` CLI.
//!
//! Grammar: `hostcc <command> [positional] [--flag value]... [--switch]...`
//! Only what the CLI needs — not a general-purpose parser.

use std::collections::BTreeMap;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positionals: Vec<String>,
    /// `--key value` pairs and bare `--switch`es (value = "true").
    pub flags: BTreeMap<String, String>,
}

/// Parse errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` that is not a recognised switch and took no value.
    UnknownFlag(String),
    /// A value-taking `--flag` appeared with no value following it.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing command; try `hostcc help`"),
            ArgError::UnknownFlag(name) => write!(f, "unknown flag --{name}"),
            ArgError::MissingValue(name) => {
                write!(f, "flag --{name} requires a value, but none was given")
            }
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Switches (flags that take no value).
const SWITCHES: &[&str] = &[
    "csv",
    "json",
    "quick",
    "help",
    "flight-recorder",
    "fuse-chains",
    "resume",
    "light",
    "rebalance",
];

/// Value-taking flags the CLI understands. Anything else is a typo the
/// parser rejects up front — silently ignoring it would make e.g.
/// `--thread 14` run with the scenario default.
const VALUE_FLAGS: &[&str] = &[
    "threads",
    "senders",
    "antagonists",
    "seed",
    "iommu",
    "region-mib",
    "host-target-us",
    "warmup-ms",
    "measure-ms",
    "faults",
    "trace-out",
    "trace-cap",
    "sample",
    "timeline",
    "telemetry-out",
    "telemetry-interval",
    "resolution",
    "hosts",
    "shards",
    "fanin",
    "topology",
    "fabric-us",
    "manifest",
    "out",
    "point",
    "step-us",
    "abort-after-slices",
];

/// Parse a raw argument vector (excluding argv[0]).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<ParsedArgs, ArgError> {
    let mut it = args.into_iter().peekable();
    let command = it.next().ok_or(ArgError::MissingCommand)?;
    let mut positionals = Vec::new();
    let mut flags = BTreeMap::new();
    while let Some(tok) = it.next() {
        if let Some(name) = tok.strip_prefix("--") {
            if SWITCHES.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
            } else if !VALUE_FLAGS.contains(&name) {
                return Err(ArgError::UnknownFlag(name.to_string()));
            } else {
                match it.next() {
                    Some(v) if !v.starts_with("--") => {
                        flags.insert(name.to_string(), v);
                    }
                    // A trailing `--flag`, or one followed by another
                    // `--flag`, is a present-but-valueless flag — report
                    // it as such, not as an unknown flag.
                    _ => return Err(ArgError::MissingValue(name.to_string())),
                }
            }
        } else {
            positionals.push(tok);
        }
    }
    Ok(ParsedArgs {
        command,
        positionals,
        flags,
    })
}

impl ParsedArgs {
    /// A flag's value parsed as `T`, or `default` when absent.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// A boolean switch.
    pub fn switch(&self, flag: &str) -> bool {
        self.flags.get(flag).map(|v| v == "true").unwrap_or(false)
    }

    /// An on/off flag (e.g. `--iommu off`), defaulting to `default`.
    pub fn get_on_off(&self, flag: &str, default: bool) -> Result<bool, ArgError> {
        match self.flags.get(flag).map(String::as_str) {
            None => Ok(default),
            Some("on") | Some("true") | Some("1") => Ok(true),
            Some("off") | Some("false") | Some("0") => Ok(false),
            Some(v) => Err(ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "on|off",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_positional_and_flags() {
        let p = parse(argv("run fig3 --threads 14 --iommu off --csv")).unwrap();
        assert_eq!(p.command, "run");
        assert_eq!(p.positionals, vec!["fig3"]);
        assert_eq!(p.flags.get("threads").unwrap(), "14");
        assert_eq!(p.flags.get("iommu").unwrap(), "off");
        assert!(p.switch("csv"));
        assert!(!p.switch("quick"));
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(parse(argv("")), Err(ArgError::MissingCommand));
    }

    #[test]
    fn flag_without_value_rejected() {
        let e = parse(argv("run fig3 --threads")).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("threads".into()));
        let e = parse(argv("run fig3 --threads --csv")).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("threads".into()));
        let msg = format!("{e}");
        assert!(msg.contains("--threads"), "{msg}");
        assert!(msg.contains("requires a value"), "{msg}");
    }

    #[test]
    fn typed_accessors() {
        let p = parse(argv("run x --threads 12 --seed 7")).unwrap();
        assert_eq!(p.get_parsed("threads", 0u32, "integer").unwrap(), 12);
        assert_eq!(p.get_parsed("seed", 1u64, "integer").unwrap(), 7);
        assert_eq!(p.get_parsed("missing", 42u32, "integer").unwrap(), 42);
        let bad = parse(argv("run x --threads nope")).unwrap();
        assert!(bad.get_parsed("threads", 0u32, "integer").is_err());
    }

    #[test]
    fn on_off_flags() {
        let p = parse(argv("run x --iommu off")).unwrap();
        assert!(!p.get_on_off("iommu", true).unwrap());
        let p = parse(argv("run x --iommu on")).unwrap();
        assert!(p.get_on_off("iommu", false).unwrap());
        assert!(p.get_on_off("absent", true).unwrap());
        let bad = parse(argv("run x --iommu maybe")).unwrap();
        assert!(bad.get_on_off("iommu", true).is_err());
    }

    #[test]
    fn unknown_flags_rejected_not_ignored() {
        let e = parse(argv("run fig3 --thread 14")).unwrap_err();
        assert_eq!(e, ArgError::UnknownFlag("thread".into()));
        let msg = format!("{e}");
        assert!(msg.contains("unknown flag --thread"), "{msg}");
    }

    #[test]
    fn telemetry_flags_parse() {
        let p = parse(argv(
            "run fig3 --telemetry-out t.jsonl --telemetry-interval 2500 --flight-recorder",
        ))
        .unwrap();
        assert_eq!(p.flags.get("telemetry-out").unwrap(), "t.jsonl");
        assert_eq!(p.flags.get("telemetry-interval").unwrap(), "2500");
        assert!(p.switch("flight-recorder"));
        // A value-taking telemetry flag with no value is a MissingValue,
        // not an unknown flag.
        let e = parse(argv("run fig3 --telemetry-out")).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("telemetry-out".into()));
        let e = parse(argv("run fig3 --telemetry-interval --csv")).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("telemetry-interval".into()));
    }

    #[test]
    fn error_display_is_actionable() {
        let msg = format!(
            "{}",
            ArgError::BadValue {
                flag: "threads".into(),
                value: "x".into(),
                expected: "integer",
            }
        );
        assert!(msg.contains("--threads"));
        assert!(msg.contains("integer"));
    }
}
