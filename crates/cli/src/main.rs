//! `hostcc` — command-line front end to the host-congestion laboratory.
//!
//! ```text
//! hostcc list                         # available scenarios
//! hostcc run fig3 --threads 14       # run one scenario with overrides
//! hostcc sweep fig3 --threads 2..16  # sweep a parameter
//! hostcc help
//! ```

mod args;
mod registry;

use args::{parse, ArgError, ParsedArgs};
use hostcc::experiment::{sweep as sweep_sims, RunPlan};
use hostcc::fleet::{Fleet, FleetConfig, FleetTopology};
use hostcc::report::{f, pct, Table};
use hostcc::{
    chrome_trace_json, metrics_json, CcKind, FaultKind, RunMetrics, Simulation, TelemetryConfig,
    TestbedConfig, TraceConfig,
};
use hostcc_campaign::{
    bisect as campaign_bisect, execute as campaign_execute, ExecuteOptions, Manifest,
};
use hostcc_sim::SimDuration;
use std::path::Path;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match dispatch(argv) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            2
        }
    };
    std::process::exit(code);
}

fn dispatch(argv: Vec<String>) -> Result<(), String> {
    let parsed = match parse(argv) {
        Ok(p) => p,
        Err(ArgError::MissingCommand) => {
            print_help();
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    match parsed.command.as_str() {
        "help" | "-h" | "--help" => {
            print_help();
            Ok(())
        }
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(&parsed).map_err(|e| e.to_string()),
        "sweep" => cmd_sweep(&parsed).map_err(|e| e.to_string()),
        "fleet" => cmd_fleet(&parsed).map_err(|e| e.to_string()),
        "campaign" => cmd_campaign(&parsed).map_err(|e| e.to_string()),
        other => Err(format!("unknown command `{other}`; try `hostcc help`")),
    }
}

fn print_help() {
    println!(
        "hostcc — host-interconnect congestion laboratory\n\
         \n\
         USAGE:\n\
         \u{20}  hostcc list\n\
         \u{20}  hostcc run <scenario> [overrides]\n\
         \u{20}  hostcc sweep <scenario> --threads A..B [overrides]\n\
         \u{20}  hostcc fleet [--hosts N] [--shards N] [overrides]\n\
         \u{20}  hostcc campaign run --manifest FILE --out DIR [--resume]\n\
         \u{20}  hostcc campaign bisect --manifest FILE --out DIR --point LABEL\n\
         \n\
         OVERRIDES:\n\
         \u{20}  --threads N         receiver cores\n\
         \u{20}  --senders N         sender machines\n\
         \u{20}  --antagonists N     STREAM antagonist cores\n\
         \u{20}  --iommu on|off      memory protection\n\
         \u{20}  --region-mib N      Rx region per thread\n\
         \u{20}  --host-target-us N  Swift host-delay target\n\
         \u{20}  --seed N            RNG seed\n\
         \u{20}  --warmup-ms N       warm-up (default 25)\n\
         \u{20}  --measure-ms N      measurement (default 25)\n\
         \u{20}  --resolution NS     quantise event time to a power-of-two\n\
         \u{20}                      grid (default 1 = exact; 64 = coarse\n\
         \u{20}                      profile, faster dispatch, not\n\
         \u{20}                      bit-identical to exact runs)\n\
         \u{20}  --fuse-chains       fuse uncontended DMA-complete chains\n\
         \u{20}                      into macro events (implies nothing\n\
         \u{20}                      else; ignored when faults are active)\n\
         \u{20}  --csv               machine-readable output\n\
         \u{20}  --quick             short run (5+10 ms)\n\
         \n\
         FAULT INJECTION:\n\
         \u{20}  --faults LIST       comma-separated faults to inject as\n\
         \u{20}                      recurring windows (1 ms every 5 ms):\n\
         \u{20}                      replay|flap|stall|storm|throttle|preempt\n\
         \u{20}  (or run a canned chaos scenario: chaos-replay, chaos-flap,\n\
         \u{20}   chaos-invalidate — see `hostcc list`)\n\
         \n\
         OBSERVABILITY (run command):\n\
         \u{20}  --trace-out FILE    write a Chrome trace-event JSON file\n\
         \u{20}                      (load in Perfetto / chrome://tracing)\n\
         \u{20}  --trace-cap N       trace ring-buffer capacity (default 200000)\n\
         \u{20}  --sample N          trace 1 in N packet lifecycles (default 1)\n\
         \u{20}  --timeline NS       record time series every NS nanoseconds\n\
         \u{20}  --json              print a JSON metrics snapshot (stage\n\
         \u{20}                      breakdown, counters, engine events/sec)\n\
         \n\
         FLEET (fleet command):\n\
         \u{20}  --hosts N           coupled hosts (default 8; 1000 with\n\
         \u{20}                      --light)\n\
         \u{20}  --shards N          parallel-engine worker threads\n\
         \u{20}                      (default 1; any value gives\n\
         \u{20}                      bit-identical metrics)\n\
         \u{20}  --topology SPEC     who sends to whom: ring:K fan-in ring,\n\
         \u{20}                      tree:K incast tree, rack:K rack fabric\n\
         \u{20}                      (default ring:2)\n\
         \u{20}  --fanin N           shorthand for --topology ring:N\n\
         \u{20}  --light             scale-out light-host template (small\n\
         \u{20}                      rings/buffers, telemetry off) — 10k\n\
         \u{20}                      hosts routinely, 100k as a stretch\n\
         \u{20}  --rebalance         repartition hosts onto shards by\n\
         \u{20}                      measured event cost after a probe\n\
         \u{20}                      slice (results are bit-identical\n\
         \u{20}                      either way; only wall time changes)\n\
         \u{20}  --fabric-us N       inter-host fabric latency in µs —\n\
         \u{20}                      the engine's lookahead (default 8)\n\
         \u{20}  --json              fleet summary JSON: per-shard event\n\
         \u{20}                      loads, imbalance ratio, super-epochs\n\
         \u{20}  (per-host overrides --threads/--senders/etc. shape the\n\
         \u{20}   base template every host derives from)\n\
         \n\
         TELEMETRY (run command):\n\
         \u{20}  --telemetry-out FILE     stream one JSONL line per sample\n\
         \u{20}                           (host signals + episode inputs)\n\
         \u{20}  --telemetry-interval NS  sampling cadence (default 5000 ns)\n\
         \u{20}  --flight-recorder        capture retroactive sample dumps\n\
         \u{20}                           on drop bursts / faults / stalls\n\
         \u{20}  (any telemetry flag enables the sampler; episodes and\n\
         \u{20}   attributions land in the --json telemetry section)\n\
         \n\
         CAMPAIGN (campaign command):\n\
         \u{20}  campaign run        execute a manifest grid with periodic\n\
         \u{20}                      checkpoints and crash-safe JSONL\n\
         \u{20}                      artifacts under --out\n\
         \u{20}  campaign bisect     replay one point from its pre-fault\n\
         \u{20}                      checkpoint, factual vs faults-suppressed,\n\
         \u{20}                      and report the first divergent slot\n\
         \u{20}  --manifest FILE     campaign manifest (key = value lines;\n\
         \u{20}                      see EXPERIMENTS.md for the format)\n\
         \u{20}  --out DIR           artifact directory (journal.jsonl,\n\
         \u{20}                      points/, checkpoints/, bisect/)\n\
         \u{20}  --resume            skip journaled points and restore\n\
         \u{20}                      in-flight ones from checkpoints\n\
         \u{20}  --point LABEL       grid point to bisect\n\
         \u{20}  --step-us N         bisect replay quantum (default 250)"
    );
}

fn cmd_campaign(p: &ParsedArgs) -> Result<(), String> {
    let sub = p
        .positionals
        .first()
        .map(String::as_str)
        .ok_or_else(|| "campaign needs a subcommand: run or bisect".to_string())?;
    let manifest_path = p
        .flags
        .get("manifest")
        .ok_or_else(|| "campaign needs --manifest FILE".to_string())?;
    let out = p
        .flags
        .get("out")
        .ok_or_else(|| "campaign needs --out DIR".to_string())?;
    let manifest = Manifest::load(Path::new(manifest_path)).map_err(|e| e.to_string())?;
    let out = Path::new(out);
    let mut log = |msg: &str| println!("{msg}");
    match sub {
        "run" => {
            let abort: u64 = p
                .get_parsed("abort-after-slices", 0, "integer")
                .map_err(|e| e.to_string())?;
            let opts = ExecuteOptions {
                resume: p.switch("resume"),
                abort_after_slices: (abort > 0).then_some(abort),
            };
            let report =
                campaign_execute(&manifest, out, &opts, &mut log).map_err(|e| e.to_string())?;
            println!(
                "campaign `{}`: {} completed, {} skipped, {} resumed, \
                 {} checkpoint fallback(s), {} failed{}",
                manifest.name,
                report.completed.len(),
                report.skipped.len(),
                report.resumed.len(),
                report.fallbacks.len(),
                report.failed.len(),
                if report.aborted { " (aborted)" } else { "" },
            );
            for (label, why) in &report.failed {
                eprintln!("error: point `{label}`: {why}");
            }
            if report.failed.is_empty() {
                Ok(())
            } else {
                Err(format!("{} point(s) failed", report.failed.len()))
            }
        }
        "bisect" => {
            let label = p
                .flags
                .get("point")
                .ok_or_else(|| "campaign bisect needs --point LABEL".to_string())?;
            let step_us: u64 = p
                .get_parsed("step-us", 250, "integer")
                .map_err(|e| e.to_string())?;
            let rep = campaign_bisect(
                &manifest,
                out,
                label,
                SimDuration::from_micros(step_us.max(1)),
                &mut log,
            )
            .map_err(|e| e.to_string())?;
            match rep.first_divergence_ns {
                Some(t) => println!(
                    "first divergent slot: {t} ns (replayed {}..{} ns in {} ns quanta, \
                     {} steps; details in bisect/{}.jsonl)",
                    rep.from_ns, rep.until_ns, rep.step_ns, rep.steps, rep.label
                ),
                None => println!(
                    "no state divergence in {}..{} ns — the fault plan left \
                     this run bit-identical",
                    rep.from_ns, rep.until_ns
                ),
            }
            if let Some(at) = rep.stalled_ns {
                println!("factual replica stalled at {at} ns");
            }
            Ok(())
        }
        other => Err(format!(
            "unknown campaign subcommand `{other}`; use run or bisect"
        )),
    }
}

fn cmd_list() {
    let mut t = Table::new(["scenario", "description"]);
    for s in registry::all() {
        t.row([s.name.to_string(), s.description.to_string()]);
    }
    println!("{}", t.render());
}

/// Apply CLI overrides to a scenario's configuration.
fn apply_overrides(cfg: &mut TestbedConfig, p: &ParsedArgs) -> Result<(), ArgError> {
    cfg.receiver_threads = p.get_parsed("threads", cfg.receiver_threads, "integer")?;
    cfg.senders = p.get_parsed("senders", cfg.senders, "integer")?;
    cfg.antagonist_cores = p.get_parsed("antagonists", cfg.antagonist_cores, "integer")?;
    cfg.seed = p.get_parsed("seed", cfg.seed, "integer")?;
    cfg.iommu.enabled = p.get_on_off("iommu", cfg.iommu.enabled)?;
    let region_mib: u64 = p.get_parsed("region-mib", cfg.rx_region_bytes >> 20, "integer")?;
    cfg.rx_region_bytes = region_mib << 20;
    let target_us: u64 = p.get_parsed("host-target-us", 0, "integer")?;
    if target_us > 0 {
        if let CcKind::Swift(ref mut sc) = cfg.cc {
            sc.host_target = SimDuration::from_micros(target_us);
        }
    }
    let res_ns: u64 = p.get_parsed("resolution", cfg.resolution.nanos(), "integer (ns)")?;
    cfg.resolution = hostcc_sim::Resolution::from_nanos(res_ns).ok_or(ArgError::BadValue {
        flag: "resolution".to_string(),
        value: res_ns.to_string(),
        expected: "a power of two between 1 and 65536 ns",
    })?;
    if p.switch("fuse-chains") {
        cfg.fuse_chains = true;
    }
    Ok(())
}

/// Apply the `--faults` flag: each named fault becomes a canned recurring
/// window train (1 ms windows every 5 ms from t=6 ms, nine occurrences —
/// the same cadence as the chaos-* scenarios).
fn apply_faults(cfg: &mut TestbedConfig, p: &ParsedArgs) -> Result<(), String> {
    let Some(list) = p.flags.get("faults") else {
        return Ok(());
    };
    for name in list.split(',').filter(|s| !s.is_empty()) {
        let kind = match name {
            "replay" => FaultKind::PcieReplay { nak_rate: 0.3 },
            "flap" => FaultKind::LinkFlap,
            "stall" => FaultKind::DescriptorStall,
            "storm" => FaultKind::IotlbStorm {
                flush_period: SimDuration::from_micros(50),
            },
            "throttle" => FaultKind::MemThrottle { factor: 0.4 },
            "preempt" => FaultKind::CorePreempt { cores: 2 },
            other => {
                return Err(format!(
                    "--faults: unknown fault `{other}` \
                     (expected replay|flap|stall|storm|throttle|preempt)"
                ))
            }
        };
        cfg.faults = cfg.faults.clone().recurring(
            kind,
            SimDuration::from_millis(6),
            SimDuration::from_millis(1),
            SimDuration::from_millis(5),
            9,
        );
        // Blackout-style faults lose whole windows; partial-ACK recovery
        // brings flows back at ACK-clock speed instead of one per RTO.
        cfg.flow.partial_ack_rtx = true;
    }
    Ok(())
}

fn plan_from(p: &ParsedArgs) -> Result<RunPlan, ArgError> {
    if p.switch("quick") {
        return Ok(RunPlan::quick());
    }
    let warmup: u64 = p.get_parsed("warmup-ms", 25, "integer")?;
    let measure: u64 = p.get_parsed("measure-ms", 25, "integer")?;
    Ok(RunPlan {
        warmup: SimDuration::from_millis(warmup),
        measure: SimDuration::from_millis(measure),
    })
}

fn metrics_table(rows: &[(String, &RunMetrics)]) -> Table {
    let mut t = Table::new([
        "scenario",
        "tp_gbps",
        "drop_rate",
        "iotlb_miss_per_pkt",
        "hostdelay_p50_us",
        "hostdelay_p99_us",
        "mem_bw_gbytes",
    ]);
    for (label, m) in rows {
        t.row([
            label.clone(),
            f(m.app_throughput_gbps(), 2),
            pct(m.drop_rate()),
            f(m.iotlb_misses_per_packet(), 2),
            f(m.host_delay_p50_us(), 1),
            f(m.host_delay_p99_us(), 1),
            f(m.memory_bandwidth_gbytes(), 1),
        ]);
    }
    t
}

fn scenario_from(p: &ParsedArgs) -> Result<TestbedConfig, String> {
    let name = p
        .positionals
        .first()
        .ok_or_else(|| "missing scenario name; see `hostcc list`".to_string())?;
    let s = registry::find(name)
        .ok_or_else(|| format!("unknown scenario `{name}`; see `hostcc list`"))?;
    let mut cfg = (s.build)();
    apply_overrides(&mut cfg, p).map_err(|e| e.to_string())?;
    apply_faults(&mut cfg, p)?;
    Ok(cfg)
}

/// Build the trace configuration implied by the observability flags, or
/// `None` when the run should stay completely untraced.
fn trace_config_from(p: &ParsedArgs) -> Result<Option<TraceConfig>, String> {
    let timeline: u64 = p
        .get_parsed("timeline", 0u64, "integer")
        .map_err(|e| e.to_string())?;
    if !p.flags.contains_key("trace-out") && !p.switch("json") && timeline == 0 {
        return Ok(None);
    }
    let cap: usize = p
        .get_parsed("trace-cap", 200_000usize, "integer")
        .map_err(|e| e.to_string())?;
    let sample: u32 = p
        .get_parsed("sample", 1u32, "integer")
        .map_err(|e| e.to_string())?;
    let mut tc = TraceConfig::enabled(cap).with_sampling(sample);
    if timeline > 0 {
        tc = tc.with_timeline(timeline);
    }
    Ok(Some(tc))
}

/// Build the telemetry configuration implied by the telemetry flags, or
/// `None` when the run should stay completely unsampled.
fn telemetry_config_from(p: &ParsedArgs) -> Result<Option<TelemetryConfig>, String> {
    let wants = p.flags.contains_key("telemetry-out")
        || p.flags.contains_key("telemetry-interval")
        || p.switch("flight-recorder");
    if !wants {
        return Ok(None);
    }
    let mut tc = TelemetryConfig::enabled();
    let interval: u64 = p
        .get_parsed("telemetry-interval", tc.interval_ns, "integer (ns)")
        .map_err(|e| e.to_string())?;
    if interval == 0 {
        return Err("--telemetry-interval 0: expected a positive nanosecond interval".into());
    }
    tc = tc.with_interval_ns(interval);
    if p.switch("flight-recorder") {
        tc = tc.with_flight_recorder();
    }
    Ok(Some(tc))
}

fn cmd_run(p: &ParsedArgs) -> Result<(), String> {
    let mut cfg = scenario_from(p)?;
    let plan = plan_from(p).map_err(|e| e.to_string())?;
    let label = p.positionals[0].clone();
    if let Some(tc) = telemetry_config_from(p)? {
        cfg.telemetry = tc;
    }
    let trace = trace_config_from(p)?;
    let traced = trace.is_some();
    // Build the simulation directly (rather than through experiment::run)
    // so the streaming telemetry sink can be installed before the run.
    cfg.validate()
        .map_err(|e| hostcc::RunError::from(e).to_string())?;
    let mut sim = match trace {
        Some(tc) => Simulation::with_trace(cfg, tc),
        None => Simulation::new(cfg),
    };
    if let Some(path) = p.flags.get("telemetry-out") {
        let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        sim.world_mut()
            .telemetry
            .set_sink(Box::new(std::io::BufWriter::new(file)));
    }
    let m = sim
        .try_run(plan.warmup, plan.measure)
        .map_err(|e| e.to_string())?;
    if let Some(path) = p.flags.get("telemetry-out") {
        let t = &sim.world().telemetry;
        eprintln!(
            "wrote {} telemetry samples ({} episodes, {} flight dumps) to {path}",
            t.samples_taken(),
            t.detector().episodes().len(),
            t.flight_dumps().len()
        );
    }
    if traced {
        if let Some(path) = p.flags.get("trace-out") {
            let w = sim.world();
            let doc = chrome_trace_json(w.tracer.events(), &w.timeline);
            std::fs::write(path, doc).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {} trace events ({} evicted) to {path}",
                w.tracer.len(),
                w.tracer.evicted()
            );
        }
    }
    if p.switch("json") {
        let empty = hostcc::CounterRegistry::new();
        let (counters, profile) = if traced {
            (&sim.world().counters, sim.profile())
        } else {
            (&empty, None)
        };
        println!("{}", metrics_json(&m, counters, profile));
    } else {
        let t = metrics_table(&[(label, &m)]);
        if p.switch("csv") {
            print!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    }
    Ok(())
}

/// Build a fleet configuration from the fleet command's flags: topology
/// knobs come from `--hosts/--shards/--fanin/--topology/--fabric-us`
/// (`--light` swaps in the scale-out light-host template), the per-host
/// template from the same override flags `run` understands.
fn fleet_config_from(p: &ParsedArgs) -> Result<FleetConfig, String> {
    let mut cfg = if p.switch("light") {
        let base = FleetConfig::light_fleet(1, 1);
        FleetConfig {
            hosts: 1_000,
            shards: 1,
            ..base
        }
    } else {
        FleetConfig::coupled_fleet()
    };
    cfg.hosts = p
        .get_parsed("hosts", cfg.hosts, "integer")
        .map_err(|e| e.to_string())?;
    cfg.shards = p
        .get_parsed("shards", cfg.shards, "integer")
        .map_err(|e| e.to_string())?;
    let fanin: Option<u32> = p
        .flags
        .get("fanin")
        .map(|v| v.parse().map_err(|_| format!("invalid --fanin '{v}'")))
        .transpose()?;
    if let Some(fanin) = fanin {
        cfg.topology = FleetTopology::FaninRing { fanin };
    }
    if let Some(spec) = p.flags.get("topology") {
        if fanin.is_some() {
            return Err("--fanin and --topology are mutually exclusive".to_string());
        }
        cfg.topology = FleetTopology::parse(spec)?;
    }
    let fabric_us: u64 = p
        .get_parsed("fabric-us", 8, "integer (µs)")
        .map_err(|e| e.to_string())?;
    cfg.fabric_latency = SimDuration::from_micros(fabric_us);
    cfg.seed = p
        .get_parsed("seed", cfg.seed, "integer")
        .map_err(|e| e.to_string())?;
    let mut base_overrides = p.clone();
    base_overrides.flags.remove("seed"); // fleet seed, not per-host seed
    apply_overrides(&mut cfg.base, &base_overrides).map_err(|e| e.to_string())?;
    apply_faults(&mut cfg.base, p)?;
    Ok(cfg)
}

fn cmd_fleet(p: &ParsedArgs) -> Result<(), String> {
    let cfg = fleet_config_from(p)?;
    let plan = plan_from(p).map_err(|e| e.to_string())?;
    let mut fleet = Fleet::new(&cfg).map_err(|e| e.to_string())?;
    if p.switch("rebalance") {
        // Probe briefly under round-robin so per-host dispatch counters
        // carry real load, then bin-pack hosts onto shards by measured
        // cost. Placement is unobservable, so results are bit-identical
        // with or without this switch (the probe slice is always run, so
        // the epoch grid — which *is* slice-schedule-dependent — matches
        // too).
        fleet
            .run_to(fleet.now() + SimDuration::from_micros(300))
            .map_err(|e| e.to_string())?;
        fleet.rebalance();
    } else {
        // Identical slice schedule whether or not we rebalance.
        fleet
            .run_to(fleet.now() + SimDuration::from_micros(300))
            .map_err(|e| e.to_string())?;
    }
    let per_host = fleet.run(plan).map_err(|e| e.to_string())?;
    if p.switch("json") {
        println!("{}", fleet_json(&cfg, &fleet, &per_host));
        return Ok(());
    }
    let rows: Vec<(String, &RunMetrics)> = per_host
        .iter()
        .enumerate()
        .map(|(h, m)| (format!("host{h}"), m))
        .collect();
    let t = metrics_table(&rows);
    if p.switch("csv") {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
        let total_gbps: f64 = per_host.iter().map(|m| m.app_throughput_gbps()).sum();
        println!(
            "fleet: {} hosts ({}), {} shards, {} epochs ({} super), imbalance {:.3}, {:.1} Gbps aggregate",
            cfg.hosts,
            cfg.topology,
            fleet.shards(),
            fleet.epochs(),
            fleet.super_epochs(),
            fleet.imbalance_ratio(),
            total_gbps
        );
    }
    Ok(())
}

/// Machine-readable fleet summary: topology, engine/shard load stats
/// (events per shard, imbalance, super-epochs), and a compact per-host
/// metrics array. The single-host `run --json` export stays untouched —
/// this is the fleet-level analogue of its `engine` block.
fn fleet_json(cfg: &FleetConfig, fleet: &Fleet, per_host: &[RunMetrics]) -> String {
    let mut w = hostcc_trace::json::JsonWriter::new();
    w.begin_obj();
    w.key("hosts").int(cfg.hosts as u64);
    w.key("topology").str(&cfg.topology.to_string());
    w.key("aggregate_gbps")
        .num(per_host.iter().map(|m| m.app_throughput_gbps()).sum());
    w.key("engine").begin_obj();
    w.key("shards").int(fleet.shards() as u64);
    w.key("epochs").int(fleet.epochs());
    w.key("super_epochs").int(fleet.super_epochs());
    w.key("dispatched_events").int(fleet.dispatched_total());
    w.key("events_per_shard").begin_arr();
    for events in fleet.shard_event_totals() {
        w.int(events);
    }
    w.end_arr();
    w.key("imbalance_ratio").num(fleet.imbalance_ratio());
    w.end_obj();
    w.key("per_host").begin_arr();
    for m in per_host {
        w.begin_obj();
        w.key("delivered_packets").int(m.delivered_packets);
        w.key("app_throughput_gbps").num(m.app_throughput_gbps());
        w.key("drop_rate").num(m.drop_rate());
        w.key("host_delay_p99_us").num(m.host_delay_p99_us());
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Parse `A..B` (inclusive) range syntax.
fn parse_range(s: &str) -> Option<(u32, u32)> {
    let (a, b) = s.split_once("..")?;
    let a: u32 = a.parse().ok()?;
    let b: u32 = b.parse().ok()?;
    (a <= b).then_some((a, b))
}

fn cmd_sweep(p: &ParsedArgs) -> Result<(), String> {
    let name = p
        .positionals
        .first()
        .cloned()
        .ok_or_else(|| "missing scenario name; see `hostcc list`".to_string())?;
    let s = registry::find(&name)
        .ok_or_else(|| format!("unknown scenario `{name}`; see `hostcc list`"))?;

    // Exactly one swept axis: the flag whose value contains "..".
    let axes = ["threads", "antagonists", "senders", "region-mib"];
    let swept: Vec<&str> = axes
        .iter()
        .copied()
        .filter(|a| p.flags.get(*a).map(|v| v.contains("..")).unwrap_or(false))
        .collect();
    let axis = match swept.as_slice() {
        [one] => *one,
        [] => return Err("sweep needs one ranged flag, e.g. --threads 2..16".into()),
        _ => return Err("sweep supports exactly one ranged flag".into()),
    };
    let (lo, hi) = parse_range(p.flags.get(axis).unwrap())
        .ok_or_else(|| format!("--{axis}: expected A..B with A <= B"))?;

    let plan = plan_from(p).map_err(|e| e.to_string())?;
    let mut points = Vec::new();
    for v in lo..=hi {
        let mut cfg = (s.build)();
        // Apply non-ranged overrides first, then the swept value.
        let mut without_axis = p.clone();
        without_axis.flags.remove(axis);
        apply_overrides(&mut cfg, &without_axis).map_err(|e| e.to_string())?;
        apply_faults(&mut cfg, &without_axis)?;
        match axis {
            "threads" => cfg.receiver_threads = v,
            "antagonists" => cfg.antagonist_cores = v,
            "senders" => cfg.senders = v,
            "region-mib" => cfg.rx_region_bytes = (v as u64) << 20,
            _ => unreachable!(),
        }
        points.push((format!("{name} {axis}={v}"), cfg));
    }
    let results = sweep_sims(points, plan).map_err(|e| e.to_string())?;
    let rows: Vec<(String, &RunMetrics)> = results
        .iter()
        .map(|r| (r.label.clone(), &r.metrics))
        .collect();
    let t = metrics_table(&rows);
    if p.switch("csv") {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_parsing() {
        assert_eq!(parse_range("2..16"), Some((2, 16)));
        assert_eq!(parse_range("5..5"), Some((5, 5)));
        assert_eq!(parse_range("9..2"), None);
        assert_eq!(parse_range("abc"), None);
    }

    #[test]
    fn overrides_apply() {
        let p = parse(
            "run fig3 --threads 14 --iommu off --seed 9 --region-mib 8"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let mut cfg = hostcc::scenarios::fig3(12, true);
        apply_overrides(&mut cfg, &p).unwrap();
        assert_eq!(cfg.receiver_threads, 14);
        assert!(!cfg.iommu.enabled);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.rx_region_bytes, 8 << 20);
    }

    #[test]
    fn resolution_and_fusion_overrides_apply() {
        let p = parse(
            "run fig3 --resolution 64 --fuse-chains"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let mut cfg = hostcc::scenarios::fig3(12, true);
        apply_overrides(&mut cfg, &p).unwrap();
        assert_eq!(cfg.resolution.nanos(), 64);
        assert!(cfg.fuse_chains);
        // Default stays exact with fusion off.
        let p = parse("run fig3".split_whitespace().map(String::from)).unwrap();
        let mut cfg = hostcc::scenarios::fig3(12, true);
        apply_overrides(&mut cfg, &p).unwrap();
        assert!(cfg.resolution.is_exact());
        assert!(!cfg.fuse_chains);
        // Non-power-of-two grids are rejected up front.
        let p = parse(
            "run fig3 --resolution 100"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let mut cfg = hostcc::scenarios::fig3(12, true);
        let e = apply_overrides(&mut cfg, &p).unwrap_err();
        assert!(format!("{e}").contains("power of two"), "{e}");
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let p = parse(["run".to_string(), "nope".to_string()]).unwrap();
        assert!(scenario_from(&p).unwrap_err().contains("unknown scenario"));
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        let e = dispatch(vec!["frobnicate".into()]).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn quick_plan_flag() {
        let p = parse("run baseline --quick".split_whitespace().map(String::from)).unwrap();
        let plan = plan_from(&p).unwrap();
        assert_eq!(plan.measure, SimDuration::from_millis(10));
    }

    #[test]
    fn faults_flag_builds_plan() {
        let p = parse(
            "run baseline --faults replay,storm"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let cfg = scenario_from(&p).unwrap();
        assert_eq!(cfg.faults.specs.len(), 2);
        assert!(matches!(
            cfg.faults.specs[0].kind,
            FaultKind::PcieReplay { .. }
        ));
        assert!(matches!(
            cfg.faults.specs[1].kind,
            FaultKind::IotlbStorm { .. }
        ));
    }

    #[test]
    fn unknown_fault_is_an_error() {
        let p = parse(
            "run baseline --faults gremlins"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(scenario_from(&p).unwrap_err().contains("unknown fault"));
    }

    #[test]
    fn telemetry_flags_build_config() {
        // No telemetry flag: the run stays unsampled.
        let p = parse("run fig3 --quick".split_whitespace().map(String::from)).unwrap();
        assert!(telemetry_config_from(&p).unwrap().is_none());
        // Any telemetry flag enables the sampler.
        let p = parse(
            "run fig3 --telemetry-interval 2500 --flight-recorder"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let tc = telemetry_config_from(&p).unwrap().unwrap();
        assert!(tc.enabled && tc.flight_recorder);
        assert_eq!(tc.interval_ns, 2_500);
        let p = parse(
            "run fig3 --telemetry-out out.jsonl"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let tc = telemetry_config_from(&p).unwrap().unwrap();
        assert!(tc.enabled && !tc.flight_recorder);
        assert_eq!(tc.interval_ns, TelemetryConfig::enabled().interval_ns);
        // Bad values are surfaced, not defaulted.
        let p = parse(
            "run fig3 --telemetry-interval nope"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(telemetry_config_from(&p).unwrap_err().contains("expected"));
        let p = parse(
            "run fig3 --telemetry-interval 0"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(telemetry_config_from(&p)
            .unwrap_err()
            .contains("positive nanosecond interval"));
    }

    #[test]
    fn telemetry_run_streams_jsonl_and_exports_section() {
        // End-to-end through dispatch: a quick blindspot run with the
        // sampler on writes one JSONL line per sample and keeps running.
        let dir = std::env::temp_dir().join("hostcc-cli-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("samples.jsonl");
        let path_s = path.to_str().unwrap().to_string();
        dispatch(
            format!("run blindspot --quick --telemetry-out {path_s} --flight-recorder")
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.len() > 100,
            "expected many samples, got {}",
            lines.len()
        );
        assert!(lines[0].contains("\"t_ns\":"));
        assert!(lines[0].contains("\"buffer_frac\":"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fleet_flags_build_config() {
        let p = parse(
            "fleet --hosts 4 --shards 2 --fanin 1 --fabric-us 12 --seed 77 --threads 3"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let cfg = fleet_config_from(&p).unwrap();
        assert_eq!(cfg.hosts, 4);
        assert_eq!(cfg.shards, 2);
        assert_eq!(cfg.topology, FleetTopology::FaninRing { fanin: 1 });
        assert_eq!(cfg.fabric_latency, SimDuration::from_micros(12));
        assert_eq!(cfg.seed, 77);
        // --threads shapes the per-host template; --seed stays at the
        // fleet level (per-host seeds derive from it).
        assert_eq!(cfg.base.receiver_threads, 3);
        assert_ne!(cfg.host_config(0).seed, 77);
    }

    #[test]
    fn fleet_topology_and_light_flags_build_config() {
        let p = parse(
            "fleet --light --hosts 64 --shards 4 --topology rack:8"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let cfg = fleet_config_from(&p).unwrap();
        assert_eq!(cfg.hosts, 64);
        assert_eq!(cfg.shards, 4);
        assert_eq!(
            cfg.topology,
            FleetTopology::RackFabric { hosts_per_rack: 8 }
        );
        // The light template shrinks the per-host population.
        assert_eq!(cfg.base.senders, 2);
        assert_eq!(cfg.base.receiver_threads, 1);

        // --fanin and --topology cannot both be given.
        let p = parse(
            "fleet --fanin 2 --topology tree:4"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let e = fleet_config_from(&p).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");

        // Bad topology specs are CLI errors, not panics.
        let p = parse(
            "fleet --topology mesh:3"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(fleet_config_from(&p).unwrap_err().contains("topology"));
    }

    #[test]
    fn fleet_rejects_invalid_topologies() {
        let e = dispatch(
            "fleet --hosts 2 --fanin 2 --quick"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .unwrap_err();
        assert!(e.contains("fanin"), "{e}");
        // Satellite validation: shards outside 1..=hosts is a typed
        // ConfigError surfaced on the `error:` + exit 2 path.
        let e = dispatch(
            "fleet --hosts 2 --shards 4 --quick"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .unwrap_err();
        assert!(e.contains("shards"), "{e}");
        let e = dispatch(
            "fleet --hosts 2 --shards 0 --quick"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .unwrap_err();
        assert!(e.contains("shards"), "{e}");
    }

    #[test]
    fn invalid_config_maps_to_cli_error() {
        // senders=0 passes parsing but fails TestbedConfig::validate();
        // dispatch must surface it as an `error: …` (exit code 2 path),
        // not a panic.
        let e = dispatch(
            "run baseline --senders 0 --quick"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .unwrap_err();
        assert!(e.contains("invalid configuration"), "{e}");
    }
}
