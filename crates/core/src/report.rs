//! Plain-text tables and CSV output for the harness binaries.
//!
//! Hand-rolled (no serde) so the only output dependencies are `std`.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a f64 with fixed decimals (tables read better than `{:?}`).
pub fn f(x: f64, decimals: usize) -> String {
    format!("{:.*}", decimals, x)
}

/// Format a rate as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["cores", "tp"]);
        t.row(["2", "23.0"]);
        t.row(["16", "77.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cores"));
        assert!(lines[2].ends_with("23.0"));
        assert!(lines[3].starts_with("   16"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn zero_column_table_renders_without_panic() {
        let t = Table::new(Vec::<String>::new());
        let s = t.render();
        // Header line + (empty) separator line, no underflow panic.
        assert_eq!(s, "\n\n");
        assert_eq!(t.to_csv(), "\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn number_helpers() {
        assert_eq!(f(91.78456, 2), "91.78");
        assert_eq!(pct(0.0123456), "1.235%");
    }
}
