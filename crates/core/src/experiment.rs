//! Experiment runner: one-shot runs and parallel parameter sweeps.

use hostcc_host::{RunError, RunMetrics, Simulation, TestbedConfig, TraceConfig};
use hostcc_sim::SimDuration;

/// How long to warm up (reach CC steady state) and measure.
#[derive(Debug, Clone, Copy)]
pub struct RunPlan {
    /// Simulated warm-up discarded from the metrics.
    pub warmup: SimDuration,
    /// Simulated measurement interval.
    pub measure: SimDuration,
}

impl Default for RunPlan {
    /// 25 ms warm-up + 25 ms measurement: long enough for Swift to
    /// converge and for drop rates to be estimated within a few percent
    /// relative error at the paper's packet rates.
    fn default() -> Self {
        RunPlan {
            warmup: SimDuration::from_millis(25),
            measure: SimDuration::from_millis(25),
        }
    }
}

impl RunPlan {
    /// A shorter plan for smoke tests and CI.
    pub fn quick() -> Self {
        RunPlan {
            warmup: SimDuration::from_millis(5),
            measure: SimDuration::from_millis(10),
        }
    }
}

/// Run a single testbed configuration to completion and return metrics.
///
/// Panic-free: an invalid configuration or a watchdog-detected stall comes
/// back as a typed [`RunError`] instead of aborting the process.
pub fn run(cfg: TestbedConfig, plan: RunPlan) -> Result<RunMetrics, RunError> {
    cfg.validate()?;
    let mut sim = Simulation::new(cfg);
    sim.try_run(plan.warmup, plan.measure)
}

/// Run one configuration with tracing installed. Returns the metrics
/// (bit-identical to an untraced [`run`]) together with the finished
/// simulation, whose world holds the tracer ring, counter registry and
/// timeline for export.
pub fn run_traced(
    cfg: TestbedConfig,
    plan: RunPlan,
    trace: TraceConfig,
) -> Result<(RunMetrics, Simulation), RunError> {
    cfg.validate()?;
    let mut sim = Simulation::with_trace(cfg, trace);
    let metrics = sim.try_run(plan.warmup, plan.measure)?;
    Ok((metrics, sim))
}

/// One sweep point: a label, the configuration, and (after running) the
/// measured metrics.
#[derive(Debug)]
pub struct SweepPoint<L> {
    /// Caller-provided label (x-axis value, scenario tag).
    pub label: L,
    /// Measured metrics.
    pub metrics: RunMetrics,
}

/// Run a set of independent configurations in parallel (one OS thread per
/// point, bounded by available parallelism) and return results in input
/// order. Each simulation is single-threaded and deterministic; only the
/// sweep is parallelised. Workers pull indices from a shared cursor and
/// write into disjoint slots, all with std primitives.
///
/// Every configuration is validated up front, so a bad point fails fast
/// before any simulation spins up; a mid-sweep watchdog stall surfaces as
/// the first erroring point's [`RunError`].
pub fn sweep<L: Send>(
    points: Vec<(L, TestbedConfig)>,
    plan: RunPlan,
) -> Result<Vec<SweepPoint<L>>, RunError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    for (_, cfg) in &points {
        cfg.validate()?;
    }
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(points.len().max(1));
    let work: Vec<Mutex<Option<(usize, L, TestbedConfig)>>> = points
        .into_iter()
        .enumerate()
        .map(|(idx, (label, cfg))| Mutex::new(Some((idx, label, cfg))))
        .collect();
    type ResultSlot<L> = Mutex<Option<Result<SweepPoint<L>, RunError>>>;
    let results: Vec<ResultSlot<L>> = work.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..parallelism {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = work.get(idx) else {
                    break;
                };
                let (idx, label, cfg) = slot.lock().unwrap().take().expect("each slot taken once");
                let outcome = run(cfg, plan).map(|metrics| SweepPoint { label, metrics });
                *results[idx].lock().unwrap() = Some(outcome);
            });
        }
    });
    results
        .into_iter()
        .map(|p| p.into_inner().unwrap().expect("all points ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(threads: u32) -> TestbedConfig {
        TestbedConfig {
            senders: 4,
            receiver_threads: threads,
            ..TestbedConfig::default()
        }
    }

    #[test]
    fn single_run_produces_traffic() {
        let m = run(tiny_cfg(2), RunPlan::quick()).expect("valid config runs");
        assert!(m.delivered_packets > 1000);
        assert!(m.app_throughput_gbps() > 1.0);
    }

    #[test]
    fn sweep_preserves_order_and_labels() {
        let points = vec![
            (2u32, tiny_cfg(2)),
            (3u32, tiny_cfg(3)),
            (4u32, tiny_cfg(4)),
        ];
        let out = sweep(points, RunPlan::quick()).expect("valid configs run");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].label, 2);
        assert_eq!(out[1].label, 3);
        assert_eq!(out[2].label, 4);
        // More receiver cores, more CPU capacity, more throughput.
        assert!(out[2].metrics.app_throughput_gbps() > out[0].metrics.app_throughput_gbps());
    }

    #[test]
    fn sweep_matches_sequential_run() {
        // Parallel execution must not perturb determinism.
        let par = sweep(vec![((), tiny_cfg(2))], RunPlan::quick()).unwrap();
        let seq = run(tiny_cfg(2), RunPlan::quick()).unwrap();
        assert_eq!(par[0].metrics.delivered_packets, seq.delivered_packets);
        assert_eq!(par[0].metrics.host_drops(), seq.host_drops());
        assert_eq!(par[0].metrics.iotlb_misses, seq.iotlb_misses);
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let cfg = TestbedConfig {
            senders: 0,
            ..TestbedConfig::default()
        };
        let err = run(cfg.clone(), RunPlan::quick()).unwrap_err();
        assert!(matches!(err, RunError::InvalidConfig(_)), "{err}");
        let err = sweep(vec![((), cfg)], RunPlan::quick()).unwrap_err();
        assert!(matches!(err, RunError::InvalidConfig(_)));
    }
}
