//! Experiment runner: one-shot runs and parallel parameter sweeps.

use hostcc_host::{RunMetrics, Simulation, TestbedConfig};
use hostcc_sim::SimDuration;

/// How long to warm up (reach CC steady state) and measure.
#[derive(Debug, Clone, Copy)]
pub struct RunPlan {
    /// Simulated warm-up discarded from the metrics.
    pub warmup: SimDuration,
    /// Simulated measurement interval.
    pub measure: SimDuration,
}

impl Default for RunPlan {
    /// 25 ms warm-up + 25 ms measurement: long enough for Swift to
    /// converge and for drop rates to be estimated within a few percent
    /// relative error at the paper's packet rates.
    fn default() -> Self {
        RunPlan {
            warmup: SimDuration::from_millis(25),
            measure: SimDuration::from_millis(25),
        }
    }
}

impl RunPlan {
    /// A shorter plan for smoke tests and CI.
    pub fn quick() -> Self {
        RunPlan {
            warmup: SimDuration::from_millis(5),
            measure: SimDuration::from_millis(10),
        }
    }
}

/// Run a single testbed configuration to completion and return metrics.
pub fn run(cfg: TestbedConfig, plan: RunPlan) -> RunMetrics {
    let mut sim = Simulation::new(cfg);
    sim.run(plan.warmup, plan.measure)
}

/// One sweep point: a label, the configuration, and (after running) the
/// measured metrics.
#[derive(Debug)]
pub struct SweepPoint<L> {
    /// Caller-provided label (x-axis value, scenario tag).
    pub label: L,
    /// Measured metrics.
    pub metrics: RunMetrics,
}

/// Run a set of independent configurations in parallel (one OS thread per
/// point, bounded by available parallelism) and return results in input
/// order. Each simulation is single-threaded and deterministic; only the
/// sweep is parallelised.
pub fn sweep<L: Send>(points: Vec<(L, TestbedConfig)>, plan: RunPlan) -> Vec<SweepPoint<L>> {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut results: Vec<Option<SweepPoint<L>>> = Vec::new();
    for _ in 0..points.len() {
        results.push(None);
    }
    let work: Vec<(usize, (L, TestbedConfig))> = points.into_iter().enumerate().collect();
    let queue = crossbeam::queue::SegQueue::new();
    for item in work {
        queue.push(item);
    }
    let results_mutex = parking_lot::Mutex::new(&mut results);
    crossbeam::scope(|scope| {
        for _ in 0..parallelism {
            scope.spawn(|_| loop {
                let Some((idx, (label, cfg))) = queue.pop() else {
                    break;
                };
                let metrics = run(cfg, plan);
                let point = SweepPoint { label, metrics };
                results_mutex.lock()[idx] = Some(point);
            });
        }
    })
    .expect("sweep worker panicked");
    results
        .into_iter()
        .map(|p| p.expect("all points ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(threads: u32) -> TestbedConfig {
        TestbedConfig {
            senders: 4,
            receiver_threads: threads,
            ..TestbedConfig::default()
        }
    }

    #[test]
    fn single_run_produces_traffic() {
        let m = run(tiny_cfg(2), RunPlan::quick());
        assert!(m.delivered_packets > 1000);
        assert!(m.app_throughput_gbps() > 1.0);
    }

    #[test]
    fn sweep_preserves_order_and_labels() {
        let points = vec![
            (2u32, tiny_cfg(2)),
            (3u32, tiny_cfg(3)),
            (4u32, tiny_cfg(4)),
        ];
        let out = sweep(points, RunPlan::quick());
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].label, 2);
        assert_eq!(out[1].label, 3);
        assert_eq!(out[2].label, 4);
        // More receiver cores, more CPU capacity, more throughput.
        assert!(
            out[2].metrics.app_throughput_gbps() > out[0].metrics.app_throughput_gbps()
        );
    }

    #[test]
    fn sweep_matches_sequential_run() {
        // Parallel execution must not perturb determinism.
        let par = sweep(vec![((), tiny_cfg(2))], RunPlan::quick());
        let seq = run(tiny_cfg(2), RunPlan::quick());
        assert_eq!(par[0].metrics.delivered_packets, seq.delivered_packets);
        assert_eq!(par[0].metrics.host_drops(), seq.host_drops());
        assert_eq!(par[0].metrics.iotlb_misses, seq.iotlb_misses);
    }
}
