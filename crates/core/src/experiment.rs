//! Experiment runner: one-shot runs and parallel parameter sweeps.

use hostcc_host::{RunError, RunMetrics, Simulation, TestbedConfig, TraceConfig};
use hostcc_sim::SimDuration;

/// How long to warm up (reach CC steady state) and measure.
#[derive(Debug, Clone, Copy)]
pub struct RunPlan {
    /// Simulated warm-up discarded from the metrics.
    pub warmup: SimDuration,
    /// Simulated measurement interval.
    pub measure: SimDuration,
}

impl Default for RunPlan {
    /// 25 ms warm-up + 25 ms measurement: long enough for Swift to
    /// converge and for drop rates to be estimated within a few percent
    /// relative error at the paper's packet rates.
    fn default() -> Self {
        RunPlan {
            warmup: SimDuration::from_millis(25),
            measure: SimDuration::from_millis(25),
        }
    }
}

impl RunPlan {
    /// A shorter plan for smoke tests and CI.
    pub fn quick() -> Self {
        RunPlan {
            warmup: SimDuration::from_millis(5),
            measure: SimDuration::from_millis(10),
        }
    }
}

/// Run a single testbed configuration to completion and return metrics.
///
/// Panic-free: an invalid configuration or a watchdog-detected stall comes
/// back as a typed [`RunError`] instead of aborting the process.
pub fn run(cfg: TestbedConfig, plan: RunPlan) -> Result<RunMetrics, RunError> {
    cfg.validate()?;
    let mut sim = Simulation::new(cfg);
    sim.try_run(plan.warmup, plan.measure)
}

/// Run one configuration with tracing installed. Returns the metrics
/// (bit-identical to an untraced [`run`]) together with the finished
/// simulation, whose world holds the tracer ring, counter registry and
/// timeline for export.
pub fn run_traced(
    cfg: TestbedConfig,
    plan: RunPlan,
    trace: TraceConfig,
) -> Result<(RunMetrics, Simulation), RunError> {
    cfg.validate()?;
    let mut sim = Simulation::with_trace(cfg, trace);
    let metrics = sim.try_run(plan.warmup, plan.measure)?;
    Ok((metrics, sim))
}

/// One sweep point: a label, the configuration, and (after running) the
/// measured metrics.
#[derive(Debug)]
pub struct SweepPoint<L> {
    /// Caller-provided label (x-axis value, scenario tag).
    pub label: L,
    /// Measured metrics.
    pub metrics: RunMetrics,
}

/// Run a set of independent configurations in parallel (one OS thread per
/// point, bounded by available parallelism) and return results in input
/// order. Each simulation is single-threaded and deterministic; only the
/// sweep is parallelised. Workers claim indices from a single atomic
/// cursor — the only shared-write state — and send `(index, result)`
/// pairs back over a channel, so there is no per-item lock traffic at
/// all (the old scheme wrapped every work item and every result slot in
/// its own `Mutex`).
///
/// Every configuration is validated up front, so a bad point fails fast
/// before any simulation spins up; a mid-sweep watchdog stall surfaces as
/// the first erroring point's [`RunError`].
///
/// Worker panics are contained at the point boundary: a panicking point
/// becomes [`RunError::WorkerPanicked`] (carrying the point index, its
/// label, and the panic payload) while every other point still runs to
/// completion — one poisoned configuration cannot take down a campaign's
/// whole grid.
pub fn sweep<L: Send + std::fmt::Debug>(
    points: Vec<(L, TestbedConfig)>,
    plan: RunPlan,
) -> Result<Vec<SweepPoint<L>>, RunError> {
    sweep_with(points, plan, run)
}

/// [`sweep`] with a caller-supplied runner for one point. The panic
/// containment contract is tested through this seam (the production
/// runner is panic-free by design, so a panicking stand-in is the only
/// way to exercise the recovery path).
pub fn sweep_with<L: Send + std::fmt::Debug>(
    points: Vec<(L, TestbedConfig)>,
    plan: RunPlan,
    runner: impl Fn(TestbedConfig, RunPlan) -> Result<RunMetrics, RunError> + Sync,
) -> Result<Vec<SweepPoint<L>>, RunError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    for (_, cfg) in &points {
        cfg.validate()?;
    }
    let n = points.len();
    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let mut labels: Vec<Option<L>> = Vec::with_capacity(n);
    let mut configs: Vec<TestbedConfig> = Vec::with_capacity(n);
    for (label, cfg) in points {
        labels.push(Some(label));
        configs.push(cfg);
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<RunMetrics, RunError>)>();
    let runner = &runner;
    std::thread::scope(|scope| {
        for _ in 0..parallelism {
            let tx = tx.clone();
            let cursor = &cursor;
            let configs = &configs;
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = configs.get(idx) else {
                    break;
                };
                // Contain a panicking point so the thread survives to run
                // its remaining points; the label is filled in later (the
                // worker only knows indices).
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    runner(cfg.clone(), plan)
                }))
                .unwrap_or_else(|payload| {
                    Err(RunError::WorkerPanicked {
                        point: idx,
                        label: String::new(),
                        message: panic_message(payload.as_ref()),
                    })
                });
                // The receiver outlives the scope, so sends cannot fail.
                let _ = tx.send((idx, outcome));
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<Result<RunMetrics, RunError>>> = (0..n).map(|_| None).collect();
    for (idx, outcome) in rx {
        slots[idx] = Some(outcome);
    }
    slots
        .into_iter()
        .zip(&mut labels)
        .map(|(slot, label)| {
            let metrics = match slot.expect("all points ran") {
                Ok(m) => m,
                Err(RunError::WorkerPanicked { point, message, .. }) => {
                    return Err(RunError::WorkerPanicked {
                        point,
                        label: format!("{:?}", label.as_ref().expect("label present")),
                        message,
                    });
                }
                Err(e) => return Err(e),
            };
            Ok(SweepPoint {
                label: label.take().expect("each label consumed once"),
                metrics,
            })
        })
        .collect()
}

/// Render a caught panic payload to text (empty for non-string payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(threads: u32) -> TestbedConfig {
        TestbedConfig {
            senders: 4,
            receiver_threads: threads,
            ..TestbedConfig::default()
        }
    }

    #[test]
    fn single_run_produces_traffic() {
        let m = run(tiny_cfg(2), RunPlan::quick()).expect("valid config runs");
        assert!(m.delivered_packets > 1000);
        assert!(m.app_throughput_gbps() > 1.0);
    }

    #[test]
    fn sweep_preserves_order_and_labels() {
        let points = vec![
            (2u32, tiny_cfg(2)),
            (3u32, tiny_cfg(3)),
            (4u32, tiny_cfg(4)),
        ];
        let out = sweep(points, RunPlan::quick()).expect("valid configs run");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].label, 2);
        assert_eq!(out[1].label, 3);
        assert_eq!(out[2].label, 4);
        // More receiver cores, more CPU capacity, more throughput.
        assert!(out[2].metrics.app_throughput_gbps() > out[0].metrics.app_throughput_gbps());
    }

    #[test]
    fn sweep_matches_sequential_run() {
        // Parallel execution must not perturb determinism.
        let par = sweep(vec![((), tiny_cfg(2))], RunPlan::quick()).unwrap();
        let seq = run(tiny_cfg(2), RunPlan::quick()).unwrap();
        assert_eq!(par[0].metrics.delivered_packets, seq.delivered_packets);
        assert_eq!(par[0].metrics.host_drops(), seq.host_drops());
        assert_eq!(par[0].metrics.iotlb_misses, seq.iotlb_misses);
    }

    #[test]
    fn panicking_point_is_contained_and_typed() {
        // Point 1 panics; points 0 and 2 must still complete, and the
        // sweep must surface a typed WorkerPanicked naming the point.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        // Silence the default panic hook's backtrace noise for the
        // intentional panic (restored before asserting).
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = sweep_with(
            vec![
                ("ok-a", tiny_cfg(2)),
                ("boom", tiny_cfg(3)),
                ("ok-b", tiny_cfg(4)),
            ],
            RunPlan::quick(),
            |cfg, plan| {
                if cfg.receiver_threads == 3 {
                    panic!("injected worker panic");
                }
                let m = run(cfg, plan)?;
                completed.fetch_add(1, Ordering::SeqCst);
                Ok(m)
            },
        );
        std::panic::set_hook(prev);
        let err = out.expect_err("panicking point must surface");
        match &err {
            RunError::WorkerPanicked {
                point,
                label,
                message,
            } => {
                assert_eq!(*point, 1);
                assert!(label.contains("boom"), "{label}");
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other}"),
        }
        assert_eq!(
            completed.load(Ordering::SeqCst),
            2,
            "surviving points must still run to completion"
        );
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let cfg = TestbedConfig {
            senders: 0,
            ..TestbedConfig::default()
        };
        let err = run(cfg.clone(), RunPlan::quick()).unwrap_err();
        assert!(matches!(err, RunError::InvalidConfig(_)), "{err}");
        let err = sweep(vec![((), cfg)], RunPlan::quick()).unwrap_err();
        assert!(matches!(err, RunError::InvalidConfig(_)));
    }
}
