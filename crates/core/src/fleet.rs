//! Coupled multi-host fleets on the deterministic parallel engine.
//!
//! A [`Fleet`] is N [`Testbed`] hosts joined through inter-host fabric
//! links with a configurable minimum latency — the conservative parallel
//! engine's lookahead — so cross-host incast and fan-in workloads become
//! expressible: host `b` receives a remote flow from each of its `fanin`
//! upstream neighbours `(b+1) % N … (b+fanin) % N`, on top of its own
//! local sender population. Remote data serialises through the sender's
//! access link, crosses the fabric, and traverses the destination's
//! *full* receive datapath (incast switch → NIC buffer → PCIe/IOMMU DMA
//! → receiver core → fabric ACK), so the paper's host-congestion effects
//! compose across hosts.
//!
//! Determinism: each host's RNG seed derives from the fleet seed through
//! [`stream_seed`] under [`HOST_SEED_DOMAIN`] — a pure function of
//! `(fleet_seed, host_id)`. Shard count is *not* an input anywhere in
//! the build or wiring path, and the parallel engine's epoch/merge rules
//! are shard-count-invariant, so `RunMetrics`, golden digests and
//! telemetry streams are bit-identical at any `--shards` value
//! (`tests/parallel.rs` pins this at 1/2/4/8).

use crate::experiment::RunPlan;
use hostcc_host::ConfigError;
use hostcc_host::{FleetHost, RunError, RunMetrics, Simulation, Testbed, TestbedConfig};
use hostcc_sim::{
    fnv1a_64, stream_seed, ParallelEngine, SimDuration, SimTime, SnapError, SnapReader, SnapWriter,
};

/// Domain constant separating per-host seed derivation from every other
/// `stream_seed` consumer (per-thread recycling streams use the raw
/// config seed; fault RNGs use the `0xFA017` stream). XORed into the
/// fleet seed before the per-host stream split.
pub const HOST_SEED_DOMAIN: u64 = 0x48_4F_53_54_43_43_u64; // "HOSTCC"

/// A multi-host fleet description: topology + per-host template.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of hosts.
    pub hosts: u32,
    /// Fleet-level seed; per-host seeds derive from it via
    /// [`stream_seed`] under [`HOST_SEED_DOMAIN`].
    pub seed: u64,
    /// Worker threads for the parallel engine (1 = serial execution of
    /// the identical epoch schedule).
    pub shards: u32,
    /// Minimum inter-host fabric latency — the engine's lookahead. Must
    /// be positive; larger values mean longer epochs (more parallelism)
    /// and slower cross-host control loops, exactly as in real fabrics.
    pub fabric_latency: SimDuration,
    /// Remote flows terminating at each host (from that many distinct
    /// upstream neighbours). 0 = uncoupled hosts.
    pub fanin: u32,
    /// Per-host configuration template. `seed` is overwritten per host;
    /// everything else (including telemetry and fault plans) applies to
    /// every host, modulated by `heterogeneous`.
    pub base: TestbedConfig,
    /// Vary host shapes around the template (receiver threads and
    /// antagonist load, in a fixed pattern keyed on host id) so the
    /// fleet reproduces the paper's Fig. 1 spread of host conditions.
    pub heterogeneous: bool,
}

impl FleetConfig {
    /// The default coupled-fleet scenario: 8 heterogeneous hosts in a
    /// fan-in-2 ring over a 8 µs fabric — every host both serves local
    /// senders and terminates two remote flows. This is the workload the
    /// differential suite and the `parallel_fleet` bench entries run.
    pub fn coupled_fleet() -> Self {
        FleetConfig {
            hosts: 8,
            seed: 0xF1EE7,
            shards: 1,
            fabric_latency: SimDuration::from_micros(8),
            fanin: 2,
            base: TestbedConfig {
                senders: 12,
                receiver_threads: 8,
                ..TestbedConfig::default()
            },
            heterogeneous: true,
        }
    }

    /// The configuration host `host` runs, with its derived seed.
    pub fn host_config(&self, host: u32) -> TestbedConfig {
        let mut cfg = self.base.clone();
        cfg.seed = stream_seed(self.seed ^ HOST_SEED_DOMAIN, host as u64);
        if self.heterogeneous {
            match host % 4 {
                1 => {
                    cfg.receiver_threads += 2;
                    cfg.antagonist_cores = 2;
                }
                2 => cfg.antagonist_cores = 4,
                3 => cfg.receiver_threads += 4,
                _ => {}
            }
        }
        cfg
    }

    /// Check the fleet-level knobs, then every host configuration.
    pub fn validate(&self) -> Result<(), RunError> {
        if self.hosts == 0 {
            return Err(ConfigError::InvalidFleet {
                reason: "hosts must be at least 1",
            }
            .into());
        }
        if self.fabric_latency.as_nanos() == 0 {
            return Err(ConfigError::InvalidFleet {
                reason: "fabric_latency must be positive (it is the lookahead)",
            }
            .into());
        }
        if self.fanin > 0 && self.hosts < 2 {
            return Err(ConfigError::InvalidFleet {
                reason: "fan-in needs at least 2 hosts",
            }
            .into());
        }
        if self.fanin >= self.hosts && self.fanin > 0 {
            return Err(ConfigError::InvalidFleet {
                reason: "fanin must be smaller than the host count",
            }
            .into());
        }
        for h in 0..self.hosts {
            self.host_config(h).validate()?;
        }
        Ok(())
    }

    /// Identity hash over everything that determines the fleet's event
    /// evolution. The shard count is deliberately *excluded*: the engine
    /// is shard-count-invariant, so a checkpoint taken at `--shards 1`
    /// must restore at `--shards 4` (and vice versa) bit-identically.
    pub fn fingerprint(&self) -> u64 {
        let id = format!(
            "hosts={};seed={};fabric_latency_ns={};fanin={};heterogeneous={};base={:?}",
            self.hosts,
            self.seed,
            self.fabric_latency.as_nanos(),
            self.fanin,
            self.heterogeneous,
            self.base,
        );
        fnv1a_64(id.as_bytes())
    }
}

/// Build every host testbed and wire the cross-host flows, in
/// deterministic host-id order, without starting anything. `Fleet::new`
/// starts these; checkpoint restore instead overwrites their state.
fn build_wired_testbeds(cfg: &FleetConfig) -> Vec<Testbed> {
    let n = cfg.hosts;
    let mut testbeds: Vec<Testbed> = (0..n)
        .map(|h| {
            let mut tb = Testbed::new(cfg.host_config(h));
            tb.enable_fabric(h, cfg.fabric_latency);
            tb
        })
        .collect();
    // Fan-in wiring: host b receives from its next `fanin` neighbours.
    // The receiver half needs the sender's return address up front, so
    // the sender's upcoming flow index is read before either side is
    // allocated.
    for b in 0..n {
        for k in 1..=cfg.fanin {
            let a = (b + k) % n;
            let thread = (k - 1) % testbeds[b as usize].config().receiver_threads.max(1);
            let src_flow = testbeds[a as usize].next_remote_flow();
            let (_, dst_id, frontier) =
                testbeds[b as usize].add_remote_receiver(a, src_flow, thread);
            let got = testbeds[a as usize].add_remote_sender(b, dst_id, frontier);
            debug_assert_eq!(got, src_flow, "sender slot prediction out of sync");
        }
    }
    testbeds
}

/// A built fleet, ready to run in epoch slices on the parallel engine.
pub struct Fleet {
    engine: ParallelEngine<FleetHost>,
    cfg: FleetConfig,
}

impl Fleet {
    /// Build every host, wire the cross-host flows (in deterministic
    /// host-id order — wiring is part of the topology, never of the
    /// execution schedule), and start the simulations.
    pub fn new(cfg: &FleetConfig) -> Result<Fleet, RunError> {
        cfg.validate()?;
        let hosts: Vec<FleetHost> = build_wired_testbeds(cfg)
            .into_iter()
            .map(|tb| FleetHost::new(Simulation::from_testbed(tb)))
            .collect();
        Ok(Fleet {
            engine: ParallelEngine::new(hosts, cfg.shards as usize, cfg.fabric_latency),
            cfg: cfg.clone(),
        })
    }

    /// The configuration this fleet was built from.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Serialize the whole fleet — epoch counter plus every host's full
    /// checkpoint — into one self-validating envelope. Call only between
    /// `run_to` slices (a slot boundary: cross-host messages are drained
    /// into destination queues, so there is no engine message state to
    /// save). Refuses, typed, when any host's watchdog has tripped.
    ///
    /// Bit-exact resume requires the comparison run to share the same
    /// `run_to` slice schedule: every deadline clamps the epoch grid,
    /// which fixes how same-timestamp cross-host envelopes interleave
    /// with local events. The campaign runner therefore slices fleets at
    /// its checkpoint cadence whether or not a checkpoint is written.
    pub fn save_checkpoint(&self) -> Result<Vec<u8>, SnapError> {
        if self.engine.hosts().iter().any(|h| h.stalled_at().is_some()) {
            return Err(SnapError::Unsupported("checkpoint of a stalled fleet"));
        }
        let mut w = SnapWriter::new();
        w.u64(self.cfg.fingerprint());
        w.u64(self.engine.epochs());
        w.usize(self.engine.hosts().len());
        for h in self.engine.hosts() {
            let inner = h.sim().save_checkpoint()?;
            w.bytes(&inner);
        }
        Ok(w.into_envelope())
    }

    /// Rebuild a fleet from [`save_checkpoint`](Self::save_checkpoint)
    /// output and the identical configuration — except `shards`, which
    /// may differ freely (determinism is shard-count-invariant, so a
    /// resume may use more or fewer workers than the original run). Any
    /// corruption, truncation, version or config mismatch is a typed
    /// error, never a panic.
    pub fn restore_checkpoint(cfg: &FleetConfig, bytes: &[u8]) -> Result<Fleet, RunError> {
        cfg.validate()?;
        let mut r = SnapReader::open(bytes)?;
        if r.u64()? != cfg.fingerprint() {
            return Err(SnapError::Corrupt("fleet fingerprint mismatch").into());
        }
        let epochs = r.u64()?;
        // Each host entry is at least a length prefix (8 B).
        let n = r.len(8)?;
        if n != cfg.hosts as usize {
            return Err(SnapError::Corrupt("fleet host count mismatch").into());
        }
        let mut hosts = Vec::with_capacity(n);
        for tb in build_wired_testbeds(cfg) {
            let inner = r.bytes()?;
            hosts.push(FleetHost::new(Simulation::restore_checkpoint_into(
                tb, inner,
            )?));
        }
        r.finish()?;
        let mut engine = ParallelEngine::new(hosts, cfg.shards as usize, cfg.fabric_latency);
        engine.set_epochs(epochs);
        Ok(Fleet {
            engine,
            cfg: cfg.clone(),
        })
    }

    /// Warm up, arm every host's metrics at the same instant, measure,
    /// and snapshot — the fleet analogue of `Simulation::try_run`. A
    /// tripped per-host watchdog surfaces as that host's
    /// [`RunError::Stalled`].
    pub fn run(&mut self, plan: RunPlan) -> Result<Vec<RunMetrics>, RunError> {
        let t0 = self.now();
        let t1 = t0 + plan.warmup;
        self.engine.run_to(t1);
        self.check_stalls()?;
        for h in self.engine.hosts_mut() {
            h.sim_mut().world_mut().arm_metrics(t1);
        }
        let t2 = t1 + plan.measure;
        self.engine.run_to(t2);
        self.check_stalls()?;
        Ok(self
            .engine
            .hosts_mut()
            .iter_mut()
            .map(|h| h.sim_mut().world_mut().snapshot(t2))
            .collect())
    }

    fn check_stalls(&mut self) -> Result<(), RunError> {
        let shards = self.engine.shards();
        for (i, h) in self.engine.hosts_mut().iter_mut().enumerate() {
            // Attribute the stall: which host froze, and which worker
            // shard was driving it (hosts partition round-robin, so host
            // i runs on shard i % S).
            h.check_stalled().map_err(|e| match e {
                RunError::Stalled {
                    at,
                    pending,
                    telemetry,
                    ..
                } => RunError::Stalled {
                    at,
                    pending,
                    host: Some(i),
                    shard: Some(i % shards),
                    telemetry,
                },
                other => other,
            })?;
        }
        Ok(())
    }

    /// Current fleet time (all host clocks agree between `run_to` slices).
    pub fn now(&self) -> SimTime {
        self.engine
            .hosts()
            .first()
            .map(|h| h.sim().now())
            .unwrap_or(SimTime::ZERO)
    }

    /// The hosts, in fleet-id order.
    pub fn hosts(&self) -> &[FleetHost] {
        self.engine.hosts()
    }

    /// Mutable host access (telemetry sinks, per-host inspection).
    pub fn hosts_mut(&mut self) -> &mut [FleetHost] {
        self.engine.hosts_mut()
    }

    /// Advance the whole fleet to an absolute deadline without arming or
    /// snapshotting anything (bench slices).
    pub fn run_to(&mut self, deadline: SimTime) -> Result<(), RunError> {
        self.engine.run_to(deadline);
        self.check_stalls()
    }

    /// Events dispatched across all hosts over the fleet's lifetime.
    pub fn dispatched_total(&self) -> u64 {
        self.engine
            .hosts()
            .iter()
            .map(|h| h.sim().dispatched_total())
            .sum()
    }

    /// Lookahead-bounded epochs executed (shard-count invariant).
    pub fn epochs(&self) -> u64 {
        self.engine.epochs()
    }

    /// Worker-thread count the engine runs on.
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(shards: u32) -> FleetConfig {
        FleetConfig {
            hosts: 4,
            shards,
            base: TestbedConfig {
                senders: 4,
                receiver_threads: 2,
                ..TestbedConfig::default()
            },
            ..FleetConfig::coupled_fleet()
        }
    }

    #[test]
    fn coupled_fleet_moves_cross_host_data() {
        let mut fleet = Fleet::new(&small_fleet(1)).expect("valid fleet");
        let per_host = fleet
            .run(RunPlan {
                warmup: SimDuration::from_millis(1),
                measure: SimDuration::from_millis(3),
            })
            .expect("fleet runs");
        assert_eq!(per_host.len(), 4);
        for (h, m) in per_host.iter().enumerate() {
            assert!(
                m.delivered_packets > 100,
                "host {h} delivered {}",
                m.delivered_packets
            );
        }
        assert!(fleet.epochs() > 0, "coupled hosts must exchange epochs");
    }

    #[test]
    fn fleet_is_deterministic_across_shard_counts() {
        let run = |shards: u32| {
            let mut fleet = Fleet::new(&small_fleet(shards)).expect("valid fleet");
            let m = fleet
                .run(RunPlan {
                    warmup: SimDuration::from_millis(1),
                    measure: SimDuration::from_millis(2),
                })
                .expect("fleet runs");
            let per_host: Vec<(u64, u64, u64)> = m
                .iter()
                .map(|m| {
                    (
                        m.delivered_packets,
                        m.delivered_payload_bytes,
                        m.host_drops(),
                    )
                })
                .collect();
            (per_host, fleet.epochs(), fleet.dispatched_total())
        };
        let reference = run(1);
        assert_eq!(run(2), reference, "2 shards");
        assert_eq!(run(3), reference, "3 shards");
    }

    #[test]
    fn fleet_validation_rejects_bad_topologies() {
        let mut cfg = small_fleet(1);
        cfg.fabric_latency = SimDuration::ZERO;
        assert!(Fleet::new(&cfg).is_err());
        let mut cfg = small_fleet(1);
        cfg.fanin = 4; // == hosts
        assert!(Fleet::new(&cfg).is_err());
        let mut cfg = small_fleet(1);
        cfg.hosts = 0;
        assert!(Fleet::new(&cfg).is_err());
    }

    /// Checkpoint/restore at a `run_to` boundary is bit-exact: a run
    /// that saves and restores mid-warmup (even at a different shard
    /// count) matches a run driven through the *same slice schedule*
    /// without any checkpoint. The slice schedule matters: the epoch
    /// grid (`gmin + lookahead`, clamped at every `run_to` deadline)
    /// fixes how cross-host envelopes interleave with same-timestamp
    /// local events, so the reference must share the cadence — which is
    /// why the campaign runner always drives fleets at its checkpoint
    /// cadence whether or not a checkpoint is actually written.
    #[test]
    fn fleet_checkpoint_roundtrip_is_bit_identical() {
        let plan = RunPlan {
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(2),
        };
        let mid = SimTime::ZERO + SimDuration::from_micros(500);
        let t1 = SimTime::ZERO + plan.warmup;
        let t2 = t1 + plan.measure;
        let finish = |fleet: &mut Fleet| -> Vec<RunMetrics> {
            fleet.run_to(t1).expect("warmup");
            for h in fleet.hosts_mut() {
                h.sim_mut().world_mut().arm_metrics(t1);
            }
            fleet.run_to(t2).expect("measure");
            fleet
                .hosts_mut()
                .iter_mut()
                .map(|h| h.sim_mut().world_mut().snapshot(t2))
                .collect()
        };

        // Reference: same slice schedule, no checkpoint taken.
        let mut reference = Fleet::new(&small_fleet(1)).expect("valid fleet");
        reference.run_to(mid).expect("front half");
        let ref_metrics = finish(&mut reference);

        // Interrupted: checkpoint at `mid`, restore at a DIFFERENT shard
        // count, finish identically.
        let mut front = Fleet::new(&small_fleet(1)).expect("valid fleet");
        front.run_to(mid).expect("front half");
        let snap = front.save_checkpoint().expect("checkpoint");
        drop(front);
        let mut back = Fleet::restore_checkpoint(&small_fleet(4), &snap).expect("restore");
        assert_eq!(back.shards(), 4, "resume honours the new shard count");
        let resumed = finish(&mut back);

        assert_eq!(ref_metrics.len(), resumed.len());
        for (h, (a, b)) in ref_metrics.iter().zip(resumed.iter()).enumerate() {
            assert_eq!(
                a.delivered_packets, b.delivered_packets,
                "host {h} delivered_packets"
            );
            assert_eq!(
                a.delivered_payload_bytes, b.delivered_payload_bytes,
                "host {h} bytes"
            );
            assert_eq!(a.host_drops(), b.host_drops(), "host {h} drops");
            assert_eq!(a.retransmits, b.retransmits, "host {h} retransmits");
            assert_eq!(
                a.host_delay_p99_us().to_bits(),
                b.host_delay_p99_us().to_bits(),
                "host {h} p99"
            );
        }
    }

    #[test]
    fn fleet_checkpoint_rejects_mismatched_config() {
        let mut fleet = Fleet::new(&small_fleet(1)).expect("valid fleet");
        fleet
            .run_to(SimTime::ZERO + SimDuration::from_micros(200))
            .expect("runs");
        let snap = fleet.save_checkpoint().expect("checkpoint");

        // Different seed → fingerprint mismatch, typed error.
        let mut other = small_fleet(1);
        other.seed ^= 1;
        let err = match Fleet::restore_checkpoint(&other, &snap) {
            Ok(_) => panic!("mismatched seed must not restore"),
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("fingerprint"),
            "unexpected error: {err}"
        );

        // Different shard count alone is NOT a mismatch.
        assert!(Fleet::restore_checkpoint(&small_fleet(2), &snap).is_ok());

        // Corruption → typed error, never a panic.
        let mut bad = snap.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(Fleet::restore_checkpoint(&small_fleet(1), &bad).is_err());
        let truncated = &snap[..snap.len() - 9];
        assert!(Fleet::restore_checkpoint(&small_fleet(1), truncated).is_err());
    }

    #[test]
    fn shard_count_does_not_change_host_seeds() {
        // The per-host seed is a pure function of (fleet seed, host id):
        // shard count appears nowhere in the derivation.
        let a = small_fleet(1);
        let b = small_fleet(8);
        for h in 0..a.hosts {
            assert_eq!(a.host_config(h).seed, b.host_config(h).seed);
        }
    }
}
