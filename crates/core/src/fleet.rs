//! Coupled multi-host fleets on the deterministic parallel engine.
//!
//! A [`Fleet`] is N [`Testbed`] hosts joined through inter-host fabric
//! links with a configurable minimum latency — the conservative parallel
//! engine's lookahead — so cross-host incast and fan-in workloads become
//! expressible. The [`FleetTopology`] decides who talks to whom:
//!
//! * **Fan-in ring** (`ring:K`) — host `b` receives a remote flow from
//!   each of its `K` upstream neighbours `(b+1) % N … (b+K) % N`, on top
//!   of its own local sender population. The original PR 8 topology.
//! * **Incast tree** (`tree:K`) — host `i > 0` sends to its parent
//!   `(i-1) / K`; interior hosts aggregate up to `K` children, the root
//!   aggregates the whole fleet's traffic.
//! * **Rack fabric** (`rack:K`) — hosts group into racks of `K`; rack
//!   members send to their rack head (a top-of-rack hop), and every rack
//!   head forwards to host 0 (the aggregation layer). `rack:1` is a pure
//!   N→1 incast star.
//!
//! Remote data serialises through the sender's access link, crosses the
//! fabric, and traverses the destination's *full* receive datapath
//! (incast switch → NIC buffer → PCIe/IOMMU DMA → receiver core →
//! fabric ACK), so the paper's host-congestion effects compose across
//! hosts. Remote flows that converge on one host contend in that host's
//! shared incast switch and NIC buffer — the shared-switch contention
//! link of the tree and rack fabrics. (Cross-host switch state would
//! break conservative parallelism; convergence points are where sharing
//! is observable, and that is exactly where the model places it.)
//!
//! Determinism: each host's RNG seed derives from the fleet seed through
//! [`stream_seed`] under [`HOST_SEED_DOMAIN`] — a pure function of
//! `(fleet_seed, host_id)`. Neither shard count nor host→shard placement
//! is an input anywhere in the build or wiring path, and the parallel
//! engine's epoch/merge rules are shard-count- and placement-invariant,
//! so `RunMetrics`, golden digests and telemetry streams are
//! bit-identical at any `--shards` value and under any placement —
//! including the measured-cost rebalanced one ([`Fleet::rebalance`]).
//! `tests/parallel.rs` pins both invariants.

use crate::experiment::RunPlan;
use hostcc_host::ConfigError;
use hostcc_host::{FleetHost, RunError, RunMetrics, Simulation, Testbed, TestbedConfig};
use hostcc_sim::{
    fnv1a_64, stream_seed, ParallelEngine, SimDuration, SimTime, SnapError, SnapReader, SnapWriter,
};

/// Domain constant separating per-host seed derivation from every other
/// `stream_seed` consumer (per-thread recycling streams use the raw
/// config seed; fault RNGs use the `0xFA017` stream). XORed into the
/// fleet seed before the per-host stream split.
pub const HOST_SEED_DOMAIN: u64 = 0x48_4F_53_54_43_43_u64; // "HOSTCC"

/// Who sends to whom in a fleet. Every variant yields a deterministic
/// edge list (sender → receiver) in receiver-major order; receiver
/// threads are assigned round-robin per receiving host in that order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetTopology {
    /// Host `b` receives from its `fanin` upstream ring neighbours
    /// `(b+1) % N … (b+fanin) % N`. `fanin: 0` = uncoupled hosts (no
    /// fabric traffic at all — the sparse extreme).
    FaninRing {
        /// Remote flows terminating at each host.
        fanin: u32,
    },
    /// Host `i > 0` sends to its parent `(i-1) / fanout`: interior
    /// hosts aggregate up to `fanout` children through their shared
    /// incast switch, the root aggregates the fleet.
    IncastTree {
        /// Maximum children per interior host.
        fanout: u32,
    },
    /// Racks of `hosts_per_rack`; members send to their rack head
    /// (hosts `0, K, 2K, …`), rack heads forward to host 0. With
    /// `hosts_per_rack: 1` every host is a head — an N→1 incast star.
    RackFabric {
        /// Hosts per rack, including the head.
        hosts_per_rack: u32,
    },
}

impl FleetTopology {
    /// Parse the CLI/manifest spelling: `ring:K`, `tree:K`, `rack:K`,
    /// or the bare names with their defaults (`ring` = ring:2, `tree` =
    /// tree:4, `rack` = rack:16).
    pub fn parse(s: &str) -> Result<FleetTopology, String> {
        let (kind, param) = match s.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (s, None),
        };
        let parse_param = |default: u32| -> Result<u32, String> {
            match param {
                None => Ok(default),
                Some(p) => p
                    .parse::<u32>()
                    .map_err(|_| format!("invalid topology parameter '{p}' in '{s}'")),
            }
        };
        match kind {
            "ring" => Ok(FleetTopology::FaninRing {
                fanin: parse_param(2)?,
            }),
            "tree" => Ok(FleetTopology::IncastTree {
                fanout: parse_param(4)?,
            }),
            "rack" => Ok(FleetTopology::RackFabric {
                hosts_per_rack: parse_param(16)?,
            }),
            _ => Err(format!(
                "unknown topology '{s}' (expected ring:K, tree:K, or rack:K)"
            )),
        }
    }

    /// The cross-host edges `(sender, receiver)` for an `n`-host fleet,
    /// in receiver-major deterministic order. Wiring order is part of
    /// the topology (it fixes flow ids and thread assignment), never of
    /// the execution schedule.
    pub fn edges(&self, n: u32) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        match *self {
            FleetTopology::FaninRing { fanin } => {
                for b in 0..n {
                    for k in 1..=fanin {
                        edges.push(((b + k) % n, b));
                    }
                }
            }
            FleetTopology::IncastTree { fanout } => {
                let fanout = fanout.max(1) as u64;
                for b in 0..n as u64 {
                    let first = b * fanout + 1;
                    let last = (b + 1) * fanout;
                    for c in first..=last.min(n as u64 - 1) {
                        edges.push((c as u32, b as u32));
                    }
                }
            }
            FleetTopology::RackFabric { hosts_per_rack } => {
                let k = hosts_per_rack.max(1);
                for b in (0..n).step_by(k as usize) {
                    for c in (b + 1)..(b + k).min(n) {
                        edges.push((c, b));
                    }
                    if b == 0 {
                        let mut head = k;
                        while head < n {
                            edges.push((head, 0));
                            head += k;
                        }
                    }
                }
            }
        }
        edges
    }

    fn validate(&self, hosts: u32) -> Result<(), ConfigError> {
        match *self {
            FleetTopology::FaninRing { fanin } => {
                if fanin > 0 && hosts < 2 {
                    return Err(ConfigError::InvalidFleet {
                        reason: "fan-in needs at least 2 hosts",
                    });
                }
                if fanin >= hosts && fanin > 0 {
                    return Err(ConfigError::InvalidFleet {
                        reason: "fanin must be smaller than the host count",
                    });
                }
            }
            FleetTopology::IncastTree { fanout } => {
                if fanout == 0 {
                    return Err(ConfigError::InvalidFleet {
                        reason: "tree fanout must be at least 1",
                    });
                }
            }
            FleetTopology::RackFabric { hosts_per_rack } => {
                if hosts_per_rack == 0 {
                    return Err(ConfigError::InvalidFleet {
                        reason: "rack size must be at least 1",
                    });
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for FleetTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FleetTopology::FaninRing { fanin } => write!(f, "ring:{fanin}"),
            FleetTopology::IncastTree { fanout } => write!(f, "tree:{fanout}"),
            FleetTopology::RackFabric { hosts_per_rack } => write!(f, "rack:{hosts_per_rack}"),
        }
    }
}

/// A multi-host fleet description: topology + per-host template.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of hosts.
    pub hosts: u32,
    /// Fleet-level seed; per-host seeds derive from it via
    /// [`stream_seed`] under [`HOST_SEED_DOMAIN`].
    pub seed: u64,
    /// Worker threads for the parallel engine (1 = serial execution of
    /// the identical epoch schedule). Validation bounds it by the host
    /// count — a shard with no hosts does no work.
    pub shards: u32,
    /// Minimum inter-host fabric latency — the engine's lookahead. Must
    /// be positive; larger values mean longer epochs (more parallelism)
    /// and slower cross-host control loops, exactly as in real fabrics.
    pub fabric_latency: SimDuration,
    /// Who sends to whom (see [`FleetTopology`]).
    pub topology: FleetTopology,
    /// Per-host configuration template. `seed` is overwritten per host;
    /// everything else (including telemetry and fault plans) applies to
    /// every host, modulated by `heterogeneous`.
    pub base: TestbedConfig,
    /// Vary host shapes around the template (receiver threads and
    /// antagonist load, in a fixed pattern keyed on host id) so the
    /// fleet reproduces the paper's Fig. 1 spread of host conditions.
    pub heterogeneous: bool,
}

impl FleetConfig {
    /// The default coupled-fleet scenario: 8 heterogeneous hosts in a
    /// fan-in-2 ring over a 8 µs fabric — every host both serves local
    /// senders and terminates two remote flows. This is the workload the
    /// differential suite and the `parallel_fleet` bench entries run.
    pub fn coupled_fleet() -> Self {
        FleetConfig {
            hosts: 8,
            seed: 0xF1EE7,
            shards: 1,
            fabric_latency: SimDuration::from_micros(8),
            topology: FleetTopology::FaninRing { fanin: 2 },
            base: TestbedConfig {
                senders: 12,
                receiver_threads: 8,
                ..TestbedConfig::default()
            },
            heterogeneous: true,
        }
    }

    /// A scale-out fleet of light-weight hosts (see
    /// [`TestbedConfig::light`]) in a fan-out-4 incast tree — the
    /// configuration the scaling bench and CI smoke push to 1k/10k
    /// hosts. Heterogeneity stays on: host shapes vary in a period-4
    /// pattern, which under round-robin placement at 4 shards aligns
    /// every heavy host onto the same worker — precisely the imbalance
    /// measured-cost rebalancing exists to fix.
    pub fn light_fleet(hosts: u32, shards: u32) -> Self {
        FleetConfig {
            hosts,
            seed: 0x11647,
            shards,
            fabric_latency: SimDuration::from_micros(8),
            topology: FleetTopology::IncastTree { fanout: 4 },
            base: TestbedConfig::light(1),
            heterogeneous: true,
        }
    }

    /// The configuration host `host` runs, with its derived seed.
    pub fn host_config(&self, host: u32) -> TestbedConfig {
        let mut cfg = self.base.clone();
        cfg.seed = stream_seed(self.seed ^ HOST_SEED_DOMAIN, host as u64);
        if self.heterogeneous {
            match host % 4 {
                1 => {
                    cfg.receiver_threads += 2;
                    cfg.antagonist_cores = 2;
                }
                2 => cfg.antagonist_cores = 4,
                3 => cfg.receiver_threads += 4,
                _ => {}
            }
        }
        cfg
    }

    /// Check the fleet-level knobs (hosts ≥ 1, 1 ≤ shards ≤ hosts,
    /// positive lookahead, topology constraints such as fanin < hosts),
    /// then every host configuration. Violations surface as the typed
    /// [`ConfigError::InvalidFleet`], which the CLI renders as
    /// `error: …` with exit 2.
    pub fn validate(&self) -> Result<(), RunError> {
        if self.hosts == 0 {
            return Err(ConfigError::InvalidFleet {
                reason: "hosts must be at least 1",
            }
            .into());
        }
        if self.shards == 0 {
            return Err(ConfigError::InvalidFleet {
                reason: "shards must be at least 1",
            }
            .into());
        }
        if self.shards > self.hosts {
            return Err(ConfigError::InvalidFleet {
                reason: "shards must not exceed the host count",
            }
            .into());
        }
        if self.fabric_latency.as_nanos() == 0 {
            return Err(ConfigError::InvalidFleet {
                reason: "fabric_latency must be positive (it is the lookahead)",
            }
            .into());
        }
        self.topology.validate(self.hosts)?;
        for h in 0..self.hosts {
            self.host_config(h).validate()?;
        }
        Ok(())
    }

    /// Identity hash over everything that determines the fleet's event
    /// evolution. The shard count is deliberately *excluded*: the engine
    /// is shard-count- and placement-invariant, so a checkpoint taken at
    /// `--shards 1` must restore at `--shards 4` (and vice versa)
    /// bit-identically.
    pub fn fingerprint(&self) -> u64 {
        let id = format!(
            "hosts={};seed={};fabric_latency_ns={};topology={};heterogeneous={};base={:?}",
            self.hosts,
            self.seed,
            self.fabric_latency.as_nanos(),
            self.topology,
            self.heterogeneous,
            self.base,
        );
        fnv1a_64(id.as_bytes())
    }
}

/// Build every host testbed and wire the cross-host flows, in
/// deterministic host-id order, without starting anything. `Fleet::new`
/// starts these; checkpoint restore instead overwrites their state.
fn build_wired_testbeds(cfg: &FleetConfig) -> Vec<Testbed> {
    let n = cfg.hosts;
    let mut testbeds: Vec<Testbed> = (0..n)
        .map(|h| {
            let mut tb = Testbed::new(cfg.host_config(h));
            tb.enable_fabric(h, cfg.fabric_latency);
            tb
        })
        .collect();
    // Topology wiring, edge by edge in the topology's deterministic
    // receiver-major order; each receiving host spreads its remote flows
    // round-robin over its receiver threads. The receiver half needs the
    // sender's return address up front, so the sender's upcoming flow
    // index is read before either side is allocated.
    let mut rx_count = vec![0u32; n as usize];
    for (a, b) in cfg.topology.edges(n) {
        let thread = rx_count[b as usize] % testbeds[b as usize].config().receiver_threads.max(1);
        rx_count[b as usize] += 1;
        let src_flow = testbeds[a as usize].next_remote_flow();
        let (_, dst_id, frontier) = testbeds[b as usize].add_remote_receiver(a, src_flow, thread);
        let got = testbeds[a as usize].add_remote_sender(b, dst_id, frontier);
        debug_assert_eq!(got, src_flow, "sender slot prediction out of sync");
    }
    testbeds
}

/// A built fleet, ready to run in epoch slices on the parallel engine.
pub struct Fleet {
    engine: ParallelEngine<FleetHost>,
    cfg: FleetConfig,
}

impl Fleet {
    /// Build every host, wire the cross-host flows (in deterministic
    /// host-id order — wiring is part of the topology, never of the
    /// execution schedule), and start the simulations.
    pub fn new(cfg: &FleetConfig) -> Result<Fleet, RunError> {
        cfg.validate()?;
        let hosts: Vec<FleetHost> = build_wired_testbeds(cfg)
            .into_iter()
            .map(|tb| FleetHost::new(Simulation::from_testbed(tb)))
            .collect();
        Ok(Fleet {
            engine: ParallelEngine::new(hosts, cfg.shards as usize, cfg.fabric_latency),
            cfg: cfg.clone(),
        })
    }

    /// The configuration this fleet was built from.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Serialize the whole fleet — epoch counter plus every host's full
    /// checkpoint — into one self-validating envelope. Call only between
    /// `run_to` slices (a slot boundary: cross-host messages are drained
    /// into destination queues, so there is no engine message state to
    /// save). Refuses, typed, when any host's watchdog has tripped.
    ///
    /// Bit-exact resume requires the comparison run to share the same
    /// `run_to` slice schedule: every deadline clamps the epoch grid,
    /// which fixes how same-timestamp cross-host envelopes interleave
    /// with local events. The campaign runner therefore slices fleets at
    /// its checkpoint cadence whether or not a checkpoint is written.
    pub fn save_checkpoint(&self) -> Result<Vec<u8>, SnapError> {
        if self.engine.hosts().iter().any(|h| h.stalled_at().is_some()) {
            return Err(SnapError::Unsupported("checkpoint of a stalled fleet"));
        }
        let mut w = SnapWriter::new();
        w.u64(self.cfg.fingerprint());
        w.u64(self.engine.epochs());
        w.u64(self.engine.super_epochs());
        w.usize(self.engine.hosts().len());
        for h in self.engine.hosts() {
            let inner = h.sim().save_checkpoint()?;
            w.bytes(&inner);
        }
        Ok(w.into_envelope())
    }

    /// Rebuild a fleet from [`save_checkpoint`](Self::save_checkpoint)
    /// output and the identical configuration — except `shards`, which
    /// may differ freely (determinism is shard-count-invariant, so a
    /// resume may use more or fewer workers than the original run). Any
    /// corruption, truncation, version or config mismatch is a typed
    /// error, never a panic.
    pub fn restore_checkpoint(cfg: &FleetConfig, bytes: &[u8]) -> Result<Fleet, RunError> {
        cfg.validate()?;
        let mut r = SnapReader::open(bytes)?;
        if r.u64()? != cfg.fingerprint() {
            return Err(SnapError::Corrupt("fleet fingerprint mismatch").into());
        }
        let epochs = r.u64()?;
        let super_epochs = r.u64()?;
        // Each host entry is at least a length prefix (8 B).
        let n = r.len(8)?;
        if n != cfg.hosts as usize {
            return Err(SnapError::Corrupt("fleet host count mismatch").into());
        }
        let mut hosts = Vec::with_capacity(n);
        for tb in build_wired_testbeds(cfg) {
            let inner = r.bytes()?;
            hosts.push(FleetHost::new(Simulation::restore_checkpoint_into(
                tb, inner,
            )?));
        }
        r.finish()?;
        let mut engine = ParallelEngine::new(hosts, cfg.shards as usize, cfg.fabric_latency);
        engine.set_epochs(epochs);
        engine.set_super_epochs(super_epochs);
        Ok(Fleet {
            engine,
            cfg: cfg.clone(),
        })
    }

    /// Warm up, arm every host's metrics at the same instant, measure,
    /// and snapshot — the fleet analogue of `Simulation::try_run`. A
    /// tripped per-host watchdog surfaces as that host's
    /// [`RunError::Stalled`].
    pub fn run(&mut self, plan: RunPlan) -> Result<Vec<RunMetrics>, RunError> {
        let t0 = self.now();
        let t1 = t0 + plan.warmup;
        self.engine.run_to(t1);
        self.check_stalls()?;
        for h in self.engine.hosts_mut() {
            h.sim_mut().world_mut().arm_metrics(t1);
        }
        let t2 = t1 + plan.measure;
        self.engine.run_to(t2);
        self.check_stalls()?;
        Ok(self
            .engine
            .hosts_mut()
            .iter_mut()
            .map(|h| h.sim_mut().world_mut().snapshot(t2))
            .collect())
    }

    fn check_stalls(&mut self) -> Result<(), RunError> {
        let placement = self.engine.placement().to_vec();
        for (i, h) in self.engine.hosts_mut().iter_mut().enumerate() {
            // Attribute the stall: which host froze, and which worker
            // shard was driving it under the current placement.
            h.check_stalled().map_err(|e| match e {
                RunError::Stalled {
                    at,
                    pending,
                    telemetry,
                    ..
                } => RunError::Stalled {
                    at,
                    pending,
                    host: Some(i),
                    shard: Some(placement[i] as usize),
                    telemetry,
                },
                other => other,
            })?;
        }
        Ok(())
    }

    /// Current fleet time (all host clocks agree between `run_to` slices).
    pub fn now(&self) -> SimTime {
        self.engine
            .hosts()
            .first()
            .map(|h| h.sim().now())
            .unwrap_or(SimTime::ZERO)
    }

    /// The hosts, in fleet-id order.
    pub fn hosts(&self) -> &[FleetHost] {
        self.engine.hosts()
    }

    /// Mutable host access (telemetry sinks, per-host inspection).
    pub fn hosts_mut(&mut self) -> &mut [FleetHost] {
        self.engine.hosts_mut()
    }

    /// Advance the whole fleet to an absolute deadline without arming or
    /// snapshotting anything (bench slices).
    pub fn run_to(&mut self, deadline: SimTime) -> Result<(), RunError> {
        self.engine.run_to(deadline);
        self.check_stalls()
    }

    /// Events dispatched across all hosts over the fleet's lifetime.
    pub fn dispatched_total(&self) -> u64 {
        self.engine
            .hosts()
            .iter()
            .map(|h| h.sim().dispatched_total())
            .sum()
    }

    /// Lookahead-bounded epochs executed (shard-count invariant).
    pub fn epochs(&self) -> u64 {
        self.engine.epochs()
    }

    /// Epochs that batched more than one lookahead window — the barrier
    /// savings super-epoch amortization bought on sparse traffic.
    pub fn super_epochs(&self) -> u64 {
        self.engine.super_epochs()
    }

    /// Worker-thread count the engine runs on.
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// The current host→shard assignment.
    pub fn placement(&self) -> &[u32] {
        self.engine.placement()
    }

    /// Install an explicit host→shard assignment (len == hosts, every
    /// entry < shards). Call between `run_to` slices. Panics on a
    /// malformed map — callers own validation; the differential tests
    /// use this to pin placement-invariance with adversarial layouts.
    pub fn set_placement(&mut self, placement: Vec<u32>) {
        self.engine.set_placement(placement);
    }

    /// Repartition hosts onto shards by measured per-host event cost
    /// (greedy bin-packing of lifetime dispatched counts). Call between
    /// `run_to` slices — typically after a warmup slice, or on restore
    /// from a checkpoint, when the counters reflect real load.
    /// Observationally a no-op: placement never feeds the simulation.
    pub fn rebalance(&mut self) -> &[u32] {
        self.engine.rebalance()
    }

    /// Lifetime dispatched events per shard under the current placement.
    pub fn shard_event_totals(&self) -> Vec<u64> {
        self.engine.shard_event_totals()
    }

    /// Load-balance quality: max/min of per-shard lifetime event totals
    /// (1.0 = perfect). An empty shard counts as 1 event so the ratio
    /// stays finite — an all-but-empty shard reads as a huge ratio, not
    /// a crash.
    pub fn imbalance_ratio(&self) -> f64 {
        let totals = self.shard_event_totals();
        let max = totals.iter().copied().max().unwrap_or(1).max(1);
        let min = totals.iter().copied().min().unwrap_or(1).max(1);
        max as f64 / min as f64
    }

    /// Turn super-epoch batching off (or back on). Bench ablations only:
    /// the epoch *grid* changes with this switch, so comparisons against
    /// pinned epoch counts must hold it fixed. Event outcomes (digests,
    /// metrics) are unaffected either way — batching only ever extends
    /// epochs across windows no envelope can occupy.
    pub fn set_amortization(&mut self, on: bool) {
        self.engine.set_amortization(on);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(shards: u32) -> FleetConfig {
        FleetConfig {
            hosts: 4,
            shards,
            base: TestbedConfig {
                senders: 4,
                receiver_threads: 2,
                ..TestbedConfig::default()
            },
            ..FleetConfig::coupled_fleet()
        }
    }

    #[test]
    fn coupled_fleet_moves_cross_host_data() {
        let mut fleet = Fleet::new(&small_fleet(1)).expect("valid fleet");
        let per_host = fleet
            .run(RunPlan {
                warmup: SimDuration::from_millis(1),
                measure: SimDuration::from_millis(3),
            })
            .expect("fleet runs");
        assert_eq!(per_host.len(), 4);
        for (h, m) in per_host.iter().enumerate() {
            assert!(
                m.delivered_packets > 100,
                "host {h} delivered {}",
                m.delivered_packets
            );
        }
        assert!(fleet.epochs() > 0, "coupled hosts must exchange epochs");
    }

    #[test]
    fn fleet_is_deterministic_across_shard_counts() {
        let run = |shards: u32| {
            let mut fleet = Fleet::new(&small_fleet(shards)).expect("valid fleet");
            let m = fleet
                .run(RunPlan {
                    warmup: SimDuration::from_millis(1),
                    measure: SimDuration::from_millis(2),
                })
                .expect("fleet runs");
            let per_host: Vec<(u64, u64, u64)> = m
                .iter()
                .map(|m| {
                    (
                        m.delivered_packets,
                        m.delivered_payload_bytes,
                        m.host_drops(),
                    )
                })
                .collect();
            (per_host, fleet.epochs(), fleet.dispatched_total())
        };
        let reference = run(1);
        assert_eq!(run(2), reference, "2 shards");
        assert_eq!(run(3), reference, "3 shards");
    }

    #[test]
    fn fleet_validation_rejects_bad_topologies() {
        let err_of = |cfg: &FleetConfig| match Fleet::new(cfg) {
            Ok(_) => panic!("config must not validate: {cfg:?}"),
            Err(e) => e.to_string(),
        };
        let mut cfg = small_fleet(1);
        cfg.fabric_latency = SimDuration::ZERO;
        assert!(err_of(&cfg).contains("fabric_latency"));
        let mut cfg = small_fleet(1);
        cfg.topology = FleetTopology::FaninRing { fanin: 4 }; // == hosts
        assert!(err_of(&cfg).contains("fanin"));
        let mut cfg = small_fleet(1);
        cfg.hosts = 0;
        assert!(err_of(&cfg).contains("hosts"));
        let mut cfg = small_fleet(0);
        assert!(err_of(&cfg).contains("shards"), "shards = 0");
        cfg = small_fleet(5); // > hosts
        assert!(err_of(&cfg).contains("shards"), "shards > hosts");
        let mut cfg = small_fleet(1);
        cfg.topology = FleetTopology::IncastTree { fanout: 0 };
        assert!(err_of(&cfg).contains("fanout"));
        let mut cfg = small_fleet(1);
        cfg.topology = FleetTopology::RackFabric { hosts_per_rack: 0 };
        assert!(err_of(&cfg).contains("rack"));
    }

    #[test]
    fn topology_parse_roundtrips() {
        for s in ["ring:2", "tree:4", "rack:16", "ring:0", "tree:1"] {
            let t = FleetTopology::parse(s).expect(s);
            assert_eq!(t.to_string(), s);
        }
        // Bare names take the documented defaults.
        assert_eq!(
            FleetTopology::parse("ring").unwrap(),
            FleetTopology::FaninRing { fanin: 2 }
        );
        assert_eq!(
            FleetTopology::parse("tree").unwrap(),
            FleetTopology::IncastTree { fanout: 4 }
        );
        assert_eq!(
            FleetTopology::parse("rack").unwrap(),
            FleetTopology::RackFabric { hosts_per_rack: 16 }
        );
        assert!(FleetTopology::parse("mesh:3").is_err());
        assert!(FleetTopology::parse("tree:x").is_err());
    }

    #[test]
    fn topology_edges_have_the_documented_shapes() {
        // ring:2 over 4 hosts: each host receives from its next two.
        let ring = FleetTopology::FaninRing { fanin: 2 }.edges(4);
        assert_eq!(ring.len(), 8);
        assert_eq!(&ring[..2], &[(1, 0), (2, 0)]);
        // tree:2 over 7 hosts: a complete binary tree, child -> parent.
        let tree = FleetTopology::IncastTree { fanout: 2 }.edges(7);
        assert_eq!(tree, vec![(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)]);
        // rack:3 over 7 hosts: members -> head, heads -> host 0.
        let rack = FleetTopology::RackFabric { hosts_per_rack: 3 }.edges(7);
        // Heads are 0, 3, 6; head 6's rack has no members left.
        assert_eq!(rack, vec![(1, 0), (2, 0), (3, 0), (6, 0), (4, 3), (5, 3)]);
        // rack:1 degenerates to an incast star on host 0.
        let star = FleetTopology::RackFabric { hosts_per_rack: 1 }.edges(4);
        assert_eq!(star, vec![(1, 0), (2, 0), (3, 0)]);
        // A single host has no edges under any topology.
        for t in [
            FleetTopology::FaninRing { fanin: 0 },
            FleetTopology::IncastTree { fanout: 4 },
            FleetTopology::RackFabric { hosts_per_rack: 16 },
        ] {
            assert!(t.edges(1).is_empty(), "{t}");
        }
    }

    #[test]
    fn tree_and_rack_fleets_move_cross_host_data() {
        for topology in [
            FleetTopology::IncastTree { fanout: 2 },
            FleetTopology::RackFabric { hosts_per_rack: 2 },
        ] {
            let mut cfg = small_fleet(2);
            cfg.topology = topology;
            let mut fleet = Fleet::new(&cfg).expect("valid fleet");
            let per_host = fleet
                .run(RunPlan {
                    warmup: SimDuration::from_millis(1),
                    measure: SimDuration::from_millis(2),
                })
                .expect("fleet runs");
            // Host 0 is the aggregation point in both topologies; it
            // must have terminated remote traffic on top of local load.
            assert!(
                per_host[0].delivered_packets > 100,
                "{topology}: {}",
                per_host[0].delivered_packets
            );
        }
    }

    #[test]
    fn rebalance_preserves_results_and_covers_all_events() {
        let plan = RunPlan {
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(2),
        };
        let digest = |m: &[RunMetrics]| -> Vec<(u64, u64)> {
            m.iter()
                .map(|m| (m.delivered_packets, m.delivered_payload_bytes))
                .collect()
        };
        // Both runs share the slice schedule (probe, warmup end, measure
        // end): every `run_to` deadline clamps the epoch grid, so only
        // runs with identical slices are comparable bit-for-bit. The
        // probe slice gives rebalancing real dispatch counts to pack.
        let probe = SimTime::ZERO + SimDuration::from_micros(300);
        let t1 = SimTime::ZERO + plan.warmup;
        let t2 = t1 + plan.measure;
        let drive = |fleet: &mut Fleet, rebalance: bool| -> Vec<RunMetrics> {
            fleet.run_to(probe).expect("probe slice");
            if rebalance {
                let placement = fleet.rebalance().to_vec();
                assert_eq!(placement.len(), 4);
            }
            fleet.run_to(t1).expect("warmup");
            for h in fleet.hosts_mut() {
                h.sim_mut().world_mut().arm_metrics(t1);
            }
            fleet.run_to(t2).expect("measure");
            fleet
                .hosts_mut()
                .iter_mut()
                .map(|h| h.sim_mut().world_mut().snapshot(t2))
                .collect()
        };
        let mut reference = Fleet::new(&small_fleet(2)).expect("valid fleet");
        let ref_metrics = digest(&drive(&mut reference, false));
        let mut fleet = Fleet::new(&small_fleet(2)).expect("valid fleet");
        let rebalanced = digest(&drive(&mut fleet, true));
        // Moving hosts between shards mid-run changes nothing observable.
        assert_eq!(rebalanced, ref_metrics);
        assert_eq!(
            (fleet.epochs(), fleet.super_epochs()),
            (reference.epochs(), reference.super_epochs())
        );
        let totals = fleet.shard_event_totals();
        assert_eq!(totals.iter().sum::<u64>(), fleet.dispatched_total());
        assert!(fleet.imbalance_ratio() >= 1.0);
    }

    #[test]
    fn uncoupled_fleet_collapses_epochs_into_super_epochs() {
        let mut cfg = small_fleet(1);
        cfg.topology = FleetTopology::FaninRing { fanin: 0 };
        let mut amortized = Fleet::new(&cfg).expect("valid fleet");
        amortized
            .run_to(SimTime::ZERO + SimDuration::from_millis(1))
            .expect("runs");
        let mut classic = Fleet::new(&cfg).expect("valid fleet");
        classic.set_amortization(false);
        classic
            .run_to(SimTime::ZERO + SimDuration::from_millis(1))
            .expect("runs");
        // No envelopes exist, so outcomes agree while the barrier count
        // collapses: one super-epoch per slice instead of one epoch per
        // 8 µs lookahead window.
        assert_eq!(amortized.dispatched_total(), classic.dispatched_total());
        assert_eq!(amortized.epochs(), 1);
        assert_eq!(amortized.super_epochs(), 1);
        assert!(classic.epochs() > 50, "classic: {}", classic.epochs());
        assert_eq!(classic.super_epochs(), 0);
    }

    /// Checkpoint/restore at a `run_to` boundary is bit-exact: a run
    /// that saves and restores mid-warmup (even at a different shard
    /// count) matches a run driven through the *same slice schedule*
    /// without any checkpoint. The slice schedule matters: the epoch
    /// grid (`gmin + lookahead`, clamped at every `run_to` deadline)
    /// fixes how cross-host envelopes interleave with same-timestamp
    /// local events, so the reference must share the cadence — which is
    /// why the campaign runner always drives fleets at its checkpoint
    /// cadence whether or not a checkpoint is actually written.
    #[test]
    fn fleet_checkpoint_roundtrip_is_bit_identical() {
        let plan = RunPlan {
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(2),
        };
        let mid = SimTime::ZERO + SimDuration::from_micros(500);
        let t1 = SimTime::ZERO + plan.warmup;
        let t2 = t1 + plan.measure;
        let finish = |fleet: &mut Fleet| -> Vec<RunMetrics> {
            fleet.run_to(t1).expect("warmup");
            for h in fleet.hosts_mut() {
                h.sim_mut().world_mut().arm_metrics(t1);
            }
            fleet.run_to(t2).expect("measure");
            fleet
                .hosts_mut()
                .iter_mut()
                .map(|h| h.sim_mut().world_mut().snapshot(t2))
                .collect()
        };

        // Reference: same slice schedule, no checkpoint taken.
        let mut reference = Fleet::new(&small_fleet(1)).expect("valid fleet");
        reference.run_to(mid).expect("front half");
        let ref_metrics = finish(&mut reference);

        // Interrupted: checkpoint at `mid`, restore at a DIFFERENT shard
        // count, finish identically.
        let mut front = Fleet::new(&small_fleet(1)).expect("valid fleet");
        front.run_to(mid).expect("front half");
        let snap = front.save_checkpoint().expect("checkpoint");
        drop(front);
        let mut back = Fleet::restore_checkpoint(&small_fleet(4), &snap).expect("restore");
        assert_eq!(back.shards(), 4, "resume honours the new shard count");
        let resumed = finish(&mut back);

        assert_eq!(ref_metrics.len(), resumed.len());
        for (h, (a, b)) in ref_metrics.iter().zip(resumed.iter()).enumerate() {
            assert_eq!(
                a.delivered_packets, b.delivered_packets,
                "host {h} delivered_packets"
            );
            assert_eq!(
                a.delivered_payload_bytes, b.delivered_payload_bytes,
                "host {h} bytes"
            );
            assert_eq!(a.host_drops(), b.host_drops(), "host {h} drops");
            assert_eq!(a.retransmits, b.retransmits, "host {h} retransmits");
            assert_eq!(
                a.host_delay_p99_us().to_bits(),
                b.host_delay_p99_us().to_bits(),
                "host {h} p99"
            );
        }
    }

    #[test]
    fn fleet_checkpoint_rejects_mismatched_config() {
        let mut fleet = Fleet::new(&small_fleet(1)).expect("valid fleet");
        fleet
            .run_to(SimTime::ZERO + SimDuration::from_micros(200))
            .expect("runs");
        let snap = fleet.save_checkpoint().expect("checkpoint");

        // Different seed → fingerprint mismatch, typed error.
        let mut other = small_fleet(1);
        other.seed ^= 1;
        let err = match Fleet::restore_checkpoint(&other, &snap) {
            Ok(_) => panic!("mismatched seed must not restore"),
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("fingerprint"),
            "unexpected error: {err}"
        );

        // Different shard count alone is NOT a mismatch.
        assert!(Fleet::restore_checkpoint(&small_fleet(2), &snap).is_ok());

        // Corruption → typed error, never a panic.
        let mut bad = snap.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(Fleet::restore_checkpoint(&small_fleet(1), &bad).is_err());
        let truncated = &snap[..snap.len() - 9];
        assert!(Fleet::restore_checkpoint(&small_fleet(1), truncated).is_err());
    }

    #[test]
    fn shard_count_does_not_change_host_seeds() {
        // The per-host seed is a pure function of (fleet seed, host id):
        // shard count appears nowhere in the derivation.
        let a = small_fleet(1);
        let b = small_fleet(8);
        for h in 0..a.hosts {
            assert_eq!(a.host_config(h).seed, b.host_config(h).seed);
        }
    }
}
