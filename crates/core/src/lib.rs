//! # hostcc — a host-interconnect congestion laboratory
//!
//! A discrete-event reproduction of **"Understanding Host Interconnect
//! Congestion"** (Agarwal et al., HotNets 2022): a packet-level simulator
//! of the receiver-host datapath (NIC input buffer → Rx descriptors → PCIe
//! credits → IOMMU/IOTLB → memory bus → receiver cores), a full
//! implementation of the Swift congestion-control protocol, a STREAM-style
//! memory antagonist, and experiment harnesses that regenerate every
//! figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use hostcc::{scenarios, experiment::{run, RunPlan}};
//!
//! // One point of Figure 3: 4 receiver cores, IOMMU enabled.
//! let cfg = scenarios::fig3(4, true);
//! let metrics = run(cfg, RunPlan::quick()).expect("valid config");
//! assert!(metrics.app_throughput_gbps() > 10.0);
//! ```
//!
//! ## Layout
//!
//! * [`scenarios`] — one constructor per paper figure/panel;
//! * [`experiment`] — single runs and parallel sweeps;
//! * [`fleet`] — coupled multi-host fleets on the deterministic
//!   parallel engine (shards, lookahead epochs, cross-host fan-in);
//! * [`model`] — the paper's Little's-law throughput bound (§3.1);
//! * [`cluster`] — the Fig. 1 fleet scatter;
//! * [`report`] — text/CSV tables for harness output;
//! * re-exports of every substrate crate (`sim`, `mem`, `iommu`, `pcie`,
//!   `memsys`, `nic`, `fabric`, `transport`, `host`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod experiment;
pub mod fleet;
pub mod model;
pub mod report;
pub mod scenarios;

pub use hostcc_host::{
    BufferRecycling, CcKind, ConfigError, FleetHost, RunError, RunMetrics, Simulation, Testbed,
    TestbedConfig,
};

// Fault injection: deterministic chaos plans and their run summaries.
pub use hostcc_host::{FaultKind, FaultPlan, FaultSpec, FaultSummary};

// Observability layer: tracing, counters, timelines and exporters.
pub use hostcc_host::{
    chrome_trace_json, metrics_json, CounterRegistry, CounterSource, Stage, StageBreakdown,
    StageClass, TimelineRecorder, TraceConfig, TraceEvent, Tracer,
};

// Continuous host-congestion telemetry: sampler config, episode records
// with root-cause attribution, and the flight-recorder vocabulary.
pub use hostcc_host::{
    EpisodeRecord, RootCause, TelemetryConfig, TelemetrySample, TelemetrySummary, TriggerKind,
};

/// Substrate crates re-exported under one roof.
pub mod substrate {
    pub use hostcc_fabric as fabric;
    pub use hostcc_faults as faults;
    pub use hostcc_host as host;
    pub use hostcc_iommu as iommu;
    pub use hostcc_mem as mem;
    pub use hostcc_memsys as memsys;
    pub use hostcc_nic as nic;
    pub use hostcc_pcie as pcie;
    pub use hostcc_sim as sim;
    pub use hostcc_telemetry as telemetry;
    pub use hostcc_trace as trace;
    pub use hostcc_transport as transport;
}
