//! Figure 1: host congestion across a production-like fleet.
//!
//! The paper opens with a scatter plot from a large Google cluster: host
//! drop rate vs. access-link utilisation, binned over 24 h. Two features
//! matter: drop rate correlates positively with utilisation, *and* drops
//! occur even at low utilisation — the tell-tale of memory-bus-induced
//! host congestion (§3.2). We reproduce the scatter with a fleet of
//! simulated hosts whose core counts, antagonist intensity and offered
//! load vary across (deterministically seeded) bins.

use crate::experiment::{sweep, RunPlan};
use crate::scenarios;
use hostcc_host::TestbedConfig;
use hostcc_sim::SimRng;

/// Fleet generation parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of (host, 10-minute-bin) samples to simulate.
    pub samples: usize,
    /// Fleet RNG seed.
    pub seed: u64,
    /// Fraction of samples with a heavy memory antagonist (big-data jobs
    /// co-located with network-heavy services).
    pub heavy_antagonist_fraction: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            samples: 120,
            seed: 42,
            heavy_antagonist_fraction: 0.25,
        }
    }
}

/// One point of the Fig. 1 scatter.
#[derive(Debug, Clone, Copy)]
pub struct ClusterPoint {
    /// Host access-link utilisation in [0, 1].
    pub link_utilization: f64,
    /// Host packet drop rate (drops / packets transmitted).
    pub drop_rate: f64,
    /// Receiver cores of this host.
    pub receiver_threads: u32,
    /// Antagonist cores running in this bin.
    pub antagonist_cores: u32,
}

/// Draw one host-bin configuration.
fn draw(rng: &mut SimRng, heavy_fraction: f64, sample: u64) -> TestbedConfig {
    let threads = rng.next_range(2, 16) as u32;
    let antagonist = if rng.chance(heavy_fraction) {
        rng.next_range(8, 15) as u32
    } else {
        rng.next_range(0, 6) as u32
    };
    // Offered load varies with how many peers currently talk to the host.
    let senders = rng.next_range(6, 40) as u32;
    let mut cfg = scenarios::baseline();
    cfg.receiver_threads = threads;
    cfg.antagonist_cores = antagonist;
    cfg.senders = senders;
    // Production traffic mixes read sizes.
    cfg = scenarios::with_mixed_reads(cfg);
    // Roughly half the bins carry bursty traffic: low average utilisation
    // with line-rate bursts, the regime where host-interconnect drops at
    // low link utilisation appear.
    if rng.chance(0.5) {
        cfg.duty_cycle = 0.15 + 0.5 * rng.next_f64();
    }
    cfg.seed = 0xF1EE7 ^ sample;
    cfg
}

/// Simulate the fleet and return the scatter points.
pub fn simulate(cluster: ClusterConfig, plan: RunPlan) -> Vec<ClusterPoint> {
    let mut rng = SimRng::new(cluster.seed);
    let mut points = Vec::with_capacity(cluster.samples);
    for i in 0..cluster.samples {
        let cfg = draw(&mut rng, cluster.heavy_antagonist_fraction, i as u64);
        points.push((
            (
                cfg.receiver_threads,
                cfg.antagonist_cores,
                cfg.access_link_bps,
            ),
            cfg,
        ));
    }
    sweep(points, plan)
        .expect("fleet configs are valid")
        .into_iter()
        .map(|p| {
            let (threads, antagonist, link_bps) = p.label;
            ClusterPoint {
                link_utilization: p.metrics.link_utilization(link_bps),
                drop_rate: p.metrics.drop_rate(),
                receiver_threads: threads,
                antagonist_cores: antagonist,
            }
        })
        .collect()
}

/// Summary statistics of the scatter: the two qualitative claims of Fig. 1.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSummary {
    /// Pearson correlation between utilisation and drop rate.
    pub utilization_drop_correlation: f64,
    /// Fraction of samples with drops despite low (< 50%) utilisation.
    pub low_util_drop_fraction: f64,
    /// Fraction of samples with any drops at all.
    pub any_drop_fraction: f64,
}

/// Compute the Fig. 1 summary over a scatter.
pub fn summarize(points: &[ClusterPoint]) -> ClusterSummary {
    let n = points.len() as f64;
    let mean_u: f64 = points.iter().map(|p| p.link_utilization).sum::<f64>() / n;
    let mean_d: f64 = points.iter().map(|p| p.drop_rate).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_u = 0.0;
    let mut var_d = 0.0;
    for p in points {
        let du = p.link_utilization - mean_u;
        let dd = p.drop_rate - mean_d;
        cov += du * dd;
        var_u += du * du;
        var_d += dd * dd;
    }
    let corr = if var_u > 0.0 && var_d > 0.0 {
        cov / (var_u.sqrt() * var_d.sqrt())
    } else {
        0.0
    };
    let dropping = |p: &&ClusterPoint| p.drop_rate > 1e-4;
    let low_util_drops = points
        .iter()
        .filter(dropping)
        .filter(|p| p.link_utilization < 0.5)
        .count() as f64;
    let any = points.iter().filter(dropping).count() as f64;
    ClusterSummary {
        utilization_drop_correlation: corr,
        low_util_drop_fraction: low_util_drops / n,
        any_drop_fraction: any / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_generation_is_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let ca = draw(&mut a, 0.25, 3);
        let cb = draw(&mut b, 0.25, 3);
        assert_eq!(ca.receiver_threads, cb.receiver_threads);
        assert_eq!(ca.antagonist_cores, cb.antagonist_cores);
        assert_eq!(ca.senders, cb.senders);
    }

    #[test]
    fn summary_math_on_synthetic_points() {
        let points = vec![
            ClusterPoint {
                link_utilization: 0.1,
                drop_rate: 0.0,
                receiver_threads: 4,
                antagonist_cores: 0,
            },
            ClusterPoint {
                link_utilization: 0.4,
                drop_rate: 0.01,
                receiver_threads: 8,
                antagonist_cores: 12,
            },
            ClusterPoint {
                link_utilization: 0.9,
                drop_rate: 0.03,
                receiver_threads: 12,
                antagonist_cores: 0,
            },
        ];
        let s = summarize(&points);
        assert!(s.utilization_drop_correlation > 0.5, "positive correlation");
        // The 0.4-utilisation host drops: a low-utilisation drop point.
        assert!((s.low_util_drop_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.any_drop_fraction - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn small_fleet_reproduces_fig1_features() {
        // Tiny but real fleet run (kept small for test time).
        let points = simulate(
            ClusterConfig {
                samples: 10,
                seed: 11,
                heavy_antagonist_fraction: 0.4,
            },
            RunPlan::quick(),
        );
        assert_eq!(points.len(), 10);
        let s = summarize(&points);
        // At least some hosts must be dropping for the plot to exist.
        assert!(s.any_drop_fraction > 0.0, "no drops anywhere in fleet");
    }
}
