//! Named experiment scenarios: one constructor per paper figure/panel.
//!
//! Each function returns the `TestbedConfig` for one point of one figure,
//! so harnesses, examples and tests all drive the *same* configurations.

use hostcc_host::{CcKind, FaultKind, FaultPlan, TestbedConfig};
use hostcc_mem::PageSize;
use hostcc_sim::SimDuration;
use hostcc_transport::DctcpConfig;

/// Baseline testbed (§3 setup): 40 senders, Swift, hugepages, 12 MiB
/// regions, IOMMU on, no antagonist.
pub fn baseline() -> TestbedConfig {
    TestbedConfig::default()
}

/// Figure 3: throughput / drop rate / IOTLB misses vs. receiver cores,
/// IOMMU on or off. Hugepages enabled.
pub fn fig3(receiver_threads: u32, iommu_on: bool) -> TestbedConfig {
    let mut cfg = baseline();
    cfg.receiver_threads = receiver_threads;
    cfg.iommu.enabled = iommu_on;
    cfg
}

/// Figure 4: same sweep with hugepages enabled or disabled (4 KiB
/// mappings for the data regions). IOMMU always on.
pub fn fig4(receiver_threads: u32, hugepages: bool) -> TestbedConfig {
    let mut cfg = baseline();
    cfg.receiver_threads = receiver_threads;
    cfg.iommu.enabled = true;
    cfg.data_page = if hugepages {
        PageSize::Size2M
    } else {
        PageSize::Size4K
    };
    cfg
}

/// Figure 5: throughput / drop rate / IOTLB misses vs. Rx memory region
/// size at 12 receiver cores.
pub fn fig5(region_mib: u64, iommu_on: bool) -> TestbedConfig {
    let mut cfg = baseline();
    cfg.receiver_threads = 12;
    cfg.rx_region_bytes = region_mib << 20;
    cfg.iommu.enabled = iommu_on;
    cfg
}

/// Figure 6: throughput / memory bandwidth / drop rate vs. STREAM
/// antagonist cores at 12 receiver threads.
pub fn fig6(antagonist_cores: u32, iommu_on: bool) -> TestbedConfig {
    let mut cfg = baseline();
    cfg.receiver_threads = 12;
    cfg.antagonist_cores = antagonist_cores;
    cfg.iommu.enabled = iommu_on;
    cfg
}

/// §3.1 CC-blind-spot study: like Fig. 3, but with a configurable Swift
/// host-delay target, to show that the 1 MiB NIC buffer overflows below
/// the default 100 µs target (and that lowering the target alone cannot
/// fix host congestion — §4's argument).
pub fn cc_blindspot(receiver_threads: u32, host_target_us: u64) -> TestbedConfig {
    let mut cfg = baseline();
    cfg.receiver_threads = receiver_threads;
    if let CcKind::Swift(ref mut sc) = cfg.cc {
        sc.host_target = hostcc_sim::SimDuration::from_micros(host_target_us);
    }
    cfg
}

/// Baseline-protocol comparison: the same workload under a DCTCP-style
/// ECN controller (TCP-like, fabric signals only) instead of Swift.
pub fn with_dctcp(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.cc = CcKind::Dctcp(DctcpConfig::default());
    // Give the baseline its congestion signal: ECN marking at the switch.
    cfg.ecn_threshold_bytes = 300 << 10;
    cfg
}

/// §4 extension: the host-aware controller — Swift plus a sub-RTT
/// response to the NIC-buffer occupancy echoed on every ACK (the
/// "congestion signals from outside the network" direction, implemented).
pub fn with_host_aware(mut cfg: TestbedConfig) -> TestbedConfig {
    let swift = match &cfg.cc {
        CcKind::Swift(sc) => sc.clone(),
        _ => hostcc_transport::SwiftConfig::default(),
    };
    cfg.cc = CcKind::HostAware(hostcc_transport::HostAwareConfig {
        swift,
        ..hostcc_transport::HostAwareConfig::default()
    });
    cfg
}

/// §4-adjacent ablation (the on-NIC-memory direction, paper ref [30]):
/// an aggressively-reused hot buffer pool. The tiny working set fits both
/// the IOTLB and the DDIO slice, relieving translation pressure *and*
/// memory-bus write traffic.
pub fn with_hot_buffers(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.recycling = hostcc_host::BufferRecycling::Hot;
    cfg
}

/// Strict-IOMMU variant: per-buffer map/unmap + IOTLB invalidation
/// (Linux strict/dynamic mapping modes) instead of the stack's loose
/// mode. Dynamic mappings are page-granular, so hugepage sharing across
/// buffers is lost too — the paper's justification for running loose
/// ("other modes … are known to cause even worse IOTLB misses").
pub fn with_strict_iommu(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.strict_iommu = true;
    cfg.data_page = PageSize::Size4K;
    cfg
}

/// A production-like mix of RPC read sizes (small metadata reads through
/// bulk transfers) instead of the paper's uniform 16 KB microbenchmark.
pub fn with_mixed_reads(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.read_size_mix = vec![
        (4 * 1024, 0.35),
        (16 * 1024, 0.40),
        (64 * 1024, 0.20),
        (256 * 1024, 0.05),
    ];
    cfg
}

/// §4's coordinated-response direction: reschedule the memory antagonist
/// to the NUMA node the NIC is *not* attached to, instead of reducing the
/// network rate. Only cross-socket spill traffic stays on the NIC-local
/// memory controller.
pub fn with_remote_antagonist(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.stream.local_fraction = 0.15;
    cfg
}

/// NIC without descriptor prefetch: every packet's descriptor fetch is a
/// blocking PCIe read round trip in the DMA pipeline.
pub fn without_descriptor_prefetch(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.model_dma_read_latency = true;
    cfg
}

/// Fixed-window variant (no congestion control) for calibration runs.
pub fn with_fixed_window(mut cfg: TestbedConfig, window: f64) -> TestbedConfig {
    cfg.cc = CcKind::Fixed(window);
    cfg
}

/// §4 ablation: a larger NIC input buffer (e.g. 4 MiB instead of 1 MiB)
/// so that the host-delay signal exceeds Swift's target before drops.
pub fn with_nic_buffer(mut cfg: TestbedConfig, bytes: u64) -> TestbedConfig {
    cfg.nic.input_buffer_bytes = bytes;
    cfg
}

/// §4 ablation: a larger IOTLB (future-host exploration).
pub fn with_iotlb_entries(mut cfg: TestbedConfig, entries: usize) -> TestbedConfig {
    cfg.iommu.iotlb_entries = entries;
    cfg.iommu.iotlb_ways = entries; // keep it fully associative
    cfg
}

/// §4 ablation: memory-bandwidth QoS (Intel MBA-style). MBA throttles the
/// request rate of selected cores, so we cap the antagonist's per-core
/// offered bandwidth at `throttle` of its unconstrained value — keeping
/// the bus below saturation and the DMA path fast.
pub fn with_membw_qos(mut cfg: TestbedConfig, throttle: f64) -> TestbedConfig {
    assert!((0.0..=1.0).contains(&throttle), "throttle is a fraction");
    cfg.stream.per_core_bytes_per_sec *= throttle;
    cfg
}

/// Swift variant for §4's "sub-RTT response" discussion: an ACK-path
/// response scaled by a faster reaction (smaller RTT gating is not
/// directly modelled; we approximate by a tighter host target plus a
/// stronger decrease).
pub fn with_subrtt_response(mut cfg: TestbedConfig, host_target_us: u64) -> TestbedConfig {
    if let CcKind::Swift(ref mut sc) = cfg.cc {
        sc.host_target = hostcc_sim::SimDuration::from_micros(host_target_us);
        sc.max_mdf = 0.7;
        sc.beta = 1.2;
    }
    cfg
}

/// Coarse-time profile (explicit opt-in): quantise every approximate
/// latency term — serialisation boundaries, pacer grants, DMA stage sums
/// — up to a 64 ns grid and fuse uncontended DmaComplete→CpuDone chains
/// into single macro events. Event timestamps collapse onto shared wheel
/// slots, which is what makes batched slot-drain dispatch actually pay
/// (mean batch ≥ 4 instead of ~1). Not bit-identical to exact-time runs;
/// the coarse goldens in `tests/queue_equivalence.rs` pin its behaviour
/// separately.
pub fn with_coarse_time(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.resolution = hostcc_sim::Resolution::from_nanos(64).expect("64 is a power of two");
    cfg.fuse_chains = true;
    cfg
}

/// A host `gen_mult` NIC generations ahead of the paper's 100 G testbed:
/// line rate, PCIe generation, DDR speed, posted-credit window, buffers
/// and per-packet core cost all scale together, so the host sinks
/// `gen_mult`× the packet rate before congesting. `1` is the paper's
/// testbed unchanged; `2` ≈ a 200 G / Gen4 / DDR5 host; `4` ≈ 400 G /
/// Gen5 with doubled memory channels. Fleet benches use this to model
/// the event-dense tail of the Fig. 1 scatter — newer hosts push ~4×
/// the events per nanosecond of simulated time through the engine,
/// which is exactly the regime where slot-sharing and batched dispatch
/// have to pay.
pub fn with_line_rate_generation(mut cfg: TestbedConfig, gen_mult: u32) -> TestbedConfig {
    let m = gen_mult.max(1);
    let mf = f64::from(m);
    cfg.sender_link_bps *= mf;
    cfg.access_link_bps *= mf;
    cfg.switch_buffer_bytes *= u64::from(m);
    cfg.ecn_threshold_bytes *= u64::from(m);
    cfg.nic.input_buffer_bytes *= u64::from(m);
    cfg.credits.posted_header *= m;
    cfg.credits.posted_data *= m;
    if m >= 2 {
        cfg.pcie.gen = hostcc_pcie::PcieGen::Gen4;
        // DDR4-2400 -> DDR5-4800.
        cfg.memsys.channel_mts *= 2.0;
    }
    if m >= 4 {
        cfg.pcie.gen = hostcc_pcie::PcieGen::Gen5;
        cfg.memsys.channels *= 2;
    }
    // Faster cores / more receive offload: per-packet CPU cost shrinks
    // with the generation so the cores keep up with the line rate.
    cfg.core_pkt_cost = cfg.core_pkt_cost / u64::from(m);
    cfg
}

/// Shared base for the chaos scenarios: a smaller testbed (8 senders,
/// 4 receiver cores) so CI chaos smoke runs stay cheap, with fault
/// windows recurring every 5 ms from t=6 ms — inside the measurement
/// interval of both `RunPlan::quick()` (5–15 ms) and the default plan
/// (25–50 ms), so counters and the recovery summary are populated under
/// either plan.
fn chaos_base() -> TestbedConfig {
    let mut cfg = baseline();
    cfg.senders = 8;
    cfg.receiver_threads = 4;
    // Whole-window losses (blackouts) need partial-ACK recovery to come
    // back at ACK-clock speed instead of one packet per RTO.
    cfg.flow.partial_ack_rtx = true;
    cfg
}

fn chaos_windows(cfg: &mut TestbedConfig, kind: FaultKind, duration_us: u64) {
    cfg.faults = FaultPlan::new().recurring(
        kind,
        SimDuration::from_millis(6),
        SimDuration::from_micros(duration_us),
        SimDuration::from_millis(5),
        9,
    );
}

/// Chaos scenario `chaos-replay`: recurring PCIe link-error windows. 30%
/// of TLPs are NAKed during each window and replay from the DLLP replay
/// buffer after an exponentially backed-off replay timer.
pub fn chaos_replay() -> TestbedConfig {
    let mut cfg = chaos_base();
    chaos_windows(&mut cfg, FaultKind::PcieReplay { nak_rate: 0.3 }, 1000);
    cfg
}

/// Chaos scenario `chaos-flap`: recurring access-link blackouts. Every
/// packet on the wire during a 1 ms window is lost; recovery is the
/// transport's dup-ACK / RTO-backoff machinery.
pub fn chaos_flap() -> TestbedConfig {
    let mut cfg = chaos_base();
    chaos_windows(&mut cfg, FaultKind::LinkFlap, 1000);
    cfg
}

/// Chaos scenario `chaos-invalidate`: recurring IOTLB invalidation storms
/// (a full IOTLB + page-walk-cache flush every 50 µs inside each window),
/// forcing page-walk bursts on the DMA translation path.
pub fn chaos_invalidate() -> TestbedConfig {
    let mut cfg = chaos_base();
    chaos_windows(
        &mut cfg,
        FaultKind::IotlbStorm {
            flush_period: SimDuration::from_micros(50),
        },
        1000,
    );
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_toggles_iommu() {
        assert!(fig3(12, true).iommu.enabled);
        assert!(!fig3(12, false).iommu.enabled);
        assert_eq!(fig3(7, true).receiver_threads, 7);
    }

    #[test]
    fn fig4_toggles_page_size() {
        assert_eq!(fig4(12, true).data_page, PageSize::Size2M);
        assert_eq!(fig4(12, false).data_page, PageSize::Size4K);
        assert!(fig4(12, false).iommu.enabled, "fig4 is always IOMMU-on");
    }

    #[test]
    fn fig5_sets_region_and_fixed_cores() {
        let cfg = fig5(16, true);
        assert_eq!(cfg.rx_region_bytes, 16 << 20);
        assert_eq!(cfg.receiver_threads, 12);
    }

    #[test]
    fn fig6_sets_antagonist() {
        let cfg = fig6(15, false);
        assert_eq!(cfg.antagonist_cores, 15);
        assert!(!cfg.iommu.enabled);
    }

    #[test]
    fn blindspot_sets_target() {
        let cfg = cc_blindspot(12, 40);
        match cfg.cc {
            CcKind::Swift(ref s) => {
                assert_eq!(s.host_target, hostcc_sim::SimDuration::from_micros(40))
            }
            _ => panic!("expected swift"),
        }
    }

    #[test]
    fn host_aware_preserves_swift_params() {
        let mut base = baseline();
        if let CcKind::Swift(ref mut sc) = base.cc {
            sc.ai = 0.125;
        }
        let cfg = with_host_aware(base);
        match cfg.cc {
            CcKind::HostAware(ref h) => assert_eq!(h.swift.ai, 0.125),
            _ => panic!("expected host-aware"),
        }
    }

    #[test]
    fn dctcp_baseline_enables_ecn() {
        let cfg = with_dctcp(baseline());
        assert!(matches!(cfg.cc, CcKind::Dctcp(_)));
        assert!(cfg.ecn_threshold_bytes > 0);
    }

    #[test]
    fn mixed_reads_set_a_distribution() {
        let cfg = with_mixed_reads(baseline());
        assert_eq!(cfg.read_size_mix.len(), 4);
        let total: f64 = cfg.read_size_mix.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ablations_apply() {
        let cfg = with_nic_buffer(baseline(), 4 << 20);
        assert_eq!(cfg.nic.input_buffer_bytes, 4 << 20);
        let cfg = with_iotlb_entries(baseline(), 512);
        assert_eq!(cfg.iommu.iotlb_entries, 512);
        assert_eq!(cfg.iommu.iotlb_ways, 512);
        let cfg = with_membw_qos(baseline(), 0.5);
        assert!((cfg.stream.per_core_bytes_per_sec - 5e9).abs() < 1.0);
    }

    #[test]
    fn coarse_time_sets_grid_and_fusion() {
        let cfg = with_coarse_time(baseline());
        assert_eq!(cfg.resolution.nanos(), 64);
        assert!(cfg.fuse_chains);
        assert!(cfg.validate().is_ok());
        // The default profile stays exact: historical goldens depend on it.
        assert!(baseline().resolution.is_exact());
        assert!(!baseline().fuse_chains);
    }

    #[test]
    fn line_rate_generation_scales_the_whole_host() {
        let base = baseline();
        // Generation 1 (and the 0 clamp) is the paper's testbed unchanged.
        for m in [0, 1] {
            let cfg = with_line_rate_generation(baseline(), m);
            assert_eq!(cfg.sender_link_bps, base.sender_link_bps);
            assert_eq!(cfg.pcie.gen, base.pcie.gen);
            assert_eq!(cfg.core_pkt_cost, base.core_pkt_cost);
        }
        let g2 = with_line_rate_generation(baseline(), 2);
        assert_eq!(g2.sender_link_bps, base.sender_link_bps * 2.0);
        assert_eq!(g2.access_link_bps, base.access_link_bps * 2.0);
        assert_eq!(g2.pcie.gen, hostcc_pcie::PcieGen::Gen4);
        assert_eq!(g2.memsys.channels, base.memsys.channels);
        let g4 = with_line_rate_generation(baseline(), 4);
        assert_eq!(g4.pcie.gen, hostcc_pcie::PcieGen::Gen5);
        assert_eq!(g4.memsys.channels, base.memsys.channels * 2);
        assert_eq!(g4.credits.posted_data, base.credits.posted_data * 4);
        assert_eq!(g4.core_pkt_cost, base.core_pkt_cost / 4);
        // Scaled hosts must still be valid testbeds (the fleet bench
        // builds on this) and keep exact time unless opted into coarse.
        for m in [2, 4] {
            let cfg = with_line_rate_generation(baseline(), m);
            assert!(cfg.validate().is_ok());
            assert!(cfg.resolution.is_exact());
        }
    }

    #[test]
    fn chaos_scenarios_carry_fault_plans() {
        for cfg in [chaos_replay(), chaos_flap(), chaos_invalidate()] {
            assert!(!cfg.faults.is_empty());
            assert_eq!(cfg.faults.window_count(), 9);
            assert!(cfg.validate().is_ok());
        }
        assert!(matches!(
            chaos_replay().faults.specs[0].kind,
            FaultKind::PcieReplay { .. }
        ));
        assert!(matches!(
            chaos_flap().faults.specs[0].kind,
            FaultKind::LinkFlap
        ));
        assert!(matches!(
            chaos_invalidate().faults.specs[0].kind,
            FaultKind::IotlbStorm { .. }
        ));
    }
}
