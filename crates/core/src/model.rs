//! The paper's analytical throughput model (§3.1).
//!
//! "IOTLB misses create a hard limit to the maximum achievable NIC-to-CPU
//! throughput: PCIe credits allow at most C packets in flight, each PCIe
//! write experiences a latency `T_base + M · T_miss` …; as a result, the
//! throughput is bounded by `(C · pkt_size) / (T_base + M · T_miss)`."
//!
//! The simulator implements the mechanistic pipeline; this module
//! implements the closed form, so the two can be cross-validated exactly
//! as the paper overlays its model on Figure 3 (the "Modeled App
//! Throughput" series, applicable in the credit-bottlenecked regime).

use hostcc_host::TestbedConfig;

/// Closed-form Little's-law bound on NIC-to-CPU throughput.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    /// Maximum packets in flight allowed by PCIe posted credits (`C`).
    pub credits_packets: f64,
    /// Application payload bytes per packet.
    pub pkt_payload_bytes: f64,
    /// Per-packet latency with zero IOTLB misses, seconds (`T_base`).
    pub t_base_s: f64,
    /// Additional latency per IOTLB miss, seconds (`T_miss`).
    pub t_miss_s: f64,
    /// Ceiling independent of the credit pipeline (line rate / PCIe
    /// goodput / CPU capacity), application bits/sec.
    pub ceiling_bps: f64,
}

impl ThroughputModel {
    /// Derive model parameters from a testbed configuration.
    ///
    /// `T_base` is the fixed DMA latency plus the unloaded memory commit
    /// plus the packet's PCIe serialisation; `T_miss` is one full page
    /// walk at unloaded memory latency (the paper's "few hundreds of ns").
    pub fn from_config(cfg: &TestbedConfig) -> Self {
        let pkt = cfg.wire.mtu_payload as f64;
        let credits = cfg
            .credits
            .max_inflight_writes(cfg.wire.mtu_payload as u64, cfg.pcie.max_payload)
            as f64;
        let mem_ns = cfg.memsys.base_latency_ns;
        let ser_s = cfg.pcie.wire_bytes_for(cfg.wire.mtu_payload as u64) as f64
            / cfg.pcie.effective_goodput_bytes_per_sec();
        let t_base = cfg.dma_base_latency.as_secs_f64() + mem_ns * 1e-9 + ser_s;
        // A miss costs a full walk: one dependent memory access per level.
        let walk_levels = cfg.data_page.walk_levels() as f64;
        let t_miss = walk_levels * mem_ns * 1e-9 * cfg.walk_access_penalty;
        let ceiling = cfg
            .max_app_goodput_bps()
            .min(cfg.pcie.effective_goodput_bytes_per_sec() * 8.0 * cfg.wire.goodput_efficiency());
        ThroughputModel {
            credits_packets: credits,
            pkt_payload_bytes: pkt,
            t_base_s: t_base,
            t_miss_s: t_miss,
            ceiling_bps: ceiling,
        }
    }

    /// Credit-pipeline bound at `misses_per_packet`, application bits/sec
    /// (no ceiling applied).
    pub fn pipeline_bound_bps(&self, misses_per_packet: f64) -> f64 {
        let t = self.t_base_s + misses_per_packet * self.t_miss_s;
        self.credits_packets * self.pkt_payload_bytes * 8.0 / t
    }

    /// Modeled application throughput at `misses_per_packet`: the credit
    /// bound clipped by the line-rate/PCIe/CPU ceiling.
    pub fn app_throughput_bps(&self, misses_per_packet: f64) -> f64 {
        self.pipeline_bound_bps(misses_per_packet)
            .min(self.ceiling_bps)
    }

    /// Convenience: modeled throughput in Gbps.
    pub fn app_throughput_gbps(&self, misses_per_packet: f64) -> f64 {
        self.app_throughput_bps(misses_per_packet) / 1e9
    }

    /// Miss rate above which the credit pipeline (not the line rate)
    /// becomes the binding constraint — where the paper's model "applies".
    pub fn binding_miss_rate(&self) -> f64 {
        // C·pkt·8 / (t_base + M·t_miss) = ceiling  =>  solve for M.
        let t_at_ceiling = self.credits_packets * self.pkt_payload_bytes * 8.0 / self.ceiling_bps;
        ((t_at_ceiling - self.t_base_s) / self.t_miss_s).max(0.0)
    }
}

/// CPU-bound throughput for the linear ramp regime of Fig. 3 (fewer than
/// ~8 cores): each receiver core processes packets at a fixed cost.
pub fn cpu_bound_gbps(cfg: &TestbedConfig, cores: u32) -> f64 {
    let pkts_per_sec = cores as f64 / cfg.core_pkt_cost.as_secs_f64();
    let bps = pkts_per_sec * cfg.wire.mtu_payload as f64 * 8.0;
    (bps / 1e9).min(cfg.max_app_goodput_bps() / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_misses_hits_the_ceiling() {
        let cfg = TestbedConfig::default();
        let m = ThroughputModel::from_config(&cfg);
        let tp = m.app_throughput_gbps(0.0);
        assert!(
            (tp - cfg.max_app_goodput_bps() / 1e9).abs() < 0.5,
            "no-miss model {tp} should sit at the ~92 Gbps ceiling"
        );
    }

    #[test]
    fn throughput_decreases_with_misses() {
        let cfg = TestbedConfig::default();
        let m = ThroughputModel::from_config(&cfg);
        let mut last = f64::INFINITY;
        for i in 0..20 {
            let tp = m.app_throughput_gbps(i as f64 * 0.5);
            assert!(tp <= last + 1e-9);
            last = tp;
        }
        // At ~2.5 misses/packet the bound should be visibly below line
        // rate (the Fig. 3 regime).
        assert!(m.app_throughput_gbps(2.5) < 85.0);
        assert!(m.app_throughput_gbps(2.5) > 55.0);
    }

    #[test]
    fn binding_miss_rate_is_where_model_applies() {
        let cfg = TestbedConfig::default();
        let m = ThroughputModel::from_config(&cfg);
        let m_star = m.binding_miss_rate();
        assert!(m_star > 0.0);
        // Just below: ceiling-limited. Just above: pipeline-limited.
        let below = m.app_throughput_bps(m_star * 0.9);
        let above = m.app_throughput_bps(m_star * 1.1);
        assert!((below - m.ceiling_bps).abs() < 1e-6 * m.ceiling_bps);
        assert!(above < m.ceiling_bps);
    }

    #[test]
    fn cpu_ramp_is_linear_until_the_ceiling() {
        let cfg = TestbedConfig::default();
        let two = cpu_bound_gbps(&cfg, 2);
        let four = cpu_bound_gbps(&cfg, 4);
        assert!((four / two - 2.0).abs() < 1e-9, "linear in cores");
        // Eight cores reach (and clip at) the 92 Gbps ceiling.
        let eight = cpu_bound_gbps(&cfg, 8);
        assert!((eight - cfg.max_app_goodput_bps() / 1e9).abs() < 1.5);
        let sixteen = cpu_bound_gbps(&cfg, 16);
        assert!(sixteen <= cfg.max_app_goodput_bps() / 1e9 + 1e-9);
    }

    #[test]
    fn four_kib_pages_have_costlier_misses() {
        let cfg2m = TestbedConfig::default();
        let cfg4k = TestbedConfig {
            data_page: hostcc_mem::PageSize::Size4K,
            ..TestbedConfig::default()
        };
        let m2 = ThroughputModel::from_config(&cfg2m);
        let m4 = ThroughputModel::from_config(&cfg4k);
        assert!(m4.t_miss_s > m2.t_miss_s, "deeper walk per miss");
    }
}
