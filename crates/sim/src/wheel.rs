//! A timing-wheel event queue with an overflow heap.
//!
//! The dispatch loop of a packet-level simulator schedules almost
//! exclusively into the near future: serialisation delays, PCIe/memory
//! latencies and per-packet CPU costs are nanoseconds to microseconds,
//! while only periodic timers (RTO sweeps, memory ticks) and long pacing
//! holds look further ahead. A binary heap pays `O(log n)` comparisons —
//! and moves event payloads across heap levels — on every push and pop
//! regardless of that structure. The timing wheel exploits it:
//!
//! * a circular window of `2^16` slots at **1 ns granularity** covers a
//!   ~65 µs horizon; pushing an event inside the horizon is one index
//!   computation plus one linked-list splice;
//! * events beyond the horizon go to a small overflow heap keyed by
//!   `(time, seq)` and migrate into the wheel as the window advances;
//! * a two-level occupancy bitmap (one bit per slot, one summary bit per
//!   bitmap word) finds the next non-empty slot in a handful of word
//!   reads regardless of how sparse the schedule is.
//!
//! The cache layout is the point. Events live in one contiguous node
//! arena recycled through a LIFO free list, so the handful of in-flight
//! nodes stay hot; a slot is a single `u32` list head (4 bytes — a cache
//! line covers 16 adjacent slots, and near-future schedules cluster);
//! and slot lists are stored *reversed* (push-at-head) so pushes never
//! chase a tail pointer. The list is reversed once, in place, when the
//! cursor reaches the slot — O(1) amortised per event — which restores
//! FIFO order exactly.
//!
//! Determinism is preserved bit-for-bit relative to the reference
//! [`BinaryHeapQueue`](crate::BinaryHeapQueue): the 1 ns slot granularity
//! means every entry in a slot shares one timestamp, so FIFO order within
//! a slot *is* insertion order, and the overflow heap orders equal times
//! by insertion sequence. An event can only sit in the overflow heap
//! while its timestamp is outside the wheel horizon, and the horizon is
//! refilled from the heap on every window advance **before** new pushes
//! can land in the same slot — so cross-structure FIFO violations cannot
//! occur.

use crate::queue::{Entry, Queue};
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// log2 of the slot count: 2^16 slots × 1 ns = ~65 µs horizon.
const SLOT_BITS: u32 = 16;
/// Number of wheel slots.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot index mask.
const MASK: usize = SLOTS - 1;
/// Occupancy bitmap words.
const WORDS: usize = SLOTS / 64;
/// Summary words (one bit per occupancy word). Requires `WORDS >= 64`.
const SUM_WORDS: usize = WORDS / 64;

/// Null link in the node arena.
const NIL: u32 = u32::MAX;

/// One arena node: an event payload plus the intrusive list link.
struct Node<E> {
    /// `None` only while the node sits on the free list.
    event: Option<E>,
    next: u32,
}

/// A deterministic min-priority event queue backed by a timing wheel with
/// an overflow heap (see the module docs for the design).
///
/// This is the engine's default queue; [`EventQueue`](crate::EventQueue)
/// is an alias for it.
pub struct TimingWheel<E> {
    /// Contiguous node storage; freed nodes are recycled LIFO via `free`.
    nodes: Vec<Node<E>>,
    /// Free-list head (`NIL` when the arena has no holes).
    free: u32,
    /// Per-slot list head, stored in *reverse* insertion order.
    heads: Vec<u32>,
    /// One bit per slot: set iff the slot's `heads` list is non-empty.
    occupied: Vec<u64>,
    /// One bit per `occupied` word: set iff that word is non-zero.
    summary: [u64; SUM_WORDS],
    /// Absolute time (ns) of the slot at `cursor`. No pending event is
    /// earlier than `base`.
    base: u64,
    /// Slot index corresponding to `base`.
    cursor: usize,
    /// Drain list of the cursor slot, already reversed into FIFO order.
    /// Pushes at exactly `base` append here (tail pointer kept only for
    /// this one active slot).
    cur_head: u32,
    cur_tail: u32,
    /// Events currently stored in wheel slots (including the drain list).
    wheel_len: usize,
    /// Events at `time - base >= SLOTS`, ordered by `(time, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    /// Cached earliest pending timestamp (`None` when empty).
    next_time: Option<u64>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// An empty queue with its window starting at t = 0.
    pub fn new() -> Self {
        TimingWheel {
            nodes: Vec::new(),
            free: NIL,
            heads: vec![NIL; SLOTS],
            occupied: vec![0u64; WORDS],
            summary: [0u64; SUM_WORDS],
            base: 0,
            cursor: 0,
            cur_head: NIL,
            cur_tail: NIL,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_time: None,
            next_seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated node and overflow capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.nodes.reserve(cap);
        q.overflow.reserve(cap);
        q
    }

    #[inline]
    fn slot_of(&self, time: u64) -> usize {
        (self.cursor + (time - self.base) as usize) & MASK
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] |= 1u64 << (slot & 63);
        self.summary[w >> 6] |= 1u64 << (w & 63);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        let m = self.occupied[w] & !(1u64 << (slot & 63));
        self.occupied[w] = m;
        if m == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
    }

    /// Take a node from the free list (or grow the arena).
    #[inline]
    fn alloc(&mut self, event: E, next: u32) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.event = Some(event);
            node.next = next;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                event: Some(event),
                next,
            });
            idx
        }
    }

    /// Append a node (already holding its event) to the drain list.
    #[inline]
    fn cur_append(&mut self, idx: u32) {
        self.nodes[idx as usize].next = NIL;
        if self.cur_tail == NIL {
            self.cur_head = idx;
        } else {
            self.nodes[self.cur_tail as usize].next = idx;
        }
        self.cur_tail = idx;
    }

    /// Schedule `event` at `time`. Times earlier than the window base
    /// (already-dispatched territory) are clamped to the base, matching
    /// the scheduler's past-time clamping policy.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.as_nanos().max(self.base);
        if t == self.base {
            // The active slot: append to the (FIFO-ordered) drain list.
            let idx = self.alloc(event, NIL);
            self.cur_append(idx);
            self.wheel_len += 1;
        } else if t - self.base < SLOTS as u64 {
            let slot = self.slot_of(t);
            let head = self.heads[slot];
            self.heads[slot] = self.alloc(event, head);
            self.set_bit(slot);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Entry {
                time: SimTime::from_nanos(t),
                seq,
                event,
            });
        }
        if self.next_time.map(|n| t < n).unwrap_or(true) {
            self.next_time = Some(t);
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let t = self.next_time?;
        if t != self.base {
            self.advance_to(t);
        }
        debug_assert!(self.cur_head != NIL, "cached next time but empty slot");
        let idx = self.cur_head;
        let node = &mut self.nodes[idx as usize];
        let event = node.event.take().expect("live node");
        self.cur_head = node.next;
        node.next = self.free;
        self.free = idx;
        self.wheel_len -= 1;
        self.popped += 1;
        if self.cur_head == NIL {
            self.cur_tail = NIL;
            self.clear_bit(self.cursor);
            self.next_time = self.scan_next();
        }
        Some((SimTime::from_nanos(t), event))
    }

    /// Drain the whole base slot into `buf` in one pass over the drain
    /// list, returning its timestamp. Equivalent to — but cheaper than —
    /// popping until the next timestamp changes: the per-pop bookkeeping
    /// (drain-head updates, emptiness checks, bitmap clear, next-time
    /// rescan) runs once per *slot* instead of once per *event*.
    ///
    /// Once `advance_to` has run, every pending event stamped `t` is on
    /// the drain list: the overflow heap cannot hold entries at the base
    /// time (migration pulls them in), and pushes at `t` during the walk
    /// are impossible because the caller holds `&mut self`.
    pub fn pop_slot(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        let t = self.next_time?;
        if t != self.base {
            self.advance_to(t);
        }
        debug_assert!(self.cur_head != NIL, "cached next time but empty slot");
        let mut idx = self.cur_head;
        let mut drained = 0usize;
        while idx != NIL {
            let node = &mut self.nodes[idx as usize];
            buf.push(node.event.take().expect("live node"));
            let next = node.next;
            node.next = self.free;
            self.free = idx;
            idx = next;
            drained += 1;
        }
        self.cur_head = NIL;
        self.cur_tail = NIL;
        self.wheel_len -= drained;
        self.popped += drained as u64;
        self.clear_bit(self.cursor);
        self.next_time = self.scan_next();
        Some(SimTime::from_nanos(t))
    }

    /// Move the window so that `t` (the cached earliest pending time) is
    /// the base slot, reverse that slot's list into the drain list, then
    /// migrate every overflow event that now falls inside the horizon.
    fn advance_to(&mut self, t: u64) {
        debug_assert!(t > self.base);
        debug_assert!(self.cur_head == NIL, "drain list empties before base moves");
        if t - self.base < SLOTS as u64 {
            self.cursor = self.slot_of(t);
        }
        // Else: the wheel is empty (its entries all precede base+SLOTS,
        // and t is the minimum) — keep the cursor, rebase the window.
        self.base = t;
        // Reverse the slot's push-at-head list into FIFO drain order.
        let mut h = std::mem::replace(&mut self.heads[self.cursor], NIL);
        let tail = h;
        let mut prev = NIL;
        while h != NIL {
            let next = self.nodes[h as usize].next;
            self.nodes[h as usize].next = prev;
            prev = h;
            h = next;
        }
        self.cur_head = prev;
        self.cur_tail = tail;
        // Migrate newly-visible overflow events. Ties at `t` append to the
        // drain list in heap order (= seq order, before any later push);
        // future times push-at-head like any other insertion.
        while let Some(head) = self.overflow.peek() {
            if head.time.as_nanos() - self.base >= SLOTS as u64 {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            let at = e.time.as_nanos();
            if at == self.base {
                let idx = self.alloc(e.event, NIL);
                self.cur_append(idx);
            } else {
                let slot = self.slot_of(at);
                let head = self.heads[slot];
                self.heads[slot] = self.alloc(e.event, head);
                self.set_bit(slot);
            }
            self.wheel_len += 1;
        }
    }

    /// Earliest pending timestamp after the base slot emptied: the next
    /// occupied slot (circular two-level bitmap scan from the cursor), or
    /// the overflow minimum when the wheel is empty.
    fn scan_next(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return self.overflow.peek().map(|e| e.time.as_nanos());
        }
        let sw = self.cursor >> 6;
        let sb = self.cursor & 63;
        // 1) Slots at/after the cursor within the cursor's bitmap word.
        //    (The cursor's own bit was cleared before this scan.)
        let w = self.occupied[sw] & (!0u64 << sb);
        if w != 0 {
            return Some(self.time_of((sw << 6) + w.trailing_zeros() as usize));
        }
        // 2) Words strictly after `sw` within the same summary word.
        let hi = self.summary[sw >> 6] & (!0u64 << (sw & 63)) & !(1u64 << (sw & 63));
        if hi != 0 {
            return Some(self.first_in_word(((sw >> 6) << 6) + hi.trailing_zeros() as usize));
        }
        // 3) Remaining summary words, wrapping once around the wheel.
        for j in 1..SUM_WORDS {
            let sj = ((sw >> 6) + j) & (SUM_WORDS - 1);
            let s = self.summary[sj];
            if s != 0 {
                return Some(self.first_in_word((sj << 6) + s.trailing_zeros() as usize));
            }
        }
        // 4) Words strictly before `sw` in the cursor's summary word.
        let lo = self.summary[sw >> 6] & ((1u64 << (sw & 63)) - 1);
        if lo != 0 {
            return Some(self.first_in_word(((sw >> 6) << 6) + lo.trailing_zeros() as usize));
        }
        // 5) Slots before the cursor within the cursor's bitmap word
        //    (the far end of the circular window).
        let w = self.occupied[sw] & !(!0u64 << sb);
        debug_assert!(w != 0, "wheel_len > 0 but no occupied slot");
        Some(self.time_of((sw << 6) + w.trailing_zeros() as usize))
    }

    /// Timestamp of the first occupied slot in occupancy word `word`.
    #[inline]
    fn first_in_word(&self, word: usize) -> u64 {
        let w = self.occupied[word];
        debug_assert!(w != 0, "summary bit set for empty word");
        self.time_of((word << 6) + w.trailing_zeros() as usize)
    }

    /// Absolute time of `slot` under the current window.
    #[inline]
    fn time_of(&self, slot: usize) -> u64 {
        self.base + (slot.wrapping_sub(self.cursor) & MASK) as u64
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_time.map(SimTime::from_nanos)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events dispatched over the queue's lifetime.
    pub fn dispatched_total(&self) -> u64 {
        self.popped
    }
}

impl<E> Queue<E> for TimingWheel<E> {
    fn new() -> Self {
        TimingWheel::new()
    }

    fn push(&mut self, time: SimTime, event: E) {
        TimingWheel::push(self, time, event)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        TimingWheel::pop(self)
    }

    fn pop_slot(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        TimingWheel::pop_slot(self, buf)
    }

    fn peek_time(&self) -> Option<SimTime> {
        TimingWheel::peek_time(self)
    }

    fn len(&self) -> usize {
        TimingWheel::len(self)
    }

    fn is_empty(&self) -> bool {
        TimingWheel::is_empty(self)
    }

    fn scheduled_total(&self) -> u64 {
        TimingWheel::scheduled_total(self)
    }

    fn dispatched_total(&self) -> u64 {
        TimingWheel::dispatched_total(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        // Beyond the 65 µs horizon: lands in the overflow heap.
        q.push(SimTime::from_millis(5), 1);
        q.push(SimTime::from_millis(1), 0);
        q.push(SimTime::from_millis(9), 2);
        assert_eq!(q.len(), 3);
        for want in 0..3 {
            let (_, got) = q.pop().unwrap();
            assert_eq!(got, want);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_ties_stay_fifo_across_migration() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let t = SimTime::from_millis(2);
        for i in 0..50 {
            q.push(t, i);
        }
        // Force a window advance through an intermediate event.
        q.push(SimTime::from_micros(10), 999);
        assert_eq!(q.pop().unwrap().1, 999);
        for i in 0..50 {
            assert_eq!(q.pop().unwrap(), (t, i));
        }
    }

    #[test]
    fn slot_lists_drain_in_insertion_order() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        // Many entries in one future slot: the reversed list must come
        // back out FIFO after the lazy reversal at the cursor.
        let t = SimTime::from_nanos(500);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap(), (t, i));
        }
        // And pushes at the (new) base append after drained entries.
        q.push(t, 200);
        q.push(t, 201);
        assert_eq!(q.pop().unwrap(), (t, 200));
        q.push(t, 202);
        assert_eq!(q.pop().unwrap(), (t, 201));
        assert_eq!(q.pop().unwrap(), (t, 202));
    }

    #[test]
    fn horizon_boundary_is_exact() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let horizon = SLOTS as u64;
        q.push(SimTime::from_nanos(horizon - 1), 0); // last wheel slot
        q.push(SimTime::from_nanos(horizon), 1); // first overflow time
        assert_eq!(q.pop(), Some((SimTime::from_nanos(horizon - 1), 0)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(horizon), 1)));
    }

    #[test]
    fn past_time_pushes_clamp_to_window_base() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(SimTime::from_nanos(100), 0);
        assert_eq!(q.pop().unwrap().0.as_nanos(), 100);
        // The window base is now 100; a push at 40 clamps to 100.
        q.push(SimTime::from_nanos(40), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100), 1)));
    }

    #[test]
    fn pop_slot_matches_repeated_pops() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(0x51075);
        let mut a: TimingWheel<u32> = TimingWheel::new();
        let mut b: TimingWheel<u32> = TimingWheel::new();
        let mut now = 0u64;
        let mut id = 0u32;
        let mut buf: Vec<u32> = Vec::new();
        for _ in 0..50_000 {
            if rng.chance(0.6) || a.is_empty() {
                // Heavy same-time clustering so slots hold real batches.
                let delay = match rng.next_below(4) {
                    0 => 0,
                    1 => rng.next_below(3),
                    2 => rng.next_below(2_000),
                    _ => rng.next_below(500_000),
                };
                let t = SimTime::from_nanos(now + delay);
                a.push(t, id);
                b.push(t, id);
                id += 1;
            } else {
                buf.clear();
                let t = a.pop_slot(&mut buf).expect("non-empty");
                for &ev in &buf {
                    assert_eq!(b.pop(), Some((t, ev)), "slot drain diverged");
                }
                assert_ne!(b.peek_time(), Some(t), "pop_slot left same-time events");
                now = t.as_nanos();
            }
            assert_eq!(a.len(), b.len());
            assert_eq!(a.peek_time(), b.peek_time());
        }
        assert_eq!(a.dispatched_total(), b.dispatched_total());
    }

    #[test]
    fn pop_slot_recycles_nodes_and_drains_overflow_ties() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let mut buf = Vec::new();
        // Overflow ties migrate into the drain list and come out in one slot.
        let far = SimTime::from_millis(3);
        for i in 0..20 {
            q.push(far, i);
        }
        q.push(SimTime::from_nanos(7), 99);
        assert_eq!(q.pop_slot(&mut buf), Some(SimTime::from_nanos(7)));
        assert_eq!(buf, [99]);
        buf.clear();
        assert_eq!(q.pop_slot(&mut buf), Some(far));
        assert_eq!(buf, (0..20).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.pop_slot(&mut buf), None);
        // Freed nodes are recycled: a fresh burst must not grow the arena.
        let grown = q.nodes.len();
        for i in 0..20 {
            q.push(SimTime::from_millis(4), i);
        }
        assert_eq!(
            q.nodes.len(),
            grown,
            "pop_slot must return nodes to the free list"
        );
    }

    #[test]
    fn wrapping_window_reuses_slots() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let mut now = 0u64;
        // March far enough that the cursor wraps several times.
        for i in 0..10 * SLOTS as u32 {
            q.push(SimTime::from_nanos(now + 17), i);
            let (t, got) = q.pop().unwrap();
            assert_eq!(got, i);
            now = t.as_nanos();
        }
        assert_eq!(now, 17 * 10 * SLOTS as u64);
        assert!(q.is_empty());
        assert_eq!(q.dispatched_total(), 10 * SLOTS as u64);
        // The node arena stayed tiny: one in-flight event at a time.
        assert!(q.nodes.len() <= 2, "free list should recycle nodes");
    }
}
