//! A hierarchical timing-wheel event queue with an overflow heap.
//!
//! The dispatch loop of a packet-level simulator schedules almost
//! exclusively into the near future: serialisation delays, PCIe/memory
//! latencies and per-packet CPU costs are nanoseconds to microseconds,
//! while only periodic timers (RTO sweeps, memory ticks) and long pacing
//! holds look further ahead. A binary heap pays `O(log n)` comparisons —
//! and moves event payloads across heap levels — on every push and pop
//! regardless of that structure. The wheel exploits it, in three tiers:
//!
//! * a **near ring** of `2^14` slots, each one [`Resolution`] step wide
//!   (1 ns at the default exact resolution, 64 ns in coarse mode), covers
//!   the immediate horizon; pushing inside it is one index computation
//!   plus one linked-list splice, and *every event in a slot shares one
//!   quantised timestamp*, so the engine can drain a whole slot as one
//!   batch;
//! * a **far ring** of `2^16` slots, each `2^10` near-slots wide, covers
//!   the next `2^26` steps (~67 ms at 1 ns resolution). Far slots hold
//!   mixed timestamps; as the near horizon sweeps past a far slot the
//!   whole slot is *scattered* into exact near slots in one pass;
//! * events beyond both horizons go to a small overflow heap keyed by
//!   `(time, seq)` and migrate into the near ring as the window advances.
//!
//! Timestamps are quantised **up** to the resolution grid at push time
//! (`ceil(t / R) · R`); at the default exact resolution this is the
//! identity and behaviour is bit-for-bit what the flat 1 ns wheel
//! produced. At a coarse resolution nearby events genuinely share slots,
//! which is what makes slot-drain batching pay (see `DESIGN.md`).
//!
//! The cache layout is the point. Events live in one contiguous node
//! arena recycled through a LIFO free list, so the handful of in-flight
//! nodes stay hot; a slot is a single `u32` list head (4 bytes — a cache
//! line covers 16 adjacent slots, and near-future schedules cluster);
//! and slot lists are stored *reversed* (push-at-head) so pushes never
//! chase a tail pointer. A near list is reversed once, in place, when the
//! cursor reaches the slot — O(1) amortised per event — which restores
//! FIFO order exactly. Two-level occupancy bitmaps (one bit per slot, one
//! summary bit per bitmap word) find the next non-empty slot in a handful
//! of word reads regardless of how sparse the schedule is.
//!
//! # Ordering across tiers
//!
//! Determinism is preserved bit-for-bit relative to the reference
//! [`BinaryHeapQueue`](crate::BinaryHeapQueue) at equal resolution: FIFO
//! order within a quantised timestamp is insertion order. The argument:
//! the tier an event lands in depends only on its (quantised) time and
//! the window position at push time, and the window only moves forward.
//! So for any fixed timestamp `T`, pushes routed to the heap happened
//! before pushes routed to the far ring, which happened before direct
//! near-ring pushes — heap seqs < far seqs < near seqs. `advance_to`
//! assembles the drain list in exactly that order: near content first
//! (which is empty whenever far/heap ties exist at the new base, because
//! direct near pushes at such times were impossible), then heap
//! migrations in heap order, then far-slot scatters in per-slot seq
//! order; scatters and migrations that land on *future* near slots
//! push-at-head, which the later lazy reversal restores to seq order
//! ahead of any subsequent direct push.

use crate::queue::{Entry, Queue};
use crate::time::{Resolution, SimTime};
use std::collections::BinaryHeap;

/// log2 of the near-ring slot count: 2^14 slots × one resolution step.
/// At 1 ns resolution the near horizon is ~16 µs — wide enough for the
/// ACK echo path (~9 µs), the memory tick (10 µs) and the telemetry tick
/// (5 µs) to stay on the fast path.
const NEAR_BITS: u32 = 14;
/// Number of near-ring slots.
const NEAR_SLOTS: usize = 1 << NEAR_BITS;
/// Near slot index mask.
const NEAR_MASK: usize = NEAR_SLOTS - 1;
/// Near occupancy bitmap words.
const NEAR_WORDS: usize = NEAR_SLOTS / 64;
/// Near summary words (one bit per occupancy word).
const NEAR_SUM_WORDS: usize = NEAR_WORDS / 64;

/// log2 of a far slot's width in near-slot (resolution) steps.
const FAR_SUB_BITS: u32 = 10;
/// log2 of the far-ring slot count.
const FAR_BITS: u32 = 16;
/// Number of far-ring slots.
const FAR_SLOTS: usize = 1 << FAR_BITS;
/// Far slot index mask.
const FAR_MASK: usize = FAR_SLOTS - 1;
/// Far occupancy bitmap words.
const FAR_WORDS: usize = FAR_SLOTS / 64;
/// Far summary words.
const FAR_SUM_WORDS: usize = FAR_WORDS / 64;
/// Far horizon in resolution steps: 2^16 slots × 2^10 steps = 2^26.
const FAR_SPAN: u64 = (FAR_SLOTS as u64) << FAR_SUB_BITS;

/// Null link in the node arena.
const NIL: u32 = u32::MAX;

/// One arena node: an event payload, its quantised timestamp (in
/// resolution steps — needed to scatter far slots, which hold mixed
/// times), and the intrusive list link.
#[derive(Clone)]
struct Node<E> {
    /// `None` only while the node sits on the free list.
    event: Option<E>,
    /// Quantised time in resolution steps.
    time: u64,
    next: u32,
}

/// A deterministic min-priority event queue backed by a hierarchical
/// timing wheel with an overflow heap (see the module docs for the
/// design).
///
/// This is the engine's default queue; [`EventQueue`](crate::EventQueue)
/// is an alias for it.
#[derive(Clone)]
pub struct TimingWheel<E> {
    /// log2 of the resolution grid step in ns; all internal times are in
    /// grid steps (`ns >> shift` after rounding up).
    shift: u32,
    /// Contiguous node storage; freed nodes are recycled LIFO via `free`.
    nodes: Vec<Node<E>>,
    /// Free-list head (`NIL` when the arena has no holes).
    free: u32,
    /// Near ring: per-slot list head, stored in *reverse* insertion order.
    heads: Vec<u32>,
    /// One bit per near slot: set iff the slot's list is non-empty.
    occupied: Vec<u64>,
    /// One bit per `occupied` word: set iff that word is non-zero.
    summary: [u64; NEAR_SUM_WORDS],
    /// Time (in steps) of the slot at `cursor`. No pending event is
    /// earlier than `base`.
    base: u64,
    /// Near slot index corresponding to `base`.
    cursor: usize,
    /// Drain list of the cursor slot, already reversed into FIFO order.
    /// Pushes at exactly `base` append here (tail pointer kept only for
    /// this one active slot).
    cur_head: u32,
    cur_tail: u32,
    /// Events currently in near-ring slots (including the drain list).
    near_len: usize,
    /// Far ring: per-slot list head (reverse insertion order), absolutely
    /// indexed by `(time >> FAR_SUB_BITS) & FAR_MASK`.
    far_heads: Vec<u32>,
    far_occ: Vec<u64>,
    far_sum: [u64; FAR_SUM_WORDS],
    /// Events currently in far-ring slots.
    far_len: usize,
    /// Lower edge of the far window (in steps, a multiple of the far slot
    /// width): the near ring owns `[base, far_start)`, the far ring owns
    /// `[far_start, far_start + FAR_SPAN)` for *new* pushes, the heap
    /// everything beyond. `far_start = floor((base + NEAR_SLOTS) / W)·W`.
    far_start: u64,
    /// Cached minimum far-ring timestamp (`None` = unknown or empty).
    far_next: Option<u64>,
    /// Events pushed beyond the far horizon, ordered by `(time, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    /// Cached earliest pending timestamp in steps (`None` when empty).
    next_time: Option<u64>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// An empty queue at exact (1 ns) resolution with its window starting
    /// at t = 0.
    pub fn new() -> Self {
        Self::with_resolution(Resolution::EXACT)
    }

    /// An empty queue whose event timestamps are quantised up to the
    /// given resolution grid.
    pub fn with_resolution(res: Resolution) -> Self {
        TimingWheel {
            shift: res.shift(),
            nodes: Vec::new(),
            free: NIL,
            heads: vec![NIL; NEAR_SLOTS],
            occupied: vec![0u64; NEAR_WORDS],
            summary: [0u64; NEAR_SUM_WORDS],
            base: 0,
            cursor: 0,
            cur_head: NIL,
            cur_tail: NIL,
            near_len: 0,
            far_heads: vec![NIL; FAR_SLOTS],
            far_occ: vec![0u64; FAR_WORDS],
            far_sum: [0u64; FAR_SUM_WORDS],
            far_len: 0,
            far_start: ((NEAR_SLOTS as u64) >> FAR_SUB_BITS) << FAR_SUB_BITS,
            far_next: None,
            overflow: BinaryHeap::new(),
            next_time: None,
            next_seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated node and overflow capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.nodes.reserve(cap);
        q.overflow.reserve(cap);
        q
    }

    /// The queue's resolution grid.
    pub fn resolution(&self) -> Resolution {
        Resolution::from_nanos(1u64 << self.shift).expect("shift came from a Resolution")
    }

    #[inline]
    fn slot_of(&self, time: u64) -> usize {
        (self.cursor + (time - self.base) as usize) & NEAR_MASK
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] |= 1u64 << (slot & 63);
        self.summary[w >> 6] |= 1u64 << (w & 63);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        let m = self.occupied[w] & !(1u64 << (slot & 63));
        self.occupied[w] = m;
        if m == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
    }

    #[inline]
    fn far_set_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        self.far_occ[w] |= 1u64 << (slot & 63);
        self.far_sum[w >> 6] |= 1u64 << (w & 63);
    }

    #[inline]
    fn far_clear_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        let m = self.far_occ[w] & !(1u64 << (slot & 63));
        self.far_occ[w] = m;
        if m == 0 {
            self.far_sum[w >> 6] &= !(1u64 << (w & 63));
        }
    }

    /// Take a node from the free list (or grow the arena).
    #[inline]
    fn alloc(&mut self, event: E, time: u64, next: u32) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.event = Some(event);
            node.time = time;
            node.next = next;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                event: Some(event),
                time,
                next,
            });
            idx
        }
    }

    /// Append a node (already holding its event) to the drain list.
    #[inline]
    fn cur_append(&mut self, idx: u32) {
        self.nodes[idx as usize].next = NIL;
        if self.cur_tail == NIL {
            self.cur_head = idx;
        } else {
            self.nodes[self.cur_tail as usize].next = idx;
        }
        self.cur_tail = idx;
    }

    /// Schedule `event` at `time` (rounded up to the resolution grid).
    /// Times earlier than the window base (already-dispatched territory)
    /// are clamped to the base, matching the scheduler's past-time
    /// clamping policy.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mask = (1u64 << self.shift) - 1;
        let t = (time.as_nanos().saturating_add(mask) >> self.shift).max(self.base);
        if t == self.base {
            // The active slot: append to the (FIFO-ordered) drain list.
            let idx = self.alloc(event, t, NIL);
            self.cur_append(idx);
            self.near_len += 1;
        } else if t < self.far_start {
            // Inside the near window: `far_start <= base + NEAR_SLOTS`.
            let slot = self.slot_of(t);
            let head = self.heads[slot];
            let idx = self.alloc(event, t, head);
            self.heads[slot] = idx;
            self.set_bit(slot);
            self.near_len += 1;
        } else if t - self.far_start < FAR_SPAN {
            let fslot = ((t >> FAR_SUB_BITS) as usize) & FAR_MASK;
            debug_assert!(
                self.far_heads[fslot] == NIL
                    || self.nodes[self.far_heads[fslot] as usize].time >> FAR_SUB_BITS
                        == t >> FAR_SUB_BITS,
                "far slot holds a single epoch"
            );
            let head = self.far_heads[fslot];
            let idx = self.alloc(event, t, head);
            self.far_heads[fslot] = idx;
            self.far_set_bit(fslot);
            if self.far_len == 0 {
                self.far_next = Some(t);
            } else if let Some(m) = self.far_next {
                if t < m {
                    self.far_next = Some(t);
                }
            }
            self.far_len += 1;
        } else {
            self.overflow.push(Entry {
                time: SimTime::from_nanos(t << self.shift),
                seq,
                event,
            });
        }
        if self.next_time.map(|n| t < n).unwrap_or(true) {
            self.next_time = Some(t);
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let t = self.next_time?;
        if t != self.base {
            self.advance_to(t);
        }
        debug_assert!(self.cur_head != NIL, "cached next time but empty slot");
        let idx = self.cur_head;
        let node = &mut self.nodes[idx as usize];
        let event = node.event.take().expect("live node");
        self.cur_head = node.next;
        node.next = self.free;
        self.free = idx;
        self.near_len -= 1;
        self.popped += 1;
        if self.cur_head == NIL {
            self.cur_tail = NIL;
            self.clear_bit(self.cursor);
            self.next_time = self.scan_next();
        }
        Some((SimTime::from_nanos(t << self.shift), event))
    }

    /// Drain the whole base slot into `buf` in one pass over the drain
    /// list, returning its timestamp. Equivalent to — but cheaper than —
    /// popping until the next timestamp changes: the per-pop bookkeeping
    /// (drain-head updates, emptiness checks, bitmap clear, next-time
    /// rescan) runs once per *slot* instead of once per *event*.
    ///
    /// Once `advance_to` has run, every pending event stamped `t` is on
    /// the drain list: the far ring and overflow heap cannot hold entries
    /// at the base time (scatter and migration pull them in), and pushes
    /// at `t` during the walk are impossible because the caller holds
    /// `&mut self`.
    pub fn pop_slot(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        let t = self.next_time?;
        if t != self.base {
            self.advance_to(t);
        }
        debug_assert!(self.cur_head != NIL, "cached next time but empty slot");
        let mut idx = self.cur_head;
        let mut drained = 0usize;
        while idx != NIL {
            let node = &mut self.nodes[idx as usize];
            buf.push(node.event.take().expect("live node"));
            let next = node.next;
            node.next = self.free;
            self.free = idx;
            idx = next;
            drained += 1;
        }
        self.cur_head = NIL;
        self.cur_tail = NIL;
        self.near_len -= drained;
        self.popped += drained as u64;
        self.clear_bit(self.cursor);
        self.next_time = self.scan_next();
        Some(SimTime::from_nanos(t << self.shift))
    }

    /// Move the window so that `t` (the cached earliest pending time) is
    /// the base slot, reverse that slot's list into the drain list, then
    /// pull in everything the advance made visible: overflow events now
    /// inside the near window, and far-ring slots the near horizon has
    /// swept past.
    fn advance_to(&mut self, t: u64) {
        debug_assert!(t > self.base);
        debug_assert!(self.cur_head == NIL, "drain list empties before base moves");
        if t - self.base < NEAR_SLOTS as u64 {
            self.cursor = self.slot_of(t);
        }
        // Else: the near ring is empty (its entries all precede
        // base+NEAR_SLOTS, and t is the minimum) — keep the cursor,
        // rebase the window.
        self.base = t;
        // Reverse the slot's push-at-head list into FIFO drain order.
        let mut h = std::mem::replace(&mut self.heads[self.cursor], NIL);
        let tail = h;
        let mut prev = NIL;
        while h != NIL {
            let next = self.nodes[h as usize].next;
            self.nodes[h as usize].next = prev;
            prev = h;
            h = next;
        }
        self.cur_head = prev;
        self.cur_tail = tail;
        let new_fs = ((t + NEAR_SLOTS as u64) >> FAR_SUB_BITS) << FAR_SUB_BITS;
        // Migrate newly-visible overflow events (bulk, in two passes over
        // the heap's pop order — which is exactly `(time, seq)` order).
        // Pass 1: the whole tie-run at the new base goes straight onto
        // the drain list, no slot-head or occupancy-bit work at all.
        while let Some(head) = self.overflow.peek() {
            if head.time.as_nanos() >> self.shift != self.base {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            let idx = self.alloc(e.event, self.base, NIL);
            self.cur_append(idx);
            self.near_len += 1;
        }
        // Pass 2: future times inside the new near window push-at-head
        // like any other insertion (the lazy reversal restores heap order
        // ahead of later pushes).
        while let Some(head) = self.overflow.peek() {
            let at = head.time.as_nanos() >> self.shift;
            if at >= new_fs {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            let slot = self.slot_of(at);
            let idx = self.alloc(e.event, at, self.heads[slot]);
            self.heads[slot] = idx;
            self.set_bit(slot);
            self.near_len += 1;
        }
        // Scatter far slots the near window now covers. Only *fully*
        // covered slots (slot base below `new_fs`) move, and a slot moves
        // wholesale: reverse its push-at-head list to seq order, then
        // route each node — ties at the new base append to the drain list
        // (after heap migrants, which carry smaller seqs), future times
        // push-at-head into their exact near slot.
        if self.far_len > 0 {
            let start_idx = ((self.far_start >> FAR_SUB_BITS) as usize) & FAR_MASK;
            let mut scattered = false;
            while self.far_len > 0 {
                let Some(fslot) = self.far_first_occupied_from(start_idx) else {
                    break;
                };
                let offset = (fslot.wrapping_sub(start_idx) & FAR_MASK) as u64;
                let slot_base = self.far_start + (offset << FAR_SUB_BITS);
                if slot_base >= new_fs {
                    break;
                }
                let mut h = std::mem::replace(&mut self.far_heads[fslot], NIL);
                self.far_clear_bit(fslot);
                // Reverse in place: the list was pushed in seq order, so
                // the reversal yields ascending seq.
                let mut prev = NIL;
                while h != NIL {
                    let next = self.nodes[h as usize].next;
                    self.nodes[h as usize].next = prev;
                    prev = h;
                    h = next;
                }
                let mut n = prev;
                while n != NIL {
                    let next = self.nodes[n as usize].next;
                    let at = self.nodes[n as usize].time;
                    debug_assert!(at >= self.base && at < new_fs);
                    if at == self.base {
                        self.cur_append(n);
                    } else {
                        let slot = self.slot_of(at);
                        self.nodes[n as usize].next = self.heads[slot];
                        self.heads[slot] = n;
                        self.set_bit(slot);
                    }
                    self.far_len -= 1;
                    self.near_len += 1;
                    n = next;
                }
                scattered = true;
            }
            if scattered {
                self.far_next = None;
            }
        }
        self.far_start = new_fs;
    }

    /// First occupied far slot scanning circularly from `start` (two-level
    /// bitmap scan). All far content lies within one `FAR_SPAN` window
    /// starting at `far_start`, so circular order from `far_start`'s slot
    /// is time order.
    fn far_first_occupied_from(&self, start: usize) -> Option<usize> {
        let sw = start >> 6;
        let sb = start & 63;
        let w = self.far_occ[sw] & (!0u64 << sb);
        if w != 0 {
            return Some((sw << 6) + w.trailing_zeros() as usize);
        }
        let hi = self.far_sum[sw >> 6] & (!0u64 << (sw & 63)) & !(1u64 << (sw & 63));
        if hi != 0 {
            let word = ((sw >> 6) << 6) + hi.trailing_zeros() as usize;
            return Some((word << 6) + self.far_occ[word].trailing_zeros() as usize);
        }
        for j in 1..=FAR_SUM_WORDS {
            let sj = ((sw >> 6) + j) & (FAR_SUM_WORDS - 1);
            let mut s = self.far_sum[sj];
            if j == FAR_SUM_WORDS {
                // Wrapped all the way around: only words at/before `sw`
                // (including slots before `start` inside `sw`) remain.
                s &= ((1u64 << (sw & 63)) - 1) | (1u64 << (sw & 63));
            }
            if s != 0 {
                let word = (sj << 6) + s.trailing_zeros() as usize;
                let mut bits = self.far_occ[word];
                if word == sw {
                    bits &= !(!0u64 << sb);
                    if bits == 0 {
                        return None;
                    }
                }
                return Some((word << 6) + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Minimum timestamp in the far ring (walks the frontier slot's list
    /// once and caches the result; pushes keep the cache fresh).
    fn far_min(&mut self) -> Option<u64> {
        if self.far_len == 0 {
            return None;
        }
        if let Some(m) = self.far_next {
            return Some(m);
        }
        let start_idx = ((self.far_start >> FAR_SUB_BITS) as usize) & FAR_MASK;
        let fslot = self
            .far_first_occupied_from(start_idx)
            .expect("far_len > 0 but no occupied far slot");
        let mut min = u64::MAX;
        let mut n = self.far_heads[fslot];
        while n != NIL {
            let node = &self.nodes[n as usize];
            min = min.min(node.time);
            n = node.next;
        }
        self.far_next = Some(min);
        Some(min)
    }

    /// Earliest pending timestamp after the base slot emptied: the next
    /// occupied near slot (circular two-level bitmap scan from the
    /// cursor), else the minimum of the far ring and the overflow heap.
    /// Near content always precedes far content precedes heap *pushes*,
    /// but old heap entries can sit inside today's far window, so the
    /// far/heap minimum is a genuine min, not a cascade.
    fn scan_next(&mut self) -> Option<u64> {
        if self.near_len > 0 {
            return Some(self.scan_near());
        }
        let far = self.far_min();
        let heap = self
            .overflow
            .peek()
            .map(|e| e.time.as_nanos() >> self.shift);
        match (far, heap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Next occupied near slot; the caller guarantees `near_len > 0`.
    fn scan_near(&self) -> u64 {
        let sw = self.cursor >> 6;
        let sb = self.cursor & 63;
        // 1) Slots at/after the cursor within the cursor's bitmap word.
        //    (The cursor's own bit was cleared before this scan.)
        let w = self.occupied[sw] & (!0u64 << sb);
        if w != 0 {
            return self.time_of((sw << 6) + w.trailing_zeros() as usize);
        }
        // 2) Words strictly after `sw` within the same summary word.
        let hi = self.summary[sw >> 6] & (!0u64 << (sw & 63)) & !(1u64 << (sw & 63));
        if hi != 0 {
            return self.first_in_word(((sw >> 6) << 6) + hi.trailing_zeros() as usize);
        }
        // 3) Remaining summary words, wrapping once around the wheel.
        for j in 1..NEAR_SUM_WORDS {
            let sj = ((sw >> 6) + j) & (NEAR_SUM_WORDS - 1);
            let s = self.summary[sj];
            if s != 0 {
                return self.first_in_word((sj << 6) + s.trailing_zeros() as usize);
            }
        }
        // 4) Words strictly before `sw` in the cursor's summary word.
        let lo = self.summary[sw >> 6] & ((1u64 << (sw & 63)) - 1);
        if lo != 0 {
            return self.first_in_word(((sw >> 6) << 6) + lo.trailing_zeros() as usize);
        }
        // 5) Slots before the cursor within the cursor's bitmap word
        //    (the far end of the circular window).
        let w = self.occupied[sw] & !(!0u64 << sb);
        debug_assert!(w != 0, "near_len > 0 but no occupied slot");
        self.time_of((sw << 6) + w.trailing_zeros() as usize)
    }

    /// Timestamp of the first occupied slot in occupancy word `word`.
    #[inline]
    fn first_in_word(&self, word: usize) -> u64 {
        let w = self.occupied[word];
        debug_assert!(w != 0, "summary bit set for empty word");
        self.time_of((word << 6) + w.trailing_zeros() as usize)
    }

    /// Time (in steps) of near `slot` under the current window.
    #[inline]
    fn time_of(&self, slot: usize) -> u64 {
        self.base + (slot.wrapping_sub(self.cursor) & NEAR_MASK) as u64
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_time.map(|t| SimTime::from_nanos(t << self.shift))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.near_len + self.far_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events dispatched over the queue's lifetime.
    pub fn dispatched_total(&self) -> u64 {
        self.popped
    }
}

impl<E: Clone> crate::snap::SnapQueue<E> for TimingWheel<E> {
    /// Serialize by draining a clone in dispatch order. The restored wheel
    /// re-pushes the events into a fresh window (base 0), which may place
    /// them in different tiers than the original — that only shifts
    /// *where* bookkeeping work happens, never the pop order: pushes in
    /// ascending dispatch order get ascending seqs, and the wheel's
    /// cross-tier ordering guarantee makes the pop sequence a pure
    /// function of `(time, seq)`.
    fn save_state<F: FnMut(&E, &mut crate::snap::SnapWriter)>(
        &self,
        w: &mut crate::snap::SnapWriter,
        mut enc: F,
    ) {
        w.u32(self.shift);
        w.u64(self.next_seq);
        w.u64(self.popped);
        w.usize(self.len());
        let mut drain = self.clone();
        while let Some((t, ev)) = drain.pop() {
            w.time(t);
            enc(&ev, w);
        }
    }

    fn load_state<
        'a,
        F: FnMut(&mut crate::snap::SnapReader<'a>) -> Result<E, crate::snap::SnapError>,
    >(
        r: &mut crate::snap::SnapReader<'a>,
        mut dec: F,
    ) -> Result<Self, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let shift = r.u32()?;
        let res = u64::checked_shl(1, shift)
            .and_then(Resolution::from_nanos)
            .ok_or(SnapError::Corrupt("bad wheel resolution"))?;
        let next_seq = r.u64()?;
        let popped = r.u64()?;
        let n = r.len(9)?; // 8 B timestamp + >=1 B event each
        if (n as u64) > next_seq {
            return Err(SnapError::Corrupt("more pending events than scheduled"));
        }
        let mut q = TimingWheel::with_resolution(res);
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let t = r.time()?;
            if t < last {
                return Err(SnapError::Corrupt("wheel events out of order"));
            }
            last = t;
            q.push(t, dec(r)?);
        }
        // Lifetime counters continue from the checkpoint, and future
        // pushes' seqs sort after every restored entry.
        q.next_seq = next_seq;
        q.popped = popped;
        Ok(q)
    }
}

impl<E> Queue<E> for TimingWheel<E> {
    fn with_resolution(res: Resolution) -> Self {
        TimingWheel::with_resolution(res)
    }

    fn push(&mut self, time: SimTime, event: E) {
        TimingWheel::push(self, time, event)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        TimingWheel::pop(self)
    }

    fn pop_slot(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        TimingWheel::pop_slot(self, buf)
    }

    fn peek_time(&self) -> Option<SimTime> {
        TimingWheel::peek_time(self)
    }

    fn len(&self) -> usize {
        TimingWheel::len(self)
    }

    fn is_empty(&self) -> bool {
        TimingWheel::is_empty(self)
    }

    fn scheduled_total(&self) -> u64 {
        TimingWheel::scheduled_total(self)
    }

    fn dispatched_total(&self) -> u64 {
        TimingWheel::dispatched_total(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Beyond the far horizon from t = 0: lands in the overflow heap.
    const HEAP_NS: u64 = FAR_SPAN + (NEAR_SLOTS as u64) + 1_000_000;

    #[test]
    fn far_future_events_round_trip_through_far_ring_and_overflow() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        // Far ring (ms range) and overflow heap (beyond ~67 ms).
        q.push(SimTime::from_millis(5), 1);
        q.push(SimTime::from_millis(1), 0);
        q.push(SimTime::from_nanos(HEAP_NS), 3);
        q.push(SimTime::from_millis(9), 2);
        q.push(SimTime::from_nanos(HEAP_NS + 7), 4);
        assert_eq!(q.len(), 5);
        for want in 0..5 {
            let (_, got) = q.pop().unwrap();
            assert_eq!(got, want);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_ties_stay_fifo_across_migration() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let t = SimTime::from_nanos(HEAP_NS);
        for i in 0..50 {
            q.push(t, i);
        }
        // Force a window advance through an intermediate event.
        q.push(SimTime::from_micros(10), 999);
        assert_eq!(q.pop().unwrap().1, 999);
        for i in 0..50 {
            assert_eq!(q.pop().unwrap(), (t, i));
        }
    }

    /// Regression for the bulk overflow migration: a tie-run at the new
    /// base interleaved (by push order) with later-time heap entries must
    /// still emerge in seq order, and the later entries must re-emerge in
    /// their own seq order afterwards.
    #[test]
    fn overflow_bulk_migration_keeps_interleaved_ties_in_seq_order() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let t0 = SimTime::from_nanos(HEAP_NS);
        let t1 = SimTime::from_nanos(HEAP_NS + 64);
        // Interleave pushes across the two heap timestamps.
        for i in 0..40 {
            if i % 2 == 0 {
                q.push(t0, i);
            } else {
                q.push(t1, i);
            }
        }
        // Both migrate in the same advance (they are 64 ns apart, well
        // inside one near window).
        for i in (0..40).step_by(2) {
            assert_eq!(q.pop().unwrap(), (t0, i));
        }
        for i in (1..40).step_by(2) {
            assert_eq!(q.pop().unwrap(), (t1, i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn slot_lists_drain_in_insertion_order() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        // Many entries in one future slot: the reversed list must come
        // back out FIFO after the lazy reversal at the cursor.
        let t = SimTime::from_nanos(500);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap(), (t, i));
        }
        // And pushes at the (new) base append after drained entries.
        q.push(t, 200);
        q.push(t, 201);
        assert_eq!(q.pop().unwrap(), (t, 200));
        q.push(t, 202);
        assert_eq!(q.pop().unwrap(), (t, 201));
        assert_eq!(q.pop().unwrap(), (t, 202));
    }

    #[test]
    fn tier_boundaries_are_exact() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        // From base 0: near ring owns [0, 16384), far ring
        // [16384, 16384 + FAR_SPAN), heap beyond.
        let near_edge = NEAR_SLOTS as u64;
        let heap_edge = near_edge + FAR_SPAN;
        q.push(SimTime::from_nanos(near_edge - 1), 0); // last near slot
        q.push(SimTime::from_nanos(near_edge), 1); // first far time
        q.push(SimTime::from_nanos(heap_edge - 1), 2); // last far time
        q.push(SimTime::from_nanos(heap_edge), 3); // first heap time
        assert_eq!(q.overflow.len(), 1);
        assert_eq!(q.far_len, 2);
        assert_eq!(q.near_len, 1);
        for want in 0..4 {
            let (_, got) = q.pop().unwrap();
            assert_eq!(got, want);
        }
    }

    /// The cross-tier seq-order guarantee: pushes at one timestamp that
    /// land in different tiers (because the window advanced between them)
    /// must still pop in push order.
    #[test]
    fn same_timestamp_pushes_across_tiers_pop_in_seq_order() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let x = SimTime::from_nanos(HEAP_NS); // beyond the heap edge from base 0
        q.push(x, 0); // → overflow heap
        q.push(SimTime::from_millis(20), 100); // far ring marker
        assert_eq!(q.pop().unwrap().1, 100); // base → 20 ms; x now in far range
        q.push(x, 1); // → far ring (same slot, later seq)
        q.push(SimTime::from_millis(40), 101);
        assert_eq!(q.pop().unwrap().1, 101); // base → 40 ms; x still far
        q.push(x, 2); // → far ring again
        q.push(SimTime::from_nanos(HEAP_NS - 100), 102); // near the target
        assert_eq!(q.pop().unwrap().1, 102); // base → x-100; scatters x's slot
        q.push(x, 3); // → near ring directly
                      // Heap entry (0) first, then far entries (1, 2), then the direct
                      // near push (3): exactly push order.
        for want in 0..4 {
            assert_eq!(q.pop().unwrap(), (x, want));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn past_time_pushes_clamp_to_window_base() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(SimTime::from_nanos(100), 0);
        assert_eq!(q.pop().unwrap().0.as_nanos(), 100);
        // The window base is now 100; a push at 40 clamps to 100.
        q.push(SimTime::from_nanos(40), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100), 1)));
    }

    #[test]
    fn coarse_resolution_quantises_up_and_keeps_fifo() {
        let res = Resolution::from_nanos(64).unwrap();
        let mut q: TimingWheel<u32> = TimingWheel::with_resolution(res);
        assert_eq!(q.resolution(), res);
        // 1..64 all round up to the same 64 ns slot; 0 stays at 0.
        q.push(SimTime::from_nanos(70), 2);
        q.push(SimTime::from_nanos(1), 0);
        q.push(SimTime::from_nanos(64), 1);
        q.push(SimTime::from_nanos(128), 3);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(64), 0)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(64), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(128), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(128), 3)));
        // A whole batch shares the slot under pop_slot.
        let mut buf = Vec::new();
        for i in 10..20 {
            q.push(SimTime::from_nanos(1000 + (i as u64 - 10)), i);
        }
        assert_eq!(q.pop_slot(&mut buf), Some(SimTime::from_nanos(1024)));
        assert_eq!(buf, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn pop_slot_matches_repeated_pops() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(0x51075);
        let mut a: TimingWheel<u32> = TimingWheel::new();
        let mut b: TimingWheel<u32> = TimingWheel::new();
        let mut now = 0u64;
        let mut id = 0u32;
        let mut buf: Vec<u32> = Vec::new();
        for _ in 0..50_000 {
            if rng.chance(0.6) || a.is_empty() {
                // Heavy same-time clustering so slots hold real batches,
                // with delays spanning all three tiers.
                let delay = match rng.next_below(5) {
                    0 => 0,
                    1 => rng.next_below(3),
                    2 => rng.next_below(2_000),
                    3 => rng.next_below(500_000),
                    _ => rng.next_below(100_000_000),
                };
                let t = SimTime::from_nanos(now + delay);
                a.push(t, id);
                b.push(t, id);
                id += 1;
            } else {
                buf.clear();
                let t = a.pop_slot(&mut buf).expect("non-empty");
                for &ev in &buf {
                    assert_eq!(b.pop(), Some((t, ev)), "slot drain diverged");
                }
                assert_ne!(b.peek_time(), Some(t), "pop_slot left same-time events");
                now = t.as_nanos();
            }
            assert_eq!(a.len(), b.len());
            assert_eq!(a.peek_time(), b.peek_time());
        }
        assert_eq!(a.dispatched_total(), b.dispatched_total());
    }

    #[test]
    fn pop_slot_recycles_nodes_and_drains_overflow_ties() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let mut buf = Vec::new();
        // Overflow ties migrate into the drain list and come out in one slot.
        let far = SimTime::from_nanos(HEAP_NS);
        for i in 0..20 {
            q.push(far, i);
        }
        q.push(SimTime::from_nanos(7), 99);
        assert_eq!(q.pop_slot(&mut buf), Some(SimTime::from_nanos(7)));
        assert_eq!(buf, [99]);
        buf.clear();
        assert_eq!(q.pop_slot(&mut buf), Some(far));
        assert_eq!(buf, (0..20).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.pop_slot(&mut buf), None);
        // Freed nodes are recycled: a fresh burst must not grow the arena.
        let grown = q.nodes.len();
        for i in 0..20 {
            q.push(SimTime::from_nanos(HEAP_NS + 1_000_000), i);
        }
        let _ = q.pop();
        assert_eq!(
            q.nodes.len(),
            grown,
            "pop_slot must return nodes to the free list"
        );
    }

    #[test]
    fn wrapping_window_reuses_slots() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        let mut now = 0u64;
        // March far enough that the near cursor wraps several times.
        for i in 0..10 * NEAR_SLOTS as u32 {
            q.push(SimTime::from_nanos(now + 17), i);
            let (t, got) = q.pop().unwrap();
            assert_eq!(got, i);
            now = t.as_nanos();
        }
        assert_eq!(now, 17 * 10 * NEAR_SLOTS as u64);
        assert!(q.is_empty());
        assert_eq!(q.dispatched_total(), 10 * NEAR_SLOTS as u64);
        // The node arena stayed tiny: one in-flight event at a time.
        assert!(q.nodes.len() <= 2, "free list should recycle nodes");
    }

    /// March a long-lived schedule through several far-window rotations:
    /// periodic timers at many phases continuously cross the near/far
    /// boundary and must keep exact order.
    #[test]
    fn far_ring_scatter_preserves_order_across_rotations() {
        let mut q: TimingWheel<u64> = TimingWheel::new();
        let mut expected = std::collections::VecDeque::new();
        // Periodic timers: 250 µs cadence at 8 phases, far enough ahead
        // to live in the far ring, re-armed on every fire.
        let mut next_fire: Vec<u64> = (0..8).map(|p| 250_000 + p * 31_013).collect();
        for id in 0..2_000u64 {
            let (phase, &t) = next_fire
                .iter()
                .enumerate()
                .min_by_key(|&(i, &t)| (t, i))
                .unwrap();
            q.push(SimTime::from_nanos(t), id);
            expected.push_back((t, id));
            next_fire[phase] = t + 250_000;
        }
        // Sort expected by (time, push order) — push order here is also
        // min-time order, so expected is already sorted; drain and check.
        let mut sorted: Vec<(u64, u64)> = expected.iter().copied().collect();
        sorted.sort();
        while let Some((t, v)) = q.pop() {
            let (et, ev) = sorted.remove(0);
            assert_eq!((t.as_nanos(), v), (et, ev));
        }
        assert!(sorted.is_empty());
    }
}
