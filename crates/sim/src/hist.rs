//! Log-linear latency histogram (HdrHistogram-style).
//!
//! Values are bucketed with bounded relative error (~1/32 by default), which
//! is plenty for reporting p50/p99/p999 queueing delays while using a few KiB
//! of memory regardless of sample count.

/// A histogram over `u64` values (we use nanoseconds) with log-linear buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// 2^sub_bits linear sub-buckets per power-of-two range.
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Default precision: 32 sub-buckets per octave (~3% relative error).
    pub fn new() -> Self {
        Self::with_precision(5)
    }

    /// `sub_bits` linear sub-bucket bits per octave (1..=8).
    pub fn with_precision(sub_bits: u32) -> Self {
        assert!((1..=8).contains(&sub_bits), "sub_bits out of range");
        // 64 octaves max for u64 values.
        let buckets = (64 - sub_bits as usize + 1) * (1 << sub_bits);
        Histogram {
            sub_bits,
            counts: vec![0; buckets],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Bucket layout: values below `2^sub_bits` are stored exactly
    /// (index == value). Every octave above that gets a **full**
    /// `2^sub_bits`-entry bucket — unlike HdrHistogram's half-octave
    /// scheme, the leading bit is stored rather than implied, trading
    /// ~2× bucket memory for branch-free indexing. For a value with
    /// `bits` significant bits the sub-bucket width is `2^(bits-sub-1)`,
    /// so the relative quantization error is bounded by `2^-sub_bits`
    /// (1/32 at the default precision).
    #[inline]
    fn index_of(&self, value: u64) -> usize {
        let sub = self.sub_bits;
        // Values below 2^sub_bits land in the first linear region.
        let bits = 64 - value.leading_zeros();
        if bits <= sub {
            return value as usize;
        }
        let shift = bits - sub - 1;
        let bucket = shift as usize + 1;
        // The top sub_bits+1 significant bits of `value`; the leading bit
        // is masked off because `bucket` already encodes the octave.
        let sub_idx = ((value >> shift) as usize) & ((1 << sub) - 1);
        bucket * (1 << sub) + sub_idx
    }

    /// Lowest value that maps to the bucket at `idx` (inverse of `index_of`).
    fn value_of(&self, idx: usize) -> u64 {
        let sub = self.sub_bits;
        let per = 1usize << sub;
        let bucket = idx / per;
        let sub_idx = (idx % per) as u64;
        if bucket == 0 {
            return sub_idx;
        }
        let shift = (bucket - 1) as u32;
        ((1u64 << sub) | sub_idx) << shift
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1)
    }

    /// Record `count` samples of the same value.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = self.index_of(value);
        self.counts[idx] += count;
        self.total += count;
        self.sum += value as u128 * count as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all samples (tracked outside the buckets).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of all samples (tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in [0, 1]. Returns the lower bound of the bucket
    /// containing the q-th sample (so the error is bounded by bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.value_of(idx).max(self.min()).min(self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another histogram recorded with the same precision.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "precision mismatch");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serialize the histogram for a checkpoint. Buckets are written
    /// sparsely — `(index, count)` pairs for the non-zero ones — since a
    /// latency histogram touches a few dozen of its ~2k buckets.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u32(self.sub_bits);
        w.u64(self.total);
        w.u64(self.min);
        w.u64(self.max);
        w.u128(self.sum);
        let nonzero = self.counts.iter().filter(|&&c| c != 0).count();
        w.usize(nonzero);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                w.usize(idx);
                w.u64(c);
            }
        }
    }

    /// Rebuild a histogram from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let sub_bits = r.u32()?;
        if !(1..=8).contains(&sub_bits) {
            return Err(SnapError::Corrupt("histogram precision out of range"));
        }
        let mut h = Histogram::with_precision(sub_bits);
        h.total = r.u64()?;
        h.min = r.u64()?;
        h.max = r.u64()?;
        h.sum = r.u128()?;
        let n = r.len(16)?;
        let mut running = 0u64;
        for _ in 0..n {
            let idx = r.usize()?;
            let c = r.u64()?;
            let slot = h
                .counts
                .get_mut(idx)
                .ok_or(SnapError::Corrupt("histogram bucket out of range"))?;
            if c == 0 {
                return Err(SnapError::Corrupt("zero count in sparse histogram"));
            }
            *slot = c;
            running = running
                .checked_add(c)
                .ok_or(SnapError::Corrupt("histogram count overflow"))?;
        }
        if running != h.total {
            return Err(SnapError::Corrupt("histogram total mismatch"));
        }
        Ok(h)
    }

    /// Discard all samples.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        // Values < 2^sub_bits are stored exactly.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn quantiles_bounded_relative_error() {
        let mut h = Histogram::new();
        // Record 1..=100_000 uniformly; quantiles should be within ~3.2%.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.04, "q={q} got={got} expect={expect} rel={rel}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record_n(100, 3);
        h.record(200);
        assert!((h.mean() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(50, 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert!(a.max() >= 1_000_000 * 31 / 32);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(42);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn index_value_roundtrip_monotone() {
        // Seeded property test over random (mostly non-power-of-two)
        // values spanning the full u64 octave range: the index must be
        // monotone in the value, the bucket lower bound must round-trip
        // back to the same index, and the end-to-end quantization error
        // must respect the documented 2^-sub_bits (1/32) bound.
        use crate::rng::SimRng;
        let h = Histogram::new();
        let mut rng = SimRng::new(0x41D5_7031);
        let mut values: Vec<u64> = Vec::with_capacity(4_200);
        for _ in 0..4_000 {
            // Uniform over octaves, then uniform within the octave, so
            // small and huge magnitudes are equally represented.
            let bits = rng.next_range(1, 63);
            values.push(rng.next_range(1u64 << (bits - 1), (1u64 << bits) - 1));
        }
        // Keep the old deterministic edge cases: exact powers of two.
        values.extend((0..64).map(|e| 1u64 << e));
        values.sort_unstable();
        let mut last_idx = 0usize;
        for &v in &values {
            let idx = h.index_of(v);
            assert!(idx >= last_idx, "index must be monotone in value ({v})");
            last_idx = idx;
            let lo = h.value_of(idx);
            assert!(lo <= v, "bucket lower bound {lo} must be <= {v}");
            assert_eq!(h.index_of(lo), idx, "lower bound must round-trip");
            // Relative error bound: bucket width / value <= 2^-sub_bits.
            assert!(
                (v - lo) as f64 / v as f64 <= 1.0 / 32.0 + 1e-12,
                "value {v} quantized to {lo} exceeds the 1/32 bound"
            );
        }
    }
}
