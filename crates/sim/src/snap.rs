//! Versioned binary snapshot codec.
//!
//! Checkpoint/restore has to be bit-exact and dependency-free, so the
//! format is hand-rolled: little-endian fixed-width integers, `f64` as raw
//! IEEE-754 bits, length-prefixed byte strings, and an outer envelope of
//!
//! ```text
//! magic (8 B) | version (u32) | payload_len (u64) | fnv1a64(payload) | payload
//! ```
//!
//! Every read is bounds-checked and returns a typed [`SnapError`] — a
//! corrupt, truncated, or version-mismatched snapshot must never panic,
//! only fail loudly so callers can fall back to restart-from-scratch.
//!
//! The codec deliberately has no reflection or schema: each component
//! writes and reads its own fields in a fixed order, so the byte stream is
//! exactly as stable as the component code that produced it, and the
//! envelope version is bumped whenever any component's layout changes.

use crate::time::{SimDuration, SimTime};
use core::fmt;

/// Magic bytes opening every snapshot envelope.
pub const SNAP_MAGIC: [u8; 8] = *b"HCCSNAP\0";

/// Current snapshot format version. Bump on any layout change; old
/// versions are rejected, never migrated (a checkpoint is a cache of
/// re-runnable work, not an archive).
pub const SNAP_VERSION: u32 = 1;

/// Envelope header size: magic + version + payload length + checksum.
pub const SNAP_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Typed decode failure. All malformed-input paths land here — no decode
/// path is allowed to panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the field being read.
    Eof,
    /// The envelope does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The envelope's format version is not the one this build writes.
    BadVersion {
        /// Version found in the envelope header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The envelope header promises more payload bytes than are present.
    Truncated,
    /// The payload checksum does not match the header.
    Checksum,
    /// A field decoded to a value that cannot be valid state.
    Corrupt(&'static str),
    /// The live state cannot be checkpointed right now (e.g. an enabled
    /// observability layer holds unbounded history the format excludes).
    /// A save-side refusal, not a decode failure.
    Unsupported(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof => write!(f, "snapshot ended mid-field"),
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion { found, expected } => {
                write!(f, "snapshot format v{found} (this build reads v{expected})")
            }
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::Checksum => write!(f, "snapshot checksum mismatch"),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::Unsupported(what) => write!(f, "cannot checkpoint: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash — the snapshot checksum and the digest primitive the
/// test suite uses for metric comparison.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Event queues whose pending contents can be serialized in dispatch
/// order and rebuilt bit-exactly. Both engine queues implement it, so the
/// checkpoint layer is generic over the queue the simulation runs on.
pub trait SnapQueue<E>: crate::queue::Queue<E> {
    /// Serialize lifetime counters plus every pending `(time, event)` in
    /// exactly the order repeated `pop` calls would return them.
    fn save_state<F: FnMut(&E, &mut SnapWriter)>(&self, w: &mut SnapWriter, enc: F);

    /// Rebuild a queue from [`save_state`](SnapQueue::save_state) output.
    /// The restored queue is observationally identical: same pop sequence,
    /// same FIFO tie-breaks against future pushes, same lifetime counters.
    fn load_state<'a, F: FnMut(&mut SnapReader<'a>) -> Result<E, SnapError>>(
        r: &mut SnapReader<'a>,
        dec: F,
    ) -> Result<Self, SnapError>
    where
        Self: Sized;
}

/// Append-only snapshot payload writer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The raw payload (no envelope).
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Wrap the payload in the versioned, checksummed envelope.
    pub fn into_envelope(self) -> Vec<u8> {
        let payload = self.buf;
        let mut out = Vec::with_capacity(SNAP_HEADER_LEN + payload.len());
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its raw IEEE-754 bits (bit-exact round trip,
    /// including NaN payloads and signed zeros).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a [`SimTime`].
    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_nanos());
    }

    /// Write a [`SimDuration`].
    pub fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_nanos());
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Write an `Option` as a presence byte plus the value.
    pub fn opt<T>(&mut self, v: &Option<T>, mut enc: impl FnMut(&T, &mut SnapWriter)) {
        match v {
            Some(x) => {
                self.bool(true);
                enc(x, self);
            }
            None => self.bool(false),
        }
    }

    /// Write a slice as a length prefix plus each element.
    pub fn seq<T>(&mut self, items: &[T], mut enc: impl FnMut(&T, &mut SnapWriter)) {
        self.usize(items.len());
        for it in items {
            enc(it, self);
        }
    }
}

/// Bounds-checked snapshot payload reader.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over a raw payload (no envelope).
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Validate an envelope (magic, version, length, checksum) and return
    /// a reader positioned at the start of its payload.
    pub fn open(data: &'a [u8]) -> Result<Self, SnapError> {
        if data.len() < SNAP_HEADER_LEN {
            // Too short even for the header: distinguish "not a snapshot
            // at all" from "snapshot cut off mid-header".
            if data.len() >= 8 && data[..8] != SNAP_MAGIC {
                return Err(SnapError::BadMagic);
            }
            return Err(SnapError::Truncated);
        }
        if data[..8] != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != SNAP_VERSION {
            return Err(SnapError::BadVersion {
                found: version,
                expected: SNAP_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
        let checksum = u64::from_le_bytes(data[20..28].try_into().expect("8 bytes"));
        let payload = &data[SNAP_HEADER_LEN..];
        if (payload.len() as u64) < payload_len {
            return Err(SnapError::Truncated);
        }
        if (payload.len() as u64) > payload_len {
            return Err(SnapError::Corrupt("trailing bytes after payload"));
        }
        if fnv1a_64(payload) != checksum {
            return Err(SnapError::Checksum);
        }
        Ok(SnapReader::new(payload))
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole payload has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless every payload byte was consumed — a decode that leaves
    /// trailing bytes read a different layout than the writer wrote.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(SnapError::Corrupt("unconsumed payload bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 B")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 B")))
    }

    /// Read a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 B"),
        ))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 B")))
    }

    /// Read a `u64` written as a `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt("usize overflow"))
    }

    /// Read a collection length, bounded so a corrupt length cannot drive
    /// an enormous allocation: each element needs at least `min_elem_bytes`
    /// payload bytes, so any honest length fits in what remains.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapError::Corrupt("length exceeds payload"));
        }
        Ok(n)
    }

    /// Read an `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool`; anything but 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool out of range")),
        }
    }

    /// Read a [`SimTime`].
    pub fn time(&mut self) -> Result<SimTime, SnapError> {
        Ok(SimTime::from_nanos(self.u64()?))
    }

    /// Read a [`SimDuration`].
    pub fn duration(&mut self) -> Result<SimDuration, SnapError> {
        Ok(SimDuration::from_nanos(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len(1)?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| SnapError::Corrupt("invalid utf-8"))
    }

    /// Read an `Option` written by [`SnapWriter::opt`].
    pub fn opt<T>(
        &mut self,
        mut dec: impl FnMut(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.bool()? {
            Ok(Some(dec(self)?))
        } else {
            Ok(None)
        }
    }

    /// Read a sequence written by [`SnapWriter::seq`] into a `Vec`.
    pub fn seq<T>(
        &mut self,
        min_elem_bytes: usize,
        mut dec: impl FnMut(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let n = self.len(min_elem_bytes)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(dec(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.u128(u128::MAX - 5);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.time(SimTime::from_nanos(123));
        w.duration(SimDuration::from_nanos(456));
        w.str("héllo");
        w.opt(&Some(9u64), |v, w| w.u64(*v));
        w.opt(&None::<u64>, |v, w| w.u64(*v));
        w.seq(&[1u64, 2, 3], |v, w| w.u64(*v));
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), u128::MAX - 5);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.time().unwrap(), SimTime::from_nanos(123));
        assert_eq!(r.duration().unwrap(), SimDuration::from_nanos(456));
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(9));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(8, |r| r.u64()).unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn envelope_round_trip_and_rejections() {
        let mut w = SnapWriter::new();
        w.u64(0x1234_5678_9ABC_DEF0);
        let env = w.into_envelope();
        // Clean round trip.
        let mut r = SnapReader::open(&env).unwrap();
        assert_eq!(r.u64().unwrap(), 0x1234_5678_9ABC_DEF0);
        r.finish().unwrap();
        // Bad magic.
        let mut bad = env.clone();
        bad[0] ^= 0xFF;
        assert_eq!(SnapReader::open(&bad).unwrap_err(), SnapError::BadMagic);
        // Version mismatch.
        let mut bad = env.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(matches!(
            SnapReader::open(&bad),
            Err(SnapError::BadVersion { .. })
        ));
        // Truncation at every prefix length: typed error, never a panic.
        for cut in 0..env.len() {
            assert!(SnapReader::open(&env[..cut]).is_err(), "cut={cut}");
        }
        // Any single flipped payload bit trips the checksum.
        let mut bad = env.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(SnapReader::open(&bad).unwrap_err(), SnapError::Checksum);
        // Trailing garbage is rejected too.
        let mut bad = env.clone();
        bad.push(0);
        assert!(SnapReader::open(&bad).is_err());
    }

    #[test]
    fn reads_past_end_are_typed_errors() {
        let mut r = SnapReader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), Err(SnapError::Eof));
        let mut r = SnapReader::new(&[]);
        assert_eq!(r.u8(), Err(SnapError::Eof));
        // A huge claimed length must not allocate.
        let mut w = SnapWriter::new();
        w.u64(u64::MAX / 2);
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        assert!(matches!(r.seq(8, |r| r.u64()), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so snapshot checksums (and test digests) never drift.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"hostcc"), fnv1a_64(b"hostcc"));
        assert_ne!(fnv1a_64(b"hostcc"), fnv1a_64(b"hostcd"));
    }
}
