//! Conservative parallel discrete-event execution across shards.
//!
//! A [`ParallelEngine`] drives N independent hosts — each with its own
//! event queue, clock and RNG streams — on S worker threads ("shards").
//! Hosts interact only through messages with a minimum delivery latency,
//! the **lookahead** `L`: a message emitted while a host executes events
//! at time `t` may not fire before `t + L`. That bound is exactly what a
//! conservative ("null-message-free", SimBricks-style) synchronisation
//! scheme needs:
//!
//! 1. Compute the global minimum next-event time `g` across all hosts.
//! 2. Advance every host independently to `epoch_end = g + L`.
//!    Safety: any cross-host message generated inside the epoch was
//!    emitted at some `t >= g`, so it fires at `>= g + L >= epoch_end` —
//!    never inside the epoch that generated it.
//! 3. Exchange the emitted messages through per-shard-pair mailboxes,
//!    barrier, and repeat.
//!
//! # Determinism: thread count AND placement are unobservable
//!
//! Three properties make the result bit-identical at any shard count
//! (including 1) and under any host→shard assignment:
//!
//! * **Epoch boundaries are global.** `epoch_end` is computed from the
//!   minimum over *all* hosts, so the sequence of epochs is a pure
//!   function of simulation state, not of the host→shard assignment.
//!   This matters because delivery *timing* is observable: an envelope
//!   injected in an earlier epoch sits in the host's queue ahead of
//!   same-timestamp events the host schedules later (FIFO within a
//!   timestamp slot). Global epochs make that interleaving identical
//!   everywhere.
//! * **The merge key is simulation-derived.** Before delivery, each
//!   shard sorts its inbound envelopes by `(fire, src_host, seq)`, where
//!   `seq` is a per-source-host counter. The key never encodes which
//!   thread produced or transported the envelope, and it is unique
//!   (each source host numbers its own envelopes), so the per-host
//!   delivery sequence is a total order independent of thread
//!   interleaving.
//! * **Placement never feeds the simulation.** The host→shard map (see
//!   [`set_placement`](ParallelEngine::set_placement)) decides only
//!   which worker drives which host and which mailbox an envelope rides
//!   in; host seeds, epoch boundaries and merge keys are all derived
//!   from global host ids. Measured-cost rebalancing can therefore move
//!   hosts freely between runs without perturbing a single digest.
//!
//! # Super-epochs: amortizing the barrier on sparse traffic
//!
//! The classic window `g + L` assumes every pending event could emit a
//! message. Hosts that know better can promise more through
//! [`next_send_time`](ShardHost::next_send_time): a lower bound on the
//! time of the earliest event that could emit an envelope (`None` =
//! never, e.g. a host with no remote flows). With `s` the global minimum
//! of those bounds, every message in the epoch fires at `>= s + L`, so
//! the engine may run a **super-epoch** to `max(g, s) + L` — batching
//! what would have been many lookahead windows into one barrier round.
//! The bound is a pure function of global simulation state, so the epoch
//! grid (and with it every digest) stays shard-count- and
//! placement-invariant. The default hook returns `next_event_time()`,
//! which degenerates to the classic window.
//!
//! # Tree barrier
//!
//! Workers synchronise on a static combining tree ([`TreeBarrier`],
//! arity 4) rather than a single atomic counter: arrivals propagate
//! leaf→root in O(log S) hops of uncontended counters, and the root
//! releases everyone by bumping one generation word. At fleet scale the
//! flat barrier's S-way fetch-add line transfer per phase is what the
//! profile shows first; the tree keeps each cache line shared by at most
//! `ARITY` writers.
//!
//! Mailboxes are `Mutex<Vec<_>>`, but each `(src, dst)` box is written
//! only by `src`'s worker in the send phase and drained only by `dst`'s
//! worker in the delivery phase, with a barrier between the phases — the
//! locks are never contended and exist only to satisfy the borrow
//! checker without `unsafe`.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A cross-host message in flight, stamped with its delivery time and
/// deterministic merge key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Absolute time at which the message fires at the destination.
    /// Must satisfy the lookahead contract: `fire >= emit_time + L`.
    pub fire: SimTime,
    /// Global id of the emitting host (first tiebreaker of the merge key).
    pub src_host: u32,
    /// Per-source-host sequence number (second tiebreaker; unique per
    /// `src_host`, so the full key `(fire, src_host, seq)` is unique).
    pub seq: u64,
    /// Global id of the destination host.
    pub dst_host: u32,
    /// The payload.
    pub msg: M,
}

/// One host in a sharded world: an independent sub-simulation that the
/// parallel engine advances in lookahead-bounded epochs.
///
/// Implementations must uphold the lookahead contract: every envelope
/// surfaced by [`take_outbound`](ShardHost::take_outbound) after an
/// `advance_to(epoch_end)` call fires at `>= emit_time + lookahead`,
/// where `emit_time` is the simulation time at which the emitting event
/// executed.
pub trait ShardHost: Send {
    /// Cross-host message payload.
    type Msg: Send;

    /// Timestamp of this host's earliest pending event (`None` when its
    /// queue is empty). Delivered envelopes count: [`deliver`](Self::deliver)
    /// happens before the engine reads this.
    fn next_event_time(&self) -> Option<SimTime>;

    /// A lower bound on the time of the earliest pending event that
    /// could emit an envelope; `None` when this host can never send
    /// (e.g. no remote flows are wired). The engine uses the global
    /// minimum of these bounds to extend epochs past one lookahead
    /// window (super-epochs), so the bound must be *sound*: no event
    /// executing before it may call out. It must also be a pure
    /// function of host state — it feeds the epoch grid, which is part
    /// of the deterministic schedule. The default is the conservative
    /// `next_event_time()` (any event could send).
    fn next_send_time(&self) -> Option<SimTime> {
        self.next_event_time()
    }

    /// Events this host has dispatched over its lifetime — the measured
    /// cost that drives [`balanced_placement`]. Purely observational
    /// (never feeds the schedule); hosts that don't track it may keep
    /// the default 0, which degrades rebalancing to host-count packing.
    fn dispatched(&self) -> u64 {
        0
    }

    /// Run all events with `t <= deadline` and leave the local clock at
    /// exactly `deadline`. Called repeatedly with non-decreasing
    /// deadlines; a call that processes nothing must still advance the
    /// clock.
    fn advance_to(&mut self, deadline: SimTime);

    /// Move every envelope emitted since the last call into `out`
    /// (append; the engine owns routing). Implementations stamp
    /// `src_host` and a monotonically increasing per-host `seq`.
    fn take_outbound(&mut self, out: &mut Vec<Envelope<Self::Msg>>);

    /// Inject an inbound envelope as a pending local event at
    /// `env.fire`. The engine calls this in merge-key order
    /// (`(fire, src_host, seq)` ascending) for each host.
    fn deliver(&mut self, env: Envelope<Self::Msg>);
}

/// One row of the shard-pair mailbox grid: the boxes a single source
/// shard writes, indexed by destination shard.
type MailRow<M> = Vec<Mutex<Vec<Envelope<M>>>>;

/// Fan-in of the combining tree: how many children feed one barrier
/// node. 4 keeps the tree shallow (S=64 → 3 levels) while bounding the
/// writers per counter cache line.
const BARRIER_ARITY: usize = 4;

/// A sense-reversing combining-tree barrier built from atomics
/// (`forbid(unsafe_code)` friendly). Arrivals climb a static arity-4
/// tree — the last arrival at each node resets that node's counter and
/// propagates one arrival to its parent, so the longest chain of
/// contended fetch-adds is O(log S), not O(S). The root's last arrival
/// bumps a generation word that every waiter spins on (briefly, then
/// yielding — so S workers still make progress on machines with fewer
/// cores, just without speedup).
struct TreeBarrier {
    /// Per-node `(arrived, expected)`; node 0's children are the first
    /// `expected[0]` participants, and `parent[i]` indexes upward. Nodes
    /// are stored level by level, leaves first.
    arrived: Vec<AtomicUsize>,
    expected: Vec<usize>,
    parent: Vec<Option<usize>>,
    /// Leaf node index for each participant.
    leaf_of: Vec<usize>,
    generation: AtomicU64,
}

impl TreeBarrier {
    fn new(n: usize) -> Self {
        let n = n.max(1);
        // Build the tree level by level: level 0 groups participants
        // into ceil(n/ARITY) leaves, each subsequent level groups the
        // previous level's nodes, until one root remains.
        let mut expected = Vec::new();
        let mut parent = Vec::new();
        let mut leaf_of = Vec::with_capacity(n);
        for i in 0..n {
            leaf_of.push(i / BARRIER_ARITY);
        }
        let mut level_start = 0usize;
        let mut level_width = n.div_ceil(BARRIER_ARITY);
        let mut members = n; // children feeding the current level
        loop {
            for node in 0..level_width {
                let lo = node * BARRIER_ARITY;
                let hi = ((node + 1) * BARRIER_ARITY).min(members);
                expected.push(hi - lo);
                parent.push(None); // patched below once the next level exists
            }
            if level_width == 1 {
                break;
            }
            let next_start = level_start + level_width;
            for node in 0..level_width {
                parent[level_start + node] = Some(next_start + node / BARRIER_ARITY);
            }
            members = level_width;
            level_start = next_start;
            level_width = level_width.div_ceil(BARRIER_ARITY);
        }
        let arrived = (0..expected.len()).map(|_| AtomicUsize::new(0)).collect();
        TreeBarrier {
            arrived,
            expected,
            parent,
            leaf_of,
            generation: AtomicU64::new(0),
        }
    }

    /// Arrive at `node`; the last arrival resets the counter (safe: no
    /// participant can re-enter until the generation bump, which happens
    /// after every reset on the propagation path) and climbs.
    fn arrive(&self, mut node: usize) {
        loop {
            if self.arrived[node].fetch_add(1, Ordering::SeqCst) + 1 < self.expected[node] {
                return;
            }
            self.arrived[node].store(0, Ordering::SeqCst);
            match self.parent[node] {
                Some(p) => node = p,
                None => {
                    self.generation.fetch_add(1, Ordering::SeqCst);
                    return;
                }
            }
        }
    }

    fn wait(&self, me: usize) {
        let gen = self.generation.load(Ordering::SeqCst);
        self.arrive(self.leaf_of[me]);
        let mut spins = 0u32;
        while self.generation.load(Ordering::SeqCst) == gen {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// Greedy longest-processing-time bin packing of per-host costs onto
/// `shards` bins: hosts in descending cost order (host id breaks ties)
/// each go to the currently lightest shard (lowest index breaks ties).
/// Returns the host→shard map. Each host weighs at least 1, so
/// zero-cost hosts (nothing measured yet) still spread by count rather
/// than piling onto one shard. Deterministic — and because placement is
/// unobservable, any output is digest-preserving.
pub fn balanced_placement(costs: &[u64], shards: usize) -> Vec<u32> {
    let shards = shards.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&h| (std::cmp::Reverse(costs[h]), h));
    let mut load = vec![0u128; shards];
    let mut placement = vec![0u32; costs.len()];
    for h in order {
        let s = (0..shards).min_by_key(|&s| (load[s], s)).unwrap_or(0);
        load[s] += (costs[h].max(1)) as u128;
        placement[h] = s as u32;
    }
    placement
}

/// Round-robin host→shard map: host `i` on shard `i % shards`.
pub fn round_robin_placement(hosts: usize, shards: usize) -> Vec<u32> {
    let shards = shards.max(1);
    (0..hosts).map(|i| (i % shards) as u32).collect()
}

/// Drives a set of [`ShardHost`]s deterministically across worker threads.
pub struct ParallelEngine<H: ShardHost> {
    hosts: Vec<H>,
    shards: usize,
    lookahead: SimDuration,
    /// Host→shard assignment (len == hosts, values < shards). Purely an
    /// execution concern: results are bit-identical under any map.
    placement: Vec<u32>,
    epochs: u64,
    super_epochs: u64,
    amortize: bool,
}

impl<H: ShardHost> ParallelEngine<H> {
    /// Build an engine over `hosts`, running on `shards` worker threads
    /// (clamped to at least 1), with the given lookahead and round-robin
    /// placement.
    pub fn new(hosts: Vec<H>, shards: usize, lookahead: SimDuration) -> Self {
        let shards = shards.max(1);
        let placement = round_robin_placement(hosts.len(), shards);
        ParallelEngine {
            hosts,
            shards,
            lookahead,
            placement,
            epochs: 0,
            super_epochs: 0,
            amortize: true,
        }
    }

    /// The hosts, in global-id order (host `i` is `hosts()[i]`).
    pub fn hosts(&self) -> &[H] {
        &self.hosts
    }

    /// Mutable access to the hosts (e.g. to arm metrics between phases).
    pub fn hosts_mut(&mut self) -> &mut [H] {
        &mut self.hosts
    }

    /// Worker-thread count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The synchronisation lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The current host→shard assignment.
    pub fn placement(&self) -> &[u32] {
        &self.placement
    }

    /// Install a host→shard assignment (between `run_to` slices only —
    /// mid-epoch there is no safe hand-off point). Panics when the map
    /// is malformed: this is an engine-internal contract; callers with
    /// user-facing config validate before reaching here.
    pub fn set_placement(&mut self, placement: Vec<u32>) {
        assert_eq!(
            placement.len(),
            self.hosts.len(),
            "placement must cover every host"
        );
        assert!(
            placement.iter().all(|&s| (s as usize) < self.shards),
            "placement shard out of range"
        );
        self.placement = placement;
    }

    /// Per-host lifetime dispatched-event counts — the measured costs
    /// that feed [`balanced_placement`].
    pub fn host_costs(&self) -> Vec<u64> {
        self.hosts.iter().map(|h| h.dispatched()).collect()
    }

    /// Repartition hosts onto shards by measured cost (greedy LPT over
    /// [`host_costs`](Self::host_costs)). Returns the new placement.
    /// Observationally a no-op: digests do not depend on placement.
    pub fn rebalance(&mut self) -> &[u32] {
        let placement = balanced_placement(&self.host_costs(), self.shards);
        self.placement = placement;
        &self.placement
    }

    /// Lifetime dispatched events summed per shard under the current
    /// placement — the load-balance report the bench gates on.
    pub fn shard_event_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.shards];
        for (h, host) in self.hosts.iter().enumerate() {
            totals[self.placement[h] as usize] += host.dispatched();
        }
        totals
    }

    /// Epochs executed so far (across all `run_to` calls). An epoch is
    /// one advance-exchange-barrier round; the count is identical at any
    /// shard count and placement, which the differential tests exploit.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Epochs that batched more than one lookahead window (see the
    /// module docs on super-epochs). Shard-count- and
    /// placement-invariant, like `epochs`.
    pub fn super_epochs(&self) -> u64 {
        self.super_epochs
    }

    /// Overwrite the lifetime epoch counters. Checkpoint restore only:
    /// the counters are part of the observable run record, so a resumed
    /// fleet must report the same totals as an uninterrupted one.
    pub fn set_epochs(&mut self, epochs: u64) {
        self.epochs = epochs;
    }

    /// Companion to [`set_epochs`](Self::set_epochs) for the
    /// super-epoch counter.
    pub fn set_super_epochs(&mut self, super_epochs: u64) {
        self.super_epochs = super_epochs;
    }

    /// Enable or disable super-epoch batching. **This changes the epoch
    /// grid**, which is observable where cross-host envelopes interleave
    /// with same-timestamp local events — treat it like any other
    /// simulation parameter (the fleet layer folds it into config
    /// fingerprints). It does NOT affect shard/placement invariance:
    /// with either setting the grid is a pure function of global state.
    pub fn set_amortization(&mut self, on: bool) {
        self.amortize = on;
    }

    /// Whether super-epoch batching is enabled.
    pub fn amortization(&self) -> bool {
        self.amortize
    }

    /// Advance every host to exactly `deadline` (inclusive), running
    /// epochs until no host has an event at `t <= deadline`. Callable
    /// repeatedly with non-decreasing deadlines; cross-host messages are
    /// fully drained before returning (every in-flight message lives as
    /// a scheduled event in its destination host's queue).
    pub fn run_to(&mut self, deadline: SimTime) {
        let shards = self.shards;
        let lookahead_ns = self.lookahead.as_nanos();
        let deadline_ns = deadline.as_nanos();
        let n_hosts = self.hosts.len();
        let amortize = self.amortize;
        let placement: &[u32] = &self.placement;
        // Slot of each host within its shard's bucket (hosts are
        // bucketed in ascending id order, so the slot is the number of
        // lower-id hosts sharing the shard).
        let mut slot_of: Vec<usize> = vec![0; n_hosts];
        let mut counts = vec![0usize; shards];
        for (h, &s) in placement.iter().enumerate() {
            slot_of[h] = counts[s as usize];
            counts[s as usize] += 1;
        }
        // Per-shard minimum next-event / next-send time slots
        // (u64::MAX = idle / never sends).
        let mins: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let send_mins: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        // Per-(src,dst) shard mailboxes. Never contended: src writes in
        // the send phase, dst drains in the delivery phase, a barrier
        // sits between them.
        let boxes: Vec<MailRow<H::Msg>> = (0..shards)
            .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = TreeBarrier::new(shards);
        let epochs = AtomicU64::new(0);
        let super_epochs = AtomicU64::new(0);

        let mut buckets: Vec<Vec<&mut H>> = (0..shards).map(|_| Vec::new()).collect();
        for (id, host) in self.hosts.iter_mut().enumerate() {
            buckets[placement[id] as usize].push(host);
        }

        std::thread::scope(|scope| {
            let mut workers: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(me, bucket)| {
                    let shared = SharedEpochState {
                        mins: &mins,
                        send_mins: &send_mins,
                        boxes: &boxes,
                        barrier: &barrier,
                        epochs: &epochs,
                        super_epochs: &super_epochs,
                        placement,
                        slot_of: &slot_of,
                    };
                    move || {
                        drive_shard::<H>(
                            me,
                            bucket,
                            n_hosts,
                            lookahead_ns,
                            deadline_ns,
                            amortize,
                            shared,
                        )
                    }
                })
                .collect();
            // Shard 0 runs on the calling thread; the rest get workers.
            let shard0 = workers.remove(0);
            for w in workers {
                scope.spawn(w);
            }
            shard0();
        });
        self.epochs += epochs.load(Ordering::SeqCst);
        self.super_epochs += super_epochs.load(Ordering::SeqCst);
    }
}

/// The read-only state every worker shares during `run_to`.
struct SharedEpochState<'a, M> {
    mins: &'a [AtomicU64],
    send_mins: &'a [AtomicU64],
    boxes: &'a [MailRow<M>],
    barrier: &'a TreeBarrier,
    epochs: &'a AtomicU64,
    super_epochs: &'a AtomicU64,
    placement: &'a [u32],
    slot_of: &'a [usize],
}

/// The per-shard worker loop. Every worker executes the same epoch
/// decisions (global minimum, epoch end, termination) redundantly from
/// the shared `mins`/`send_mins` slots — identical integer math on
/// identical inputs, so no coordinator thread is needed.
fn drive_shard<H: ShardHost>(
    me: usize,
    mut hosts: Vec<&mut H>,
    n_hosts: usize,
    lookahead_ns: u64,
    deadline_ns: u64,
    amortize: bool,
    shared: SharedEpochState<'_, H::Msg>,
) {
    let mut inbound: Vec<Envelope<H::Msg>> = Vec::new();
    let mut outbound: Vec<Envelope<H::Msg>> = Vec::new();
    loop {
        // Delivery phase: drain every mailbox addressed to this shard,
        // merge deterministically, inject into the destination hosts.
        for src_boxes in shared.boxes {
            let mut mb = src_boxes[me].lock().expect("mailbox poisoned");
            inbound.append(&mut mb);
        }
        // The key is unique ((src_host, seq) pairs are never reused), so
        // an unstable sort is a total order regardless of the drain
        // order above.
        inbound.sort_unstable_by_key(|e| (e.fire, e.src_host, e.seq));
        for env in inbound.drain(..) {
            let dst = env.dst_host as usize;
            debug_assert!(dst < n_hosts, "envelope to unknown host {dst}");
            debug_assert_eq!(
                shared.placement[dst] as usize, me,
                "envelope routed to wrong shard"
            );
            hosts[shared.slot_of[dst]].deliver(env);
        }
        // Publish this shard's minimum next-event and next-send times
        // (inclusive of the envelopes just delivered).
        let mut local_min = u64::MAX;
        let mut local_send = u64::MAX;
        for h in hosts.iter() {
            if let Some(t) = h.next_event_time() {
                local_min = local_min.min(t.as_nanos());
            }
            if let Some(t) = h.next_send_time() {
                local_send = local_send.min(t.as_nanos());
            }
        }
        shared.mins[me].store(local_min, Ordering::SeqCst);
        shared.send_mins[me].store(local_send, Ordering::SeqCst);
        shared.barrier.wait(me);

        // Epoch phase: every worker derives the same global minimum.
        let gmin = shared
            .mins
            .iter()
            .map(|m| m.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if gmin > deadline_ns {
            // Nothing left at or before the deadline anywhere (mailboxes
            // are empty: drained above, and nothing has been sent since
            // that drain). Park every clock at the deadline and stop —
            // all workers reach this branch together.
            for h in hosts.iter_mut() {
                h.advance_to(SimTime::from_nanos(deadline_ns));
            }
            break;
        }
        // The classic conservative window ends at gmin + L. When every
        // host's earliest *possible* send is later than gmin, the next
        // message anywhere fires at >= smin + L, so the window may
        // stretch there — a super-epoch covering (smin - gmin) / L
        // extra lookahead windows with a single barrier round.
        let classic_end = gmin.saturating_add(lookahead_ns).min(deadline_ns);
        let epoch_end = if amortize {
            let smin = shared
                .send_mins
                .iter()
                .map(|m| m.load(Ordering::SeqCst))
                .min()
                .unwrap_or(u64::MAX);
            // smin < gmin would mean a host promises sends before its
            // own earliest event; harmless (no event can execute before
            // gmin), but the window must never shrink below classic.
            smin.max(gmin).saturating_add(lookahead_ns).min(deadline_ns)
        } else {
            classic_end
        };
        for h in hosts.iter_mut() {
            h.advance_to(SimTime::from_nanos(epoch_end));
            h.take_outbound(&mut outbound);
        }
        for env in outbound.drain(..) {
            debug_assert!(
                env.fire.as_nanos() >= epoch_end || env.fire.as_nanos() >= deadline_ns,
                "lookahead violated: envelope fires at {} inside epoch ending {}",
                env.fire.as_nanos(),
                epoch_end,
            );
            let dst_shard = shared.placement[env.dst_host as usize] as usize;
            shared.boxes[me][dst_shard]
                .lock()
                .expect("mailbox poisoned")
                .push(env);
        }
        if me == 0 {
            shared.epochs.fetch_add(1, Ordering::SeqCst);
            if epoch_end > classic_end {
                shared.super_epochs.fetch_add(1, Ordering::SeqCst);
            }
        }
        // Close the epoch: all sends land before anyone drains again.
        shared.barrier.wait(me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    const LAT: u64 = 500; // toy fabric latency = lookahead

    /// A toy host: a binary-heap event queue of `(time, tiebreak, hops)`
    /// entries. Handling an event with `hops > 0` sends a message to the
    /// next host in the ring, which fires `LAT` later.
    struct Toy {
        id: u32,
        n_hosts: u32,
        now: u64,
        queue: BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>>,
        arrivals: u64,
        seq: u64,
        dispatched: u64,
        /// When false, this host never emits (its `next_send_time` is
        /// `None`) — the super-epoch test's "uncoupled" mode.
        can_send: bool,
        out: Vec<Envelope<u32>>,
        log: Vec<(u64, u32)>,
    }

    impl Toy {
        fn new(id: u32, n_hosts: u32) -> Self {
            Toy {
                id,
                n_hosts,
                now: 0,
                queue: BinaryHeap::new(),
                arrivals: 0,
                seq: 0,
                dispatched: 0,
                can_send: true,
                out: Vec::new(),
                log: Vec::new(),
            }
        }

        fn schedule(&mut self, t: u64, hops: u32) {
            let tiebreak = self.arrivals;
            self.arrivals += 1;
            self.queue.push(std::cmp::Reverse((t, tiebreak, hops)));
        }
    }

    impl ShardHost for Toy {
        type Msg = u32;

        fn next_event_time(&self) -> Option<SimTime> {
            self.queue
                .peek()
                .map(|std::cmp::Reverse((t, _, _))| SimTime::from_nanos(*t))
        }

        fn next_send_time(&self) -> Option<SimTime> {
            if self.can_send {
                self.next_event_time()
            } else {
                None
            }
        }

        fn dispatched(&self) -> u64 {
            self.dispatched
        }

        fn advance_to(&mut self, deadline: SimTime) {
            let deadline = deadline.as_nanos();
            while let Some(std::cmp::Reverse((t, _, hops))) = self.queue.peek().copied() {
                if t > deadline {
                    break;
                }
                self.queue.pop();
                self.now = t;
                self.dispatched += 1;
                self.log.push((t, hops));
                if hops > 0 {
                    assert!(self.can_send, "sendless host emitted");
                    let seq = self.seq;
                    self.seq += 1;
                    self.out.push(Envelope {
                        fire: SimTime::from_nanos(t + LAT),
                        src_host: self.id,
                        seq,
                        dst_host: (self.id + 1) % self.n_hosts,
                        msg: hops - 1,
                    });
                }
            }
            self.now = deadline;
        }

        fn take_outbound(&mut self, out: &mut Vec<Envelope<u32>>) {
            out.append(&mut self.out);
        }

        fn deliver(&mut self, env: Envelope<u32>) {
            self.schedule(env.fire.as_nanos(), env.msg);
        }
    }

    fn seeded_hosts(n_hosts: u32) -> Vec<Toy> {
        let mut hosts: Vec<Toy> = (0..n_hosts).map(|i| Toy::new(i, n_hosts)).collect();
        // Every host starts a token with a distinct phase and hop count.
        for (i, h) in hosts.iter_mut().enumerate() {
            h.schedule(7 * (i as u64 + 1), 20 + i as u32);
        }
        hosts
    }

    fn ring_run(n_hosts: u32, shards: usize, deadline: u64) -> (Vec<Vec<(u64, u32)>>, u64) {
        let mut eng =
            ParallelEngine::new(seeded_hosts(n_hosts), shards, SimDuration::from_nanos(LAT));
        eng.run_to(SimTime::from_nanos(deadline));
        let logs = eng.hosts().iter().map(|h| h.log.clone()).collect();
        (logs, eng.epochs())
    }

    #[test]
    fn ring_is_bit_identical_at_any_shard_count() {
        let (reference, ref_epochs) = ring_run(5, 1, 60_000);
        assert!(
            reference.iter().map(|l| l.len()).sum::<usize>() > 50,
            "workload should be non-trivial"
        );
        for shards in [2, 3, 5, 8] {
            let (logs, epochs) = ring_run(5, shards, 60_000);
            assert_eq!(logs, reference, "shards={shards}");
            assert_eq!(epochs, ref_epochs, "epoch count at shards={shards}");
        }
    }

    #[test]
    fn placement_is_unobservable() {
        let (reference, ref_epochs) = ring_run(5, 2, 60_000);
        // Reversed placement: host i on shard (n-1-i) % 2.
        let mut eng = ParallelEngine::new(seeded_hosts(5), 2, SimDuration::from_nanos(LAT));
        eng.set_placement(vec![1, 0, 1, 0, 1]);
        eng.run_to(SimTime::from_nanos(60_000));
        let logs: Vec<_> = eng.hosts().iter().map(|h| h.log.clone()).collect();
        assert_eq!(logs, reference, "reversed placement");
        assert_eq!(eng.epochs(), ref_epochs);
        // Skewed placement: everything on shard 1 except host 0.
        let mut eng = ParallelEngine::new(seeded_hosts(5), 2, SimDuration::from_nanos(LAT));
        eng.set_placement(vec![0, 1, 1, 1, 1]);
        eng.run_to(SimTime::from_nanos(60_000));
        let logs: Vec<_> = eng.hosts().iter().map(|h| h.log.clone()).collect();
        assert_eq!(logs, reference, "skewed placement");
        assert_eq!(eng.epochs(), ref_epochs);
    }

    #[test]
    fn rebalance_moves_hosts_and_preserves_results() {
        let (reference, _) = ring_run(5, 2, 60_000);
        let mut eng = ParallelEngine::new(seeded_hosts(5), 2, SimDuration::from_nanos(LAT));
        // Run half, rebalance on measured cost, run the rest.
        eng.run_to(SimTime::from_nanos(30_000));
        let placement = eng.rebalance().to_vec();
        assert_eq!(placement.len(), 5);
        eng.run_to(SimTime::from_nanos(60_000));
        let logs: Vec<_> = eng.hosts().iter().map(|h| h.log.clone()).collect();
        assert_eq!(logs, reference, "mid-run rebalance must be unobservable");
        // The shard totals cover every dispatched event.
        let totals = eng.shard_event_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(
            totals.iter().sum::<u64>(),
            eng.host_costs().iter().sum::<u64>()
        );
    }

    #[test]
    fn balanced_placement_packs_greedily() {
        // Costs 10, 1, 1, 1, 9 on 2 shards: LPT seeds 10 and 9 on
        // opposite shards and spreads the units, landing 11 vs 10 —
        // within a unit cost of perfect.
        let costs = [10u64, 1, 1, 1, 9];
        let p = balanced_placement(&costs, 2);
        assert_eq!(p[0], 0);
        assert_eq!(p[4], 1);
        let mut load = [0u64; 2];
        for (h, &s) in p.iter().enumerate() {
            load[s as usize] += costs[h];
        }
        assert!(load.iter().max().unwrap() - load.iter().min().unwrap() <= 1);
        // Degenerate inputs stay in range.
        assert_eq!(balanced_placement(&[], 3), Vec::<u32>::new());
        assert_eq!(balanced_placement(&[5, 5], 1), vec![0, 0]);
        // All-zero costs pack by count (2-2-1 over 2 shards).
        let p = balanced_placement(&[0, 0, 0, 0, 0], 2);
        let ones = p.iter().filter(|&&s| s == 1).count();
        assert!((2..=3).contains(&ones), "{p:?}");
    }

    #[test]
    fn super_epochs_batch_windows_for_sendless_hosts() {
        // Hosts that never send: with amortization the engine jumps each
        // run_to in one window instead of thousands of L-sized epochs.
        let run = |amortize: bool, shards: usize| {
            let mut hosts: Vec<Toy> = (0..4).map(|i| Toy::new(i, 4)).collect();
            for (i, h) in hosts.iter_mut().enumerate() {
                h.can_send = false;
                // A local-only event every 100 ns.
                for k in 0..100u64 {
                    h.schedule(100 * k + i as u64, 0);
                }
            }
            let mut eng = ParallelEngine::new(hosts, shards, SimDuration::from_nanos(LAT));
            eng.set_amortization(amortize);
            eng.run_to(SimTime::from_nanos(60_000));
            let logs: Vec<_> = eng.hosts().iter().map(|h| h.log.clone()).collect();
            (logs, eng.epochs(), eng.super_epochs())
        };
        let (classic_logs, classic_epochs, classic_super) = run(false, 1);
        assert_eq!(classic_super, 0);
        assert!(classic_epochs > 15, "classic epochs: {classic_epochs}");
        let (logs, epochs, supers) = run(true, 1);
        assert_eq!(logs, classic_logs, "amortization changes no event");
        assert_eq!(epochs, 1, "one super-epoch to the deadline");
        assert_eq!(supers, 1);
        // And the counts are shard-invariant.
        let (logs4, epochs4, supers4) = run(true, 4);
        assert_eq!(logs4, classic_logs);
        assert_eq!((epochs4, supers4), (epochs, supers));
    }

    #[test]
    fn super_epochs_respect_a_late_sender() {
        // Three sendless hosts with dense local work plus one host whose
        // first (and only) send-capable event sits far in the future:
        // the engine must batch windows up to that event, then resume
        // classic epochs — and the message must still arrive intact.
        let run = |shards: usize| {
            let mut hosts: Vec<Toy> = (0..4).map(|i| Toy::new(i, 4)).collect();
            for h in hosts.iter_mut().take(3) {
                h.can_send = false;
                for k in 0..200u64 {
                    h.schedule(50 * k, 0);
                }
            }
            // Host 3 fires one 2-hop token at t = 7000... wait, hops
            // traverse the ring 3 -> 0 -> 1, but hosts 0..2 are
            // sendless; give the token 1 hop so only host 3 sends.
            hosts[3].schedule(7_000, 1);
            let mut eng = ParallelEngine::new(hosts, shards, SimDuration::from_nanos(LAT));
            eng.run_to(SimTime::from_nanos(20_000));
            let logs: Vec<_> = eng.hosts().iter().map(|h| h.log.clone()).collect();
            (logs, eng.epochs(), eng.super_epochs())
        };
        let (logs, epochs, supers) = run(1);
        assert!(supers >= 1, "late sender must still allow batching");
        // The cross-host message arrived at host 0.
        assert!(logs[0].contains(&(7_000 + LAT, 0)), "{:?}", logs[0]);
        for shards in [2, 4] {
            assert_eq!(run(shards), (logs.clone(), epochs, supers), "{shards}");
        }
    }

    #[test]
    fn clocks_land_exactly_on_the_deadline() {
        let mut hosts: Vec<Toy> = (0..3).map(|i| Toy::new(i, 3)).collect();
        hosts[0].schedule(10, 2);
        let mut eng = ParallelEngine::new(hosts, 2, SimDuration::from_nanos(LAT));
        eng.run_to(SimTime::from_nanos(9_999));
        for h in eng.hosts() {
            assert_eq!(h.now, 9_999);
        }
        // Resumable: a second slice continues from the first.
        eng.run_to(SimTime::from_nanos(20_000));
        for h in eng.hosts() {
            assert_eq!(h.now, 20_000);
        }
    }

    #[test]
    fn message_firing_exactly_at_the_deadline_is_processed() {
        // Host 0 fires at t=100 and sends a message that lands at
        // t=100+LAT. A run_to ending exactly at the arrival time must
        // still process it (deadlines are inclusive, as in the serial
        // engine).
        let mut hosts: Vec<Toy> = (0..2).map(|i| Toy::new(i, 2)).collect();
        hosts[0].schedule(100, 1);
        let mut eng = ParallelEngine::new(hosts, 2, SimDuration::from_nanos(LAT));
        eng.run_to(SimTime::from_nanos(100 + LAT));
        assert_eq!(eng.hosts()[1].log, vec![(100 + LAT, 0)]);
    }

    #[test]
    fn empty_engine_terminates_immediately() {
        let hosts: Vec<Toy> = (0..4).map(|i| Toy::new(i, 4)).collect();
        let mut eng = ParallelEngine::new(hosts, 4, SimDuration::from_nanos(LAT));
        eng.run_to(SimTime::from_nanos(1_000));
        assert_eq!(eng.epochs(), 0);
        for h in eng.hosts() {
            assert_eq!(h.now, 1_000);
        }
    }

    #[test]
    fn more_shards_than_hosts_is_fine() {
        let (reference, _) = ring_run(2, 1, 30_000);
        let (logs, _) = ring_run(2, 7, 30_000);
        assert_eq!(logs, reference);
    }

    #[test]
    fn tree_barrier_synchronises_many_workers() {
        // 13 workers (leaves 4+4+4+1 → 2 levels) each bump a counter
        // between barrier rounds; after every round all bumps from the
        // previous round must be visible to everyone.
        let n = 13;
        let barrier = TreeBarrier::new(n);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for me in 0..n {
                let barrier = &barrier;
                let counter = &counter;
                scope.spawn(move || {
                    for round in 0..50u64 {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait(me);
                        assert_eq!(counter.load(Ordering::SeqCst), (round + 1) * n as u64);
                        barrier.wait(me);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50 * n as u64);
    }

    #[test]
    fn tree_barrier_single_worker_never_blocks() {
        let b = TreeBarrier::new(1);
        for _ in 0..10 {
            b.wait(0);
        }
    }
}
