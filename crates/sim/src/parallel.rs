//! Conservative parallel discrete-event execution across shards.
//!
//! A [`ParallelEngine`] drives N independent hosts — each with its own
//! event queue, clock and RNG streams — on S worker threads ("shards",
//! hosts are assigned round-robin: host `i` runs on shard `i % S`). Hosts
//! interact only through messages with a minimum delivery latency, the
//! **lookahead** `L`: a message emitted while a host executes events at
//! time `t` may not fire before `t + L`. That bound is exactly what a
//! conservative ("null-message-free", SimBricks-style) synchronisation
//! scheme needs:
//!
//! 1. Compute the global minimum next-event time `g` across all hosts.
//! 2. Advance every host independently to `epoch_end = g + L`.
//!    Safety: any cross-host message generated inside the epoch was
//!    emitted at some `t >= g`, so it fires at `>= g + L >= epoch_end` —
//!    never inside the epoch that generated it.
//! 3. Exchange the emitted messages through per-shard-pair mailboxes,
//!    barrier, and repeat.
//!
//! # Determinism: thread count is unobservable
//!
//! Two properties make the result bit-identical at any shard count,
//! including 1:
//!
//! * **Epoch boundaries are global.** `epoch_end` is computed from the
//!   minimum over *all* hosts, so the sequence of epochs is a pure
//!   function of simulation state, not of the host→shard assignment.
//!   This matters because delivery *timing* is observable: an envelope
//!   injected in an earlier epoch sits in the host's queue ahead of
//!   same-timestamp events the host schedules later (FIFO within a
//!   timestamp slot). Global epochs make that interleaving identical
//!   everywhere.
//! * **The merge key is simulation-derived.** Before delivery, each
//!   shard sorts its inbound envelopes by `(fire, src_host, seq)`, where
//!   `seq` is a per-source-host counter. The key never encodes which
//!   thread produced or transported the envelope, and it is unique
//!   (each source host numbers its own envelopes), so the per-host
//!   delivery sequence is a total order independent of thread
//!   interleaving.
//!
//! Mailboxes are `Mutex<Vec<_>>`, but each `(src, dst)` box is written
//! only by `src`'s worker in the send phase and drained only by `dst`'s
//! worker in the delivery phase, with a barrier between the phases — the
//! locks are never contended and exist only to satisfy the borrow
//! checker without `unsafe`.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A cross-host message in flight, stamped with its delivery time and
/// deterministic merge key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Absolute time at which the message fires at the destination.
    /// Must satisfy the lookahead contract: `fire >= emit_time + L`.
    pub fire: SimTime,
    /// Global id of the emitting host (first tiebreaker of the merge key).
    pub src_host: u32,
    /// Per-source-host sequence number (second tiebreaker; unique per
    /// `src_host`, so the full key `(fire, src_host, seq)` is unique).
    pub seq: u64,
    /// Global id of the destination host.
    pub dst_host: u32,
    /// The payload.
    pub msg: M,
}

/// One host in a sharded world: an independent sub-simulation that the
/// parallel engine advances in lookahead-bounded epochs.
///
/// Implementations must uphold the lookahead contract: every envelope
/// surfaced by [`take_outbound`](ShardHost::take_outbound) after an
/// `advance_to(epoch_end)` call fires at `>= emit_time + lookahead`,
/// where `emit_time` is the simulation time at which the emitting event
/// executed.
pub trait ShardHost: Send {
    /// Cross-host message payload.
    type Msg: Send;

    /// Timestamp of this host's earliest pending event (`None` when its
    /// queue is empty). Delivered envelopes count: [`deliver`](Self::deliver)
    /// happens before the engine reads this.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Run all events with `t <= deadline` and leave the local clock at
    /// exactly `deadline`. Called repeatedly with non-decreasing
    /// deadlines; a call that processes nothing must still advance the
    /// clock.
    fn advance_to(&mut self, deadline: SimTime);

    /// Move every envelope emitted since the last call into `out`
    /// (append; the engine owns routing). Implementations stamp
    /// `src_host` and a monotonically increasing per-host `seq`.
    fn take_outbound(&mut self, out: &mut Vec<Envelope<Self::Msg>>);

    /// Inject an inbound envelope as a pending local event at
    /// `env.fire`. The engine calls this in merge-key order
    /// (`(fire, src_host, seq)` ascending) for each host.
    fn deliver(&mut self, env: Envelope<Self::Msg>);
}

/// One row of the shard-pair mailbox grid: the boxes a single source
/// shard writes, indexed by destination shard.
type MailRow<M> = Vec<Mutex<Vec<Envelope<M>>>>;

/// A sense-reversing spin barrier built from atomics (`forbid(unsafe_code)`
/// friendly). Spins briefly, then yields — so S worker threads still make
/// progress on hosts with fewer cores, just without speedup.
struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::SeqCst);
        if self.arrived.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            // Last arrival: reset the counter for the next use, then
            // release everyone by bumping the generation.
            self.arrived.store(0, Ordering::SeqCst);
            self.generation.fetch_add(1, Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::SeqCst) == gen {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Drives a set of [`ShardHost`]s deterministically across worker threads.
pub struct ParallelEngine<H: ShardHost> {
    hosts: Vec<H>,
    shards: usize,
    lookahead: SimDuration,
    epochs: u64,
}

impl<H: ShardHost> ParallelEngine<H> {
    /// Build an engine over `hosts`, running on `shards` worker threads
    /// (clamped to at least 1), with the given lookahead.
    pub fn new(hosts: Vec<H>, shards: usize, lookahead: SimDuration) -> Self {
        ParallelEngine {
            hosts,
            shards: shards.max(1),
            lookahead,
            epochs: 0,
        }
    }

    /// The hosts, in global-id order (host `i` is `hosts()[i]`).
    pub fn hosts(&self) -> &[H] {
        &self.hosts
    }

    /// Mutable access to the hosts (e.g. to arm metrics between phases).
    pub fn hosts_mut(&mut self) -> &mut [H] {
        &mut self.hosts
    }

    /// Worker-thread count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The synchronisation lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Epochs executed so far (across all `run_to` calls). An epoch is
    /// one advance-exchange-barrier round; the count is identical at any
    /// shard count, which the differential tests exploit.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Overwrite the lifetime epoch counter. Checkpoint restore only:
    /// the counter is part of the observable run record, so a resumed
    /// fleet must report the same total as an uninterrupted one.
    pub fn set_epochs(&mut self, epochs: u64) {
        self.epochs = epochs;
    }

    /// Advance every host to exactly `deadline` (inclusive), running
    /// epochs until no host has an event at `t <= deadline`. Callable
    /// repeatedly with non-decreasing deadlines; cross-host messages are
    /// fully drained before returning (every in-flight message lives as
    /// a scheduled event in its destination host's queue).
    pub fn run_to(&mut self, deadline: SimTime) {
        let shards = self.shards;
        let lookahead_ns = self.lookahead.as_nanos();
        let deadline_ns = deadline.as_nanos();
        let n_hosts = self.hosts.len();
        // Per-shard minimum next-event time slots (u64::MAX = idle).
        let mins: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        // Per-(src,dst) shard mailboxes. Never contended: src writes in
        // the send phase, dst drains in the delivery phase, a barrier
        // sits between them.
        let boxes: Vec<MailRow<H::Msg>> = (0..shards)
            .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = SpinBarrier::new(shards);
        let epochs = AtomicU64::new(0);

        // Round-robin host partition: shard s owns hosts s, s+S, s+2S, …
        // (so a host's shard is `id % S` and its slot is `id / S`).
        let mut buckets: Vec<Vec<&mut H>> = (0..shards).map(|_| Vec::new()).collect();
        for (id, host) in self.hosts.iter_mut().enumerate() {
            buckets[id % shards].push(host);
        }

        std::thread::scope(|scope| {
            let mut workers: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(me, bucket)| {
                    let ctx = (&mins, &boxes, &barrier, &epochs);
                    move || {
                        drive_shard::<H>(
                            me,
                            shards,
                            bucket,
                            n_hosts,
                            lookahead_ns,
                            deadline_ns,
                            ctx.0,
                            ctx.1,
                            ctx.2,
                            ctx.3,
                        )
                    }
                })
                .collect();
            // Shard 0 runs on the calling thread; the rest get workers.
            let shard0 = workers.remove(0);
            for w in workers {
                scope.spawn(w);
            }
            shard0();
        });
        self.epochs += epochs.load(Ordering::SeqCst);
    }
}

/// The per-shard worker loop. Every worker executes the same epoch
/// decisions (global minimum, epoch end, termination) redundantly from
/// the shared `mins` slots — identical integer math on identical inputs,
/// so no coordinator thread is needed.
#[allow(clippy::too_many_arguments)]
fn drive_shard<H: ShardHost>(
    me: usize,
    shards: usize,
    mut hosts: Vec<&mut H>,
    n_hosts: usize,
    lookahead_ns: u64,
    deadline_ns: u64,
    mins: &[AtomicU64],
    boxes: &[MailRow<H::Msg>],
    barrier: &SpinBarrier,
    epochs: &AtomicU64,
) {
    let mut inbound: Vec<Envelope<H::Msg>> = Vec::new();
    let mut outbound: Vec<Envelope<H::Msg>> = Vec::new();
    loop {
        // Delivery phase: drain every mailbox addressed to this shard,
        // merge deterministically, inject into the destination hosts.
        for src_boxes in boxes {
            let mut mb = src_boxes[me].lock().expect("mailbox poisoned");
            inbound.append(&mut mb);
        }
        // The key is unique ((src_host, seq) pairs are never reused), so
        // an unstable sort is a total order regardless of the drain
        // order above.
        inbound.sort_unstable_by_key(|e| (e.fire, e.src_host, e.seq));
        for env in inbound.drain(..) {
            let dst = env.dst_host as usize;
            debug_assert!(dst < n_hosts, "envelope to unknown host {dst}");
            debug_assert_eq!(dst % shards, me, "envelope routed to wrong shard");
            hosts[dst / shards].deliver(env);
        }
        // Publish this shard's minimum next-event time (inclusive of the
        // envelopes just delivered).
        let mut local_min = u64::MAX;
        for h in hosts.iter() {
            if let Some(t) = h.next_event_time() {
                local_min = local_min.min(t.as_nanos());
            }
        }
        mins[me].store(local_min, Ordering::SeqCst);
        barrier.wait();

        // Epoch phase: every worker derives the same global minimum.
        let gmin = mins
            .iter()
            .map(|m| m.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if gmin > deadline_ns {
            // Nothing left at or before the deadline anywhere (mailboxes
            // are empty: drained above, and nothing has been sent since
            // that drain). Park every clock at the deadline and stop —
            // all workers reach this branch together.
            for h in hosts.iter_mut() {
                h.advance_to(SimTime::from_nanos(deadline_ns));
            }
            break;
        }
        let epoch_end = gmin.saturating_add(lookahead_ns).min(deadline_ns);
        for h in hosts.iter_mut() {
            h.advance_to(SimTime::from_nanos(epoch_end));
            h.take_outbound(&mut outbound);
        }
        for env in outbound.drain(..) {
            debug_assert!(
                env.fire.as_nanos() >= gmin.saturating_add(lookahead_ns),
                "lookahead violated: envelope fires at {} inside epoch ending {}",
                env.fire.as_nanos(),
                epoch_end,
            );
            let dst_shard = env.dst_host as usize % shards;
            boxes[me][dst_shard]
                .lock()
                .expect("mailbox poisoned")
                .push(env);
        }
        if me == 0 {
            epochs.fetch_add(1, Ordering::SeqCst);
        }
        // Close the epoch: all sends land before anyone drains again.
        barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    const LAT: u64 = 500; // toy fabric latency = lookahead

    /// A toy host: a binary-heap event queue of `(time, tiebreak, hops)`
    /// entries. Handling an event with `hops > 0` sends a message to the
    /// next host in the ring, which fires `LAT` later.
    struct Toy {
        id: u32,
        n_hosts: u32,
        now: u64,
        queue: BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>>,
        arrivals: u64,
        seq: u64,
        out: Vec<Envelope<u32>>,
        log: Vec<(u64, u32)>,
    }

    impl Toy {
        fn new(id: u32, n_hosts: u32) -> Self {
            Toy {
                id,
                n_hosts,
                now: 0,
                queue: BinaryHeap::new(),
                arrivals: 0,
                seq: 0,
                out: Vec::new(),
                log: Vec::new(),
            }
        }

        fn schedule(&mut self, t: u64, hops: u32) {
            let tiebreak = self.arrivals;
            self.arrivals += 1;
            self.queue.push(std::cmp::Reverse((t, tiebreak, hops)));
        }
    }

    impl ShardHost for Toy {
        type Msg = u32;

        fn next_event_time(&self) -> Option<SimTime> {
            self.queue
                .peek()
                .map(|std::cmp::Reverse((t, _, _))| SimTime::from_nanos(*t))
        }

        fn advance_to(&mut self, deadline: SimTime) {
            let deadline = deadline.as_nanos();
            while let Some(std::cmp::Reverse((t, _, hops))) = self.queue.peek().copied() {
                if t > deadline {
                    break;
                }
                self.queue.pop();
                self.now = t;
                self.log.push((t, hops));
                if hops > 0 {
                    let seq = self.seq;
                    self.seq += 1;
                    self.out.push(Envelope {
                        fire: SimTime::from_nanos(t + LAT),
                        src_host: self.id,
                        seq,
                        dst_host: (self.id + 1) % self.n_hosts,
                        msg: hops - 1,
                    });
                }
            }
            self.now = deadline;
        }

        fn take_outbound(&mut self, out: &mut Vec<Envelope<u32>>) {
            out.append(&mut self.out);
        }

        fn deliver(&mut self, env: Envelope<u32>) {
            self.schedule(env.fire.as_nanos(), env.msg);
        }
    }

    fn ring_run(n_hosts: u32, shards: usize, deadline: u64) -> (Vec<Vec<(u64, u32)>>, u64) {
        let mut hosts: Vec<Toy> = (0..n_hosts).map(|i| Toy::new(i, n_hosts)).collect();
        // Every host starts a token with a distinct phase and hop count.
        for (i, h) in hosts.iter_mut().enumerate() {
            h.schedule(7 * (i as u64 + 1), 20 + i as u32);
        }
        let mut eng = ParallelEngine::new(hosts, shards, SimDuration::from_nanos(LAT));
        eng.run_to(SimTime::from_nanos(deadline));
        let logs = eng.hosts().iter().map(|h| h.log.clone()).collect();
        (logs, eng.epochs())
    }

    #[test]
    fn ring_is_bit_identical_at_any_shard_count() {
        let (reference, ref_epochs) = ring_run(5, 1, 60_000);
        assert!(
            reference.iter().map(|l| l.len()).sum::<usize>() > 50,
            "workload should be non-trivial"
        );
        for shards in [2, 3, 5, 8] {
            let (logs, epochs) = ring_run(5, shards, 60_000);
            assert_eq!(logs, reference, "shards={shards}");
            assert_eq!(epochs, ref_epochs, "epoch count at shards={shards}");
        }
    }

    #[test]
    fn clocks_land_exactly_on_the_deadline() {
        let mut hosts: Vec<Toy> = (0..3).map(|i| Toy::new(i, 3)).collect();
        hosts[0].schedule(10, 2);
        let mut eng = ParallelEngine::new(hosts, 2, SimDuration::from_nanos(LAT));
        eng.run_to(SimTime::from_nanos(9_999));
        for h in eng.hosts() {
            assert_eq!(h.now, 9_999);
        }
        // Resumable: a second slice continues from the first.
        eng.run_to(SimTime::from_nanos(20_000));
        for h in eng.hosts() {
            assert_eq!(h.now, 20_000);
        }
    }

    #[test]
    fn message_firing_exactly_at_the_deadline_is_processed() {
        // Host 0 fires at t=100 and sends a message that lands at
        // t=100+LAT. A run_to ending exactly at the arrival time must
        // still process it (deadlines are inclusive, as in the serial
        // engine).
        let mut hosts: Vec<Toy> = (0..2).map(|i| Toy::new(i, 2)).collect();
        hosts[0].schedule(100, 1);
        let mut eng = ParallelEngine::new(hosts, 2, SimDuration::from_nanos(LAT));
        eng.run_to(SimTime::from_nanos(100 + LAT));
        assert_eq!(eng.hosts()[1].log, vec![(100 + LAT, 0)]);
    }

    #[test]
    fn empty_engine_terminates_immediately() {
        let hosts: Vec<Toy> = (0..4).map(|i| Toy::new(i, 4)).collect();
        let mut eng = ParallelEngine::new(hosts, 4, SimDuration::from_nanos(LAT));
        eng.run_to(SimTime::from_nanos(1_000));
        assert_eq!(eng.epochs(), 0);
        for h in eng.hosts() {
            assert_eq!(h.now, 1_000);
        }
    }

    #[test]
    fn more_shards_than_hosts_is_fine() {
        let (reference, _) = ring_run(2, 1, 30_000);
        let (logs, _) = ring_run(2, 7, 30_000);
        assert_eq!(logs, reference);
    }
}
