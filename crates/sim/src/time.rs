//! Simulation time.
//!
//! All simulation time is kept in integer **nanoseconds** since the start of
//! the simulation. Integer time makes event ordering exact and keeps the
//! simulator deterministic across platforms; nanosecond granularity is fine
//! enough for PCIe/memory latencies (tens of ns) while `u64` still covers
//! ~584 years of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulation time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only; not for ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Saturating difference `self - earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is later than `self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Duration from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Duration from fractional microseconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimDuration((us * NANOS_PER_MICRO as f64).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Whether the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative scale");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The time needed to move `bytes` bytes at `bytes_per_sec`.
    ///
    /// This is the workhorse for serialisation delays of links, PCIe and the
    /// memory bus. Rounds up so that back-to-back transmissions never exceed
    /// the nominal rate.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> SimDuration {
        debug_assert!(bytes_per_sec > 0.0, "non-positive rate");
        let ns = (bytes as f64) * NANOS_PER_SEC as f64 / bytes_per_sec;
        // Integer ceiling: `f64::ceil` is a libm call on baseline x86-64,
        // and this runs for every link/PCIe/memory-bus transmission. The
        // truncate-and-bump form is exact for every non-negative value
        // (above 2^53 doubles are integral, so the bump never fires) and
        // saturates like the `as` cast does.
        let trunc = ns as u64;
        SimDuration(trunc.saturating_add(((trunc as f64) < ns) as u64))
    }
}

/// Timestamp granularity for the event queue and the latency terms that
/// feed it.
///
/// All simulation arithmetic stays in exact nanoseconds; a `Resolution`
/// only controls the *grid* that event dispatch instants (and the
/// serialisation/grant boundaries that produce them) are rounded **up**
/// to. At [`Resolution::EXACT`] (1 ns, the default) every rounding is the
/// identity and behaviour is bit-for-bit unchanged. At a coarse
/// resolution (64 ns by default in the coarse-time scenarios) events with
/// nearby timestamps land on the same grid instant, so the timing wheel's
/// slot-drain batching genuinely fans out.
///
/// Resolutions are powers of two so quantisation is a shift/mask, and so
/// the hierarchical wheel's slot widths stay power-of-two aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    /// log2 of the grid step in nanoseconds.
    shift: u32,
}

impl Default for Resolution {
    fn default() -> Self {
        Resolution::EXACT
    }
}

impl Resolution {
    /// Exact 1 ns resolution: every quantisation is the identity.
    pub const EXACT: Resolution = Resolution { shift: 0 };

    /// A resolution of `ns` nanoseconds. `ns` must be a power of two
    /// (1, 2, 4, … 65536); returns `None` otherwise.
    pub const fn from_nanos(ns: u64) -> Option<Resolution> {
        if ns == 0 || !ns.is_power_of_two() || ns > 65_536 {
            return None;
        }
        Some(Resolution {
            shift: ns.trailing_zeros(),
        })
    }

    /// The grid step in nanoseconds.
    #[inline]
    pub const fn nanos(self) -> u64 {
        1 << self.shift
    }

    /// log2 of the grid step.
    #[inline]
    pub const fn shift(self) -> u32 {
        self.shift
    }

    /// Whether this is the exact 1 ns grid (all quantisation a no-op).
    #[inline]
    pub const fn is_exact(self) -> bool {
        self.shift == 0
    }

    /// Round a time **up** to the grid. Rounding up (never down) keeps
    /// every quantised latency conservative: a transfer can finish late
    /// by at most one grid step, never early.
    #[inline]
    pub const fn ceil_time(self, t: SimTime) -> SimTime {
        let mask = (1u64 << self.shift) - 1;
        SimTime(t.0.saturating_add(mask) & !mask)
    }

    /// Round a duration **up** to the grid.
    #[inline]
    pub const fn ceil_duration(self, d: SimDuration) -> SimDuration {
        let mask = (1u64 << self.shift) - 1;
        SimDuration(d.0.saturating_add(mask) & !mask)
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.nanos())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0.wrapping_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        self.0 = self.0.wrapping_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= NANOS_PER_SEC {
        write!(f, "{:.3}s", ns as f64 / NANOS_PER_SEC as f64)
    } else if ns >= NANOS_PER_MILLI {
        write!(f, "{:.3}ms", ns as f64 / NANOS_PER_MILLI as f64)
    } else if ns >= NANOS_PER_MICRO {
        write!(f, "{:.3}us", ns as f64 / NANOS_PER_MICRO as f64)
    } else {
        write!(f, "{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d).as_nanos(), 15_000);
        assert_eq!((t - d).as_nanos(), 5_000);
        assert_eq!(((t + d) - t).as_nanos(), 5_000);
        assert_eq!((d + d).as_nanos(), 10_000);
        assert_eq!((d * 3).as_nanos(), 15_000);
        assert_eq!((d / 5).as_nanos(), 1_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(200);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 100);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_nanos(100)));
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte at 1 GB/s = 1 ns exactly.
        assert_eq!(SimDuration::for_bytes(1, 1e9).as_nanos(), 1);
        // 4096 bytes at 12.5 GB/s (100 Gbps) = 327.68 ns -> 328.
        assert_eq!(SimDuration::for_bytes(4096, 12.5e9).as_nanos(), 328);
        // Zero bytes takes zero time.
        assert_eq!(SimDuration::for_bytes(0, 1e9).as_nanos(), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.25).as_nanos(), 13); // 12.5 rounds to 13 (round half away)
        assert_eq!(d.mul_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn resolution_construction() {
        assert!(Resolution::EXACT.is_exact());
        assert_eq!(Resolution::EXACT.nanos(), 1);
        assert_eq!(Resolution::default(), Resolution::EXACT);
        let r = Resolution::from_nanos(64).unwrap();
        assert_eq!(r.nanos(), 64);
        assert_eq!(r.shift(), 6);
        assert!(!r.is_exact());
        // Non-powers-of-two and degenerate steps are rejected.
        assert!(Resolution::from_nanos(0).is_none());
        assert!(Resolution::from_nanos(3).is_none());
        assert!(Resolution::from_nanos(100).is_none());
        assert!(Resolution::from_nanos(1 << 17).is_none());
        assert!(Resolution::from_nanos(1).is_some());
        assert!(Resolution::from_nanos(65_536).is_some());
    }

    #[test]
    fn resolution_rounds_up_to_grid() {
        let r = Resolution::from_nanos(64).unwrap();
        assert_eq!(r.ceil_time(SimTime::from_nanos(0)).as_nanos(), 0);
        assert_eq!(r.ceil_time(SimTime::from_nanos(1)).as_nanos(), 64);
        assert_eq!(r.ceil_time(SimTime::from_nanos(64)).as_nanos(), 64);
        assert_eq!(r.ceil_time(SimTime::from_nanos(65)).as_nanos(), 128);
        assert_eq!(
            r.ceil_duration(SimDuration::from_nanos(100)).as_nanos(),
            128
        );
        // Exact resolution is the identity everywhere.
        for ns in [0u64, 1, 63, 64, 12345] {
            assert_eq!(
                Resolution::EXACT
                    .ceil_time(SimTime::from_nanos(ns))
                    .as_nanos(),
                ns
            );
        }
        // Saturates instead of wrapping near the top of the range:
        // u64::MAX rounded down to the 64 ns grid.
        assert_eq!(r.ceil_time(SimTime::MAX).as_nanos(), !63);
    }
}
