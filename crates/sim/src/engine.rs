//! The discrete-event execution loop.
//!
//! A simulation is a `World` (all mutable component state) plus an event
//! queue. The engine pops the earliest event, advances the clock and
//! hands the event to the world, which may schedule further events through
//! the [`Scheduler`] it receives. This mirrors the poll-driven style of
//! event-driven network stacks: components are plain state machines and all
//! control flow is explicit.
//!
//! Both the scheduler and the engine are generic over the queue
//! implementation (any [`Queue`]); the default is the timing-wheel
//! [`EventQueue`]. The [`BinaryHeapQueue`](crate::BinaryHeapQueue)
//! reference implementation slots in for equivalence testing:
//! `Engine::<W, BinaryHeapQueue<W::Event>>::with_queue(world)`.

use crate::queue::Queue;
use crate::time::{Resolution, SimDuration, SimTime};
use crate::EventQueue;
use core::marker::PhantomData;

/// Handle through which event handlers schedule future events.
pub struct Scheduler<E, Q: Queue<E> = EventQueue<E>> {
    now: SimTime,
    queue: Q,
    _event: PhantomData<fn(E)>,
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero, using the default (timing-wheel)
    /// event queue.
    pub fn new() -> Self {
        Self::with_queue()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E, Q: Queue<E>> Scheduler<E, Q> {
    /// An empty scheduler at time zero over queue implementation `Q`.
    pub fn with_queue() -> Self {
        Self::with_resolution(Resolution::EXACT)
    }

    /// An empty scheduler whose queue quantises event timestamps up to
    /// the given resolution grid (identity at [`Resolution::EXACT`]).
    pub fn with_resolution(res: Resolution) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: Q::with_resolution(res),
            _event: PhantomData,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` from now.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at an absolute time.
    ///
    /// Past times are clamped to `now` — in every build profile, so a
    /// release build can never silently reorder the simulation where a
    /// debug build would have fired an assertion. A clamped event fires
    /// at the current instant, after already-pending events at `now`.
    #[inline]
    pub fn at(&mut self, time: SimTime, event: E) {
        self.queue.push(time.max(self.now), event);
    }

    /// Schedule `event` to fire as soon as possible (same timestamp, after
    /// already-pending events at this timestamp).
    #[inline]
    pub fn immediately(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Events currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the earliest queued event (`None` when the queue is
    /// empty). The parallel engine uses this to compute the global
    /// lookahead-bounded epoch horizon without popping anything.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Events dispatched over the scheduler's lifetime.
    pub fn dispatched_total(&self) -> u64 {
        self.queue.dispatched_total()
    }
}

impl<E, Q: crate::snap::SnapQueue<E>> Scheduler<E, Q> {
    /// Serialize the clock and the full pending-event queue.
    pub fn save_state<F: FnMut(&E, &mut crate::snap::SnapWriter)>(
        &self,
        w: &mut crate::snap::SnapWriter,
        enc: F,
    ) {
        w.time(self.now);
        self.queue.save_state(w, enc);
    }

    /// Rebuild a scheduler from [`save_state`](Self::save_state) output.
    pub fn load_state<'a, F>(
        r: &mut crate::snap::SnapReader<'a>,
        dec: F,
    ) -> Result<Self, crate::snap::SnapError>
    where
        F: FnMut(&mut crate::snap::SnapReader<'a>) -> Result<E, crate::snap::SnapError>,
    {
        let now = r.time()?;
        let queue = Q::load_state(r, dec)?;
        Ok(Scheduler {
            now,
            queue,
            _event: PhantomData,
        })
    }
}

/// The mutable simulation state and its event handler.
///
/// `handle` is generic over the queue implementation behind the scheduler
/// so one `World` can be driven by any [`Queue`] — the engine's default
/// timing wheel or the reference binary heap (equivalence tests).
pub trait World {
    /// The event type this world handles.
    type Event;

    /// Handle one event at time `now`. May schedule more via `sched`.
    fn handle<Q: Queue<Self::Event>>(
        &mut self,
        now: SimTime,
        event: Self::Event,
        sched: &mut Scheduler<Self::Event, Q>,
    );

    /// Handle every event of one timestamp slot, in FIFO order, draining
    /// `events` completely. The engine's batched dispatch loop calls this
    /// once per slot with the reusable batch buffer; the default simply
    /// replays the events one by one through [`handle`](World::handle),
    /// so batching is behaviour-preserving for any world. Worlds override
    /// it to amortise per-event costs across a batch (grouping runs of
    /// one event kind, hoisting invariant lookups) — but any override
    /// must produce the same side effects, in the same order, as the
    /// default.
    ///
    /// Events scheduled *during* the batch at the same timestamp are not
    /// part of `events`; the engine picks them up in the next slot drain,
    /// which preserves exactly the order per-event dispatch would have
    /// produced (they sit behind the current batch in FIFO order either
    /// way).
    fn handle_batch<Q: Queue<Self::Event>>(
        &mut self,
        now: SimTime,
        events: &mut Vec<Self::Event>,
        sched: &mut Scheduler<Self::Event, Q>,
    ) {
        for ev in events.drain(..) {
            self.handle(now, ev, sched);
        }
    }
}

/// Outcome of driving a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the deadline.
    QueueEmpty {
        /// Time of the last dispatched event. (The clock itself still
        /// advances to the deadline, so relative scheduling after a
        /// drained `run_until` is anchored at the deadline.)
        at: SimTime,
    },
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// The event budget was exhausted (guard against runaway simulations).
    EventBudgetExhausted {
        /// Time at which the budget ran out.
        at: SimTime,
    },
    /// The progress watchdog tripped: more than `stall_limit` consecutive
    /// events were dispatched without the simulation clock advancing —
    /// the world is almost certainly rescheduling itself at the same
    /// instant forever. Returned instead of spinning until the heat death
    /// of the host.
    Stalled {
        /// The instant the simulation stopped making progress at.
        at: SimTime,
    },
}

/// Wall-clock dispatch statistics for profiled engines: how many events
/// were handled and how much real time the event loop consumed. Purely
/// observational — profiling never alters simulation behaviour, only
/// reads the host clock around `run_until` calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchProfile {
    /// Events dispatched while profiling was enabled.
    pub events: u64,
    /// Wall-clock nanoseconds spent inside `run_until`.
    pub wall_nanos: u64,
    /// Slot batches dispatched through `handle_batch` (0 under per-event
    /// dispatch — the observability signal that batching is engaging).
    pub batches: u64,
    /// Largest single batch handed to `handle_batch`.
    pub max_batch: u64,
}

impl DispatchProfile {
    /// Events handled per wall-clock second (0 before any time elapses).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_nanos as f64
    }

    /// Mean events per batch (0 when no batches were dispatched).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.events as f64 / self.batches as f64
    }
}

/// Drives a `World` and its scheduler.
pub struct Engine<W: World, Q: Queue<W::Event> = EventQueue<<W as World>::Event>> {
    /// The simulation state.
    pub world: W,
    /// The clock and event queue.
    pub sched: Scheduler<W::Event, Q>,
    /// Safety valve: maximum events per `run_until` call (default: no limit).
    pub event_budget: Option<u64>,
    /// Progress watchdog: maximum consecutive events at one timestamp
    /// before the run aborts with [`RunOutcome::Stalled`] (default: no
    /// limit). Same-time bursts are normal (FIFO fan-out), so set this
    /// well above any legitimate burst — the harness uses one million.
    pub stall_limit: Option<u64>,
    /// Dispatch mode: `true` (the default) drains whole timestamp slots
    /// through [`World::handle_batch`]; `false` pops one event at a time
    /// through [`World::handle`]. Both produce bit-identical simulations;
    /// the flag exists so equivalence tests and benchmarks can compare.
    pub batched: bool,
    /// Dispatch profiling accumulator (`None` = off, the default).
    profile: Option<DispatchProfile>,
    /// Reusable slot-drain buffer for batched dispatch. Grows to the
    /// largest batch seen and is never shrunk, so steady state allocates
    /// nothing.
    batch: Vec<W::Event>,
}

impl<W: World> Engine<W> {
    /// An engine with an empty (timing-wheel) queue wrapping `world`.
    pub fn new(world: W) -> Self {
        Self::with_queue(world)
    }
}

impl<W: World, Q: Queue<W::Event>> Engine<W, Q> {
    /// An engine over queue implementation `Q` wrapping `world`.
    pub fn with_queue(world: W) -> Self {
        Self::with_queue_resolution(world, Resolution::EXACT)
    }

    /// An engine whose queue quantises event timestamps up to `res`
    /// (identity at [`Resolution::EXACT`]).
    pub fn with_queue_resolution(world: W, res: Resolution) -> Self {
        Engine {
            world,
            sched: Scheduler::with_resolution(res),
            event_budget: None,
            stall_limit: None,
            batched: true,
            profile: None,
            batch: Vec::with_capacity(256),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Start accumulating wall-clock dispatch statistics.
    pub fn enable_profiling(&mut self) {
        self.profile.get_or_insert_with(DispatchProfile::default);
    }

    /// Accumulated dispatch statistics (None when profiling is off).
    pub fn profile(&self) -> Option<DispatchProfile> {
        self.profile
    }

    /// Run until `deadline` (inclusive: events stamped exactly at the
    /// deadline still run), the queue empties, or the budget runs out.
    ///
    /// On return the clock is at `deadline` (clamped to the last event
    /// time when the deadline is [`SimTime::MAX`], i.e. for
    /// [`run_to_completion`](Self::run_to_completion)) — even when the
    /// queue drained early. Callers that alternate drain/refill thus
    /// anchor subsequent relative scheduling at the deadline, not at
    /// whatever instant the last event happened to fire.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        if self.profile.is_none() {
            return self.run_until_inner(deadline);
        }
        let start = std::time::Instant::now();
        let dispatched_before = self.sched.queue.dispatched_total();
        let out = self.run_until_inner(deadline);
        let p = self.profile.as_mut().expect("profiling enabled");
        p.events += self.sched.queue.dispatched_total() - dispatched_before;
        p.wall_nanos += start.elapsed().as_nanos() as u64;
        out
    }

    fn run_until_inner(&mut self, deadline: SimTime) -> RunOutcome {
        // An event budget needs the exact per-event stop point, so it
        // always takes the one-at-a-time path.
        if self.batched && self.event_budget.is_none() {
            self.run_batched(deadline)
        } else {
            self.run_per_event(deadline)
        }
    }

    /// Batched dispatch: drain one whole timestamp slot per iteration and
    /// hand it to [`World::handle_batch`]. Clock, watchdog and outcome
    /// semantics match [`run_per_event`](Self::run_per_event) exactly;
    /// only the grouping of `handle` work differs, and slot-FIFO order
    /// makes that grouping invisible to the world (see `handle_batch`).
    fn run_batched(&mut self, deadline: SimTime) -> RunOutcome {
        let mut same_time_run = 0u64;
        let mut batches = 0u64;
        let mut max_batch = 0u64;
        let out = loop {
            let Some(t) = self.sched.queue.peek_time() else {
                let at = self.sched.now;
                if deadline != SimTime::MAX {
                    self.sched.now = deadline;
                }
                break RunOutcome::QueueEmpty { at };
            };
            if t > deadline {
                self.sched.now = deadline;
                break RunOutcome::DeadlineReached;
            }
            // Pop the first event exactly like the per-event loop; only
            // when more events share its timestamp does the slot-drain
            // buffer come into play. Most slots hold a single event (1 ns
            // resolution), so the singleton path must cost nothing extra.
            // (Routing singletons through the drain buffer to save the
            // re-peek was tried and measured slower: the buffer round
            // trip costs more than `peek_time`, which is a cached-field
            // read on both queue implementations.)
            let (raw_t, ev) = self.sched.queue.pop().expect("peeked");
            let t = raw_t.max(self.sched.now);
            if self.sched.queue.peek_time() != Some(raw_t) {
                batches += 1;
                max_batch = max_batch.max(1);
                if let Some(limit) = self.stall_limit {
                    if t > self.sched.now {
                        same_time_run = 0;
                    }
                    same_time_run += 1;
                    if same_time_run > limit {
                        break RunOutcome::Stalled { at: t };
                    }
                }
                self.sched.now = t;
                self.world.handle(t, ev, &mut self.sched);
                continue;
            }
            debug_assert!(self.batch.is_empty(), "batch buffer drained last slot");
            self.batch.push(ev);
            let slot_t = self
                .sched
                .queue
                .pop_slot(&mut self.batch)
                .expect("peeked same time");
            debug_assert_eq!(slot_t, raw_t, "slot drain stayed on the timestamp");
            let n = self.batch.len() as u64;
            batches += 1;
            max_batch = max_batch.max(n);
            if let Some(limit) = self.stall_limit {
                if t > self.sched.now {
                    same_time_run = 0;
                }
                same_time_run += n;
                if same_time_run > limit {
                    // Like the per-event path, the offending events are
                    // popped but never handled.
                    self.batch.clear();
                    break RunOutcome::Stalled { at: t };
                }
            }
            self.sched.now = t;
            self.world.handle_batch(t, &mut self.batch, &mut self.sched);
            debug_assert!(self.batch.is_empty(), "handle_batch must drain its input");
        };
        if let Some(p) = self.profile.as_mut() {
            p.batches += batches;
            p.max_batch = p.max_batch.max(max_batch);
        }
        out
    }

    fn run_per_event(&mut self, deadline: SimTime) -> RunOutcome {
        let mut budget = self.event_budget;
        // Progress watchdog: count consecutive dispatches at one
        // timestamp; any clock advance resets the count.
        let mut same_time_run = 0u64;
        loop {
            let Some(t) = self.sched.queue.peek_time() else {
                let at = self.sched.now;
                // Advance the clock to the deadline so relative `after()`
                // scheduling by the caller is computed from the right
                // instant. `SimTime::MAX` is the run-to-completion
                // sentinel, not a meaningful instant — keep the
                // last-event time there.
                if deadline != SimTime::MAX {
                    self.sched.now = deadline;
                }
                return RunOutcome::QueueEmpty { at };
            };
            if t > deadline {
                self.sched.now = deadline;
                return RunOutcome::DeadlineReached;
            }
            if let Some(b) = budget.as_mut() {
                if *b == 0 {
                    return RunOutcome::EventBudgetExhausted { at: self.sched.now };
                }
                *b -= 1;
            }
            let (t, ev) = self.sched.queue.pop().expect("peeked");
            // Defence in depth (queues clamp on push already): never let
            // the clock move backwards, in any build profile.
            let t = t.max(self.sched.now);
            if let Some(limit) = self.stall_limit {
                if t > self.sched.now {
                    same_time_run = 0;
                }
                same_time_run += 1;
                if same_time_run > limit {
                    return RunOutcome::Stalled { at: t };
                }
            }
            self.sched.now = t;
            self.world.handle(t, ev, &mut self.sched);
        }
    }

    /// Run until the queue is empty (or budget exhausted).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::BinaryHeapQueue;

    /// A toy world: a ping-pong counter that reschedules itself N times.
    struct PingPong {
        remaining: u32,
        log: Vec<(u64, &'static str)>,
    }

    enum Ev {
        Ping,
        Pong,
    }

    impl World for PingPong {
        type Event = Ev;
        fn handle<Q: Queue<Ev>>(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev, Q>) {
            match ev {
                Ev::Ping => {
                    self.log.push((now.as_nanos(), "ping"));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        sched.after(SimDuration::from_nanos(10), Ev::Pong);
                    }
                }
                Ev::Pong => {
                    self.log.push((now.as_nanos(), "pong"));
                    sched.after(SimDuration::from_nanos(10), Ev::Ping);
                }
            }
        }
    }

    #[test]
    fn ping_pong_alternates_and_terminates() {
        let mut eng = Engine::new(PingPong {
            remaining: 3,
            log: vec![],
        });
        eng.sched.immediately(Ev::Ping);
        let out = eng.run_to_completion();
        assert!(matches!(out, RunOutcome::QueueEmpty { .. }));
        let names: Vec<&str> = eng.world.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(
            names,
            ["ping", "pong", "ping", "pong", "ping", "pong", "ping"]
        );
        // Events are spaced 10ns apart.
        assert_eq!(eng.world.log.last().unwrap().0, 60);
        assert_eq!(eng.now().as_nanos(), 60);
    }

    #[test]
    fn deadline_stops_simulation_and_advances_clock() {
        let mut eng = Engine::new(PingPong {
            remaining: 1_000_000,
            log: vec![],
        });
        eng.sched.immediately(Ev::Ping);
        let out = eng.run_until(SimTime::from_nanos(55));
        assert_eq!(out, RunOutcome::DeadlineReached);
        assert_eq!(eng.now().as_nanos(), 55);
        // Events at t<=55: 0,10,20,30,40,50 -> 6 handled.
        assert_eq!(eng.world.log.len(), 6);
        // Resuming picks up where we left off.
        let out = eng.run_until(SimTime::from_nanos(75));
        assert_eq!(out, RunOutcome::DeadlineReached);
        assert_eq!(eng.world.log.len(), 8);
    }

    #[test]
    fn queue_empty_advances_clock_to_deadline() {
        // Regression: `run_until` used to leave `now` at the last event
        // time when the queue drained early, so a caller alternating
        // drain/refill would anchor relative `after()` scheduling at the
        // wrong instant.
        let mut eng = Engine::new(PingPong {
            remaining: 0,
            log: vec![],
        });
        eng.sched.immediately(Ev::Ping); // fires at t=0, schedules nothing
        let out = eng.run_until(SimTime::from_micros(100));
        assert_eq!(
            out,
            RunOutcome::QueueEmpty {
                at: SimTime::ZERO // last event time is still reported
            }
        );
        assert_eq!(eng.now(), SimTime::from_micros(100), "clock at deadline");
        // Refill relative to "now": the event must land at 100us + 10ns,
        // not at 10ns (the pong then schedules one final ping +10ns).
        eng.sched.after(SimDuration::from_nanos(10), Ev::Pong);
        eng.run_until(SimTime::from_micros(200));
        let base = SimTime::from_micros(100).as_nanos();
        assert_eq!(
            eng.world.log,
            [(0, "ping"), (base + 10, "pong"), (base + 20, "ping")]
        );
    }

    #[test]
    fn past_time_scheduling_clamps_to_now_in_all_profiles() {
        // `Scheduler::at` with a past timestamp must not reorder the
        // simulation (it used to be only a debug_assert, so release
        // builds silently violated event ordering).
        struct Rewinder {
            log: Vec<(u64, u32)>,
        }
        impl World for Rewinder {
            type Event = u32;
            fn handle<Q: Queue<u32>>(
                &mut self,
                now: SimTime,
                ev: u32,
                sched: &mut Scheduler<u32, Q>,
            ) {
                self.log.push((now.as_nanos(), ev));
                if ev == 0 {
                    // Attempt to schedule 50ns into the past.
                    sched.at(SimTime::from_nanos(50), 1);
                }
            }
        }
        let mut eng = Engine::new(Rewinder { log: vec![] });
        eng.sched.at(SimTime::from_nanos(100), 0);
        eng.run_to_completion();
        // The past event fired at now (100), not at 50, and after the
        // event that scheduled it.
        assert_eq!(eng.world.log, [(100, 0), (100, 1)]);
        assert_eq!(eng.now().as_nanos(), 100);
    }

    #[test]
    fn event_budget_guards_runaway() {
        let mut eng = Engine::new(PingPong {
            remaining: u32::MAX,
            log: vec![],
        });
        eng.event_budget = Some(10);
        eng.sched.immediately(Ev::Ping);
        let out = eng.run_to_completion();
        assert!(matches!(out, RunOutcome::EventBudgetExhausted { .. }));
        assert_eq!(eng.world.log.len(), 10);
    }

    #[test]
    fn stall_watchdog_catches_zero_time_loop() {
        // A world that reschedules itself at the same instant forever:
        // without the watchdog, `run_to_completion` never returns.
        struct Spinner;
        impl World for Spinner {
            type Event = ();
            fn handle<Q: Queue<()>>(&mut self, _: SimTime, _: (), sched: &mut Scheduler<(), Q>) {
                sched.immediately(());
            }
        }
        let mut eng = Engine::new(Spinner);
        eng.stall_limit = Some(1000);
        eng.sched.at(SimTime::from_nanos(42), ());
        let out = eng.run_to_completion();
        assert_eq!(
            out,
            RunOutcome::Stalled {
                at: SimTime::from_nanos(42)
            }
        );
    }

    #[test]
    fn stall_watchdog_resets_when_clock_advances() {
        // Legitimate same-time bursts (FIFO fan-out) shorter than the
        // limit must never trip the watchdog, however many of them occur.
        struct Burst {
            bursts_left: u32,
        }
        impl World for Burst {
            type Event = u32;
            fn handle<Q: Queue<u32>>(
                &mut self,
                _: SimTime,
                ev: u32,
                sched: &mut Scheduler<u32, Q>,
            ) {
                if ev > 0 {
                    sched.immediately(ev - 1); // burst of `ev` same-time events
                } else if self.bursts_left > 0 {
                    self.bursts_left -= 1;
                    sched.after(SimDuration::from_nanos(5), 8);
                }
            }
        }
        let mut eng = Engine::new(Burst { bursts_left: 100 });
        eng.stall_limit = Some(10); // > burst length 9, < total events
        eng.sched.immediately(8);
        let out = eng.run_to_completion();
        assert!(matches!(out, RunOutcome::QueueEmpty { .. }), "{out:?}");
    }

    #[test]
    fn profiling_counts_events_without_changing_results() {
        let run = |profiled: bool| {
            let mut eng = Engine::new(PingPong {
                remaining: 100,
                log: vec![],
            });
            if profiled {
                eng.enable_profiling();
            }
            eng.sched.immediately(Ev::Ping);
            eng.run_to_completion();
            let profile = eng.profile();
            (eng.world.log, profile)
        };
        let (plain_log, plain_profile) = run(false);
        let (prof_log, prof_profile) = run(true);
        assert_eq!(plain_log, prof_log, "profiling must not perturb the run");
        assert!(plain_profile.is_none());
        let p = prof_profile.expect("profile collected");
        assert_eq!(p.events as usize, prof_log.len());
        assert!(p.wall_nanos > 0);
        assert!(p.events_per_sec() > 0.0);
    }

    #[test]
    fn scheduler_immediately_runs_at_same_time_in_fifo_order() {
        struct Fanout {
            log: Vec<u32>,
        }
        impl World for Fanout {
            type Event = u32;
            fn handle<Q: Queue<u32>>(
                &mut self,
                _now: SimTime,
                ev: u32,
                sched: &mut Scheduler<u32, Q>,
            ) {
                self.log.push(ev);
                if ev == 0 {
                    sched.immediately(1);
                    sched.immediately(2);
                }
            }
        }
        let mut eng = Engine::new(Fanout { log: vec![] });
        eng.sched.immediately(0);
        eng.run_to_completion();
        assert_eq!(eng.world.log, [0, 1, 2]);
        assert_eq!(eng.now(), SimTime::ZERO);
    }

    #[test]
    fn per_event_dispatch_matches_batched() {
        // The same world driven with batching on (default) and off must
        // produce identical logs, clocks and dispatch counts.
        let drive = |batched: bool| {
            let mut eng = Engine::new(PingPong {
                remaining: 500,
                log: vec![],
            });
            eng.batched = batched;
            eng.sched.immediately(Ev::Ping);
            let out = eng.run_to_completion();
            assert!(matches!(out, RunOutcome::QueueEmpty { .. }));
            let (now, total) = (eng.now(), eng.sched.dispatched_total());
            (eng.world.log, now, total)
        };
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn batched_dispatch_keeps_fifo_across_nested_fanout() {
        // Events scheduled during a batch at the same timestamp must run
        // after the whole batch, in scheduling order — exactly as they
        // would under per-event dispatch.
        struct Nest {
            log: Vec<u32>,
        }
        impl World for Nest {
            type Event = u32;
            fn handle<Q: Queue<u32>>(
                &mut self,
                _now: SimTime,
                ev: u32,
                sched: &mut Scheduler<u32, Q>,
            ) {
                self.log.push(ev);
                if ev < 10 {
                    sched.immediately(ev * 10 + 1);
                    sched.immediately(ev * 10 + 2);
                }
            }
        }
        let drive = |batched: bool| {
            let mut eng = Engine::new(Nest { log: vec![] });
            eng.batched = batched;
            eng.sched.immediately(1);
            eng.sched.immediately(2);
            eng.run_to_completion();
            eng.world.log
        };
        let batched = drive(true);
        assert_eq!(batched, drive(false));
        assert_eq!(batched, [1, 2, 11, 12, 21, 22]);
    }

    #[test]
    fn stall_watchdog_identical_under_batching() {
        struct Spinner;
        impl World for Spinner {
            type Event = ();
            fn handle<Q: Queue<()>>(&mut self, _: SimTime, _: (), sched: &mut Scheduler<(), Q>) {
                sched.immediately(());
            }
        }
        for batched in [true, false] {
            let mut eng = Engine::new(Spinner);
            eng.batched = batched;
            eng.stall_limit = Some(1000);
            eng.sched.at(SimTime::from_nanos(42), ());
            let out = eng.run_to_completion();
            assert_eq!(
                out,
                RunOutcome::Stalled {
                    at: SimTime::from_nanos(42)
                },
                "batched={batched}"
            );
        }
    }

    #[test]
    fn profile_reports_batch_statistics() {
        // Fanout produces one 1-event slot and one 2-event slot.
        struct Fanout;
        impl World for Fanout {
            type Event = u32;
            fn handle<Q: Queue<u32>>(
                &mut self,
                _now: SimTime,
                ev: u32,
                sched: &mut Scheduler<u32, Q>,
            ) {
                if ev == 0 {
                    sched.immediately(1);
                    sched.immediately(2);
                }
            }
        }
        let mut eng = Engine::new(Fanout);
        eng.enable_profiling();
        eng.sched.immediately(0);
        eng.run_to_completion();
        let p = eng.profile().expect("profiling on");
        assert_eq!(p.events, 3);
        assert_eq!(p.batches, 2);
        assert_eq!(p.max_batch, 2);
        assert!((p.mean_batch() - 1.5).abs() < 1e-12);
        // Per-event dispatch reports zero batches.
        let mut eng = Engine::new(Fanout);
        eng.batched = false;
        eng.enable_profiling();
        eng.sched.immediately(0);
        eng.run_to_completion();
        let p = eng.profile().expect("profiling on");
        assert_eq!((p.events, p.batches, p.max_batch), (3, 0, 0));
        assert_eq!(p.mean_batch(), 0.0);
    }

    #[test]
    fn heap_engine_matches_wheel_engine() {
        // The same world driven by both queue implementations must
        // produce identical logs, clocks and dispatch counts.
        fn drive<Q: Queue<Ev>>(mut eng: Engine<PingPong, Q>) -> (Vec<(u64, &'static str)>, u64) {
            eng.sched.immediately(Ev::Ping);
            eng.run_to_completion();
            (eng.world.log, eng.sched.dispatched_total())
        }
        let mk = || PingPong {
            remaining: 1000,
            log: vec![],
        };
        let wheel = drive(Engine::new(mk()));
        let heap = drive(Engine::<PingPong, BinaryHeapQueue<Ev>>::with_queue(mk()));
        assert_eq!(wheel, heap);
    }
}
