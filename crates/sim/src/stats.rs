//! Streaming statistics: counters, mean/variance accumulators and windowed
//! rate meters used by every component to export measurements without
//! storing per-packet logs.

use crate::time::{SimDuration, SimTime};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Serialize the accumulator for a checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }

    /// Rebuild an accumulator from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(Running {
            n: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }

    /// Merge another accumulator into this one (Chan's parallel algorithm).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Counts bytes (or any quantity) over simulated time and reports the
/// average rate over the measured interval.
#[derive(Debug, Clone)]
pub struct RateMeter {
    total: u64,
    start: SimTime,
    last: SimTime,
    started: bool,
}

impl Default for RateMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl RateMeter {
    /// A meter that starts counting at the first recorded sample.
    pub fn new() -> Self {
        RateMeter {
            total: 0,
            start: SimTime::ZERO,
            last: SimTime::ZERO,
            started: false,
        }
    }

    /// Begin (or re-begin) measurement at `now`, discarding prior counts.
    /// Used to skip warm-up transients.
    pub fn reset(&mut self, now: SimTime) {
        self.total = 0;
        self.start = now;
        self.last = now;
        self.started = true;
    }

    /// Add `amount` units at time `now`.
    pub fn record(&mut self, now: SimTime, amount: u64) {
        if !self.started {
            self.reset(now);
        }
        self.total += amount;
        if now > self.last {
            self.last = now;
        }
    }

    /// Total units recorded since the last reset.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Average rate in units/second over `[start, now]`.
    pub fn rate_per_sec(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.start).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.total as f64 / elapsed
        }
    }

    /// Average rate in bits/second (convenience for byte counters).
    pub fn rate_bits_per_sec(&self, now: SimTime) -> f64 {
        self.rate_per_sec(now) * 8.0
    }

    /// Serialize the meter for a checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.total);
        w.time(self.start);
        w.time(self.last);
        w.bool(self.started);
    }

    /// Rebuild a meter from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(RateMeter {
            total: r.u64()?,
            start: r.time()?,
            last: r.time()?,
            started: r.bool()?,
        })
    }
}

/// Exponentially-weighted moving average with a configurable gain.
///
/// Swift and the delay instrumentation use EWMA filters; keeping one shared
/// implementation means one set of tests.
#[derive(Debug, Clone)]
pub struct Ewma {
    value: f64,
    gain: f64,
    initialized: bool,
}

impl Ewma {
    /// `gain` in (0, 1]: weight of each new sample.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0,1]");
        Ewma {
            value: 0.0,
            gain,
            initialized: false,
        }
    }

    /// Fold in a new sample.
    pub fn record(&mut self, x: f64) {
        if self.initialized {
            self.value += self.gain * (x - self.value);
        } else {
            self.value = x;
            self.initialized = true;
        }
    }

    /// Current filtered value (0 before the first sample).
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been recorded.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Serialize the filter (value and initialisation flag; the gain is
    /// configuration and is written too so restore needs no constructor
    /// arguments).
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.f64(self.value);
        w.f64(self.gain);
        w.bool(self.initialized);
    }

    /// Rebuild a filter from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let value = r.f64()?;
        let gain = r.f64()?;
        let initialized = r.bool()?;
        if !(gain > 0.0 && gain <= 1.0) {
            return Err(crate::snap::SnapError::Corrupt("ewma gain out of range"));
        }
        Ok(Ewma {
            value,
            gain,
            initialized,
        })
    }
}

/// A time-binned series: accumulates samples into fixed-width time bins,
/// used to export throughput/drop-rate curves over a run.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bin_width: SimDuration,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// A series with the given bin width.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        TimeSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Add `amount` to the bin containing time `at`.
    pub fn record(&mut self, at: SimTime, amount: f64) {
        let idx = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// The accumulated bins in time order.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// (bin start time, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &v)| (SimTime::from_nanos(i as u64 * self.bin_width.as_nanos()), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_basic_moments() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.record(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn running_empty_is_zero() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
    }

    #[test]
    fn running_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_average() {
        let mut m = RateMeter::new();
        m.reset(SimTime::ZERO);
        m.record(SimTime::from_micros(1), 1000);
        m.record(SimTime::from_micros(2), 1000);
        // 2000 bytes over 2us = 1e9 B/s = 8 Gbps.
        let now = SimTime::from_micros(2);
        assert!((m.rate_per_sec(now) - 1e9).abs() < 1.0);
        assert!((m.rate_bits_per_sec(now) - 8e9).abs() < 8.0);
    }

    #[test]
    fn rate_meter_reset_discards_history() {
        let mut m = RateMeter::new();
        m.record(SimTime::from_micros(1), 5000);
        m.reset(SimTime::from_micros(10));
        assert_eq!(m.total(), 0);
        m.record(SimTime::from_micros(11), 100);
        assert_eq!(m.total(), 100);
        // Rate measured from the reset point, not t=0.
        let r = m.rate_per_sec(SimTime::from_micros(11));
        assert!((r - 1e8).abs() < 1.0);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.25);
        assert!(!e.is_initialized());
        e.record(10.0);
        assert_eq!(e.get(), 10.0); // first sample adopted wholesale
        for _ in 0..100 {
            e.record(20.0);
        }
        assert!((e.get() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_bins() {
        let mut s = TimeSeries::new(SimDuration::from_micros(10));
        s.record(SimTime::from_micros(3), 1.0);
        s.record(SimTime::from_micros(9), 1.0);
        s.record(SimTime::from_micros(10), 5.0);
        s.record(SimTime::from_micros(25), 7.0);
        assert_eq!(s.bins(), &[2.0, 5.0, 7.0]);
        let pts: Vec<_> = s.iter().collect();
        assert_eq!(pts[1].0, SimTime::from_micros(10));
        assert_eq!(pts[2].1, 7.0);
    }
}
