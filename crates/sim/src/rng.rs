//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible from a seed, across
//! platforms and across runs. We implement SplitMix64 (for seeding) and
//! xoshiro256** (for the stream) directly rather than depending on an
//! external crate whose output could change between versions.
//!
//! The generators here are for *simulation* use only (workload arrival
//! jitter, address selection, antagonist phase); they are not cryptographic.

/// SplitMix64: used to expand a single `u64` seed into generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The SplitMix64 output finalizer: a full-avalanche bijection on
    /// `u64` (every input bit flips each output bit with probability
    /// ~1/2). Useful on its own to decorrelate structured seeds.
    #[inline]
    pub fn mix(x: u64) -> u64 {
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }
}

/// Derive a well-separated sub-seed for stream `stream` of a base `seed`.
///
/// Naive mixing like `seed ^ (C1 + stream * C2)` leaves adjacent
/// (seed, stream) pairs correlated — the XOR only perturbs a handful of
/// low bits, so generators seeded that way start from nearly identical
/// state. Routing the combination through the SplitMix64 finalizer twice
/// (once per component, golden-ratio offset between them) gives every
/// pair a statistically independent 64-bit seed while staying a pure
/// deterministic function of `(seed, stream)`.
#[inline]
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    SplitMix64::mix(
        SplitMix64::mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// xoshiro256**: the main simulation RNG.
///
/// Fast, small state, excellent statistical quality, and a stable published
/// algorithm so results stay reproducible forever.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // xoshiro state must not be all-zero; SplitMix64 of any seed never
        // produces four zeros in a row, but guard anyway.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derive an independent child generator (for per-component streams).
    ///
    /// Each call advances this generator, so successive forks are distinct.
    pub fn fork(&mut self) -> SimRng {
        // Mix two outputs through SplitMix64 for a well-separated child seed.
        let a = self.next_u64();
        let b = self.next_u64();
        SimRng::new(a ^ b.rotate_left(32) ^ 0xA076_1D64_78BD_642F)
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reached when low < bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival jitter in workload generators.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        // Avoid ln(0) by mapping 0 -> smallest positive.
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (one value per call; simple and stateless).
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (core::f64::consts::TAU * u2).cos()
    }

    /// Serialize the generator state for a checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        for &word in &self.s {
            w.u64(word);
        }
    }

    /// Rebuild a generator from [`save_state`](Self::save_state) output;
    /// the restored stream continues bit-for-bit where the saved one was.
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        if s.iter().all(|&x| x == 0) {
            // All-zero is a fixed point of xoshiro256**: unreachable from
            // any seed, so it can only mean corruption.
            return Err(crate::snap::SnapError::Corrupt("all-zero rng state"));
        }
        Ok(SimRng { s })
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.next_below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially disjoint");
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // A second fork must differ from the first.
        let mut c3 = parent1.fork();
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let x = r.next_range(5, 7);
            assert!((5..=7).contains(&x));
        }
        assert_eq!(r.next_range(4, 4), 4);
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(250.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "mean {mean} too far from 250");
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut r = SimRng::new(17);
        let n = 100_000;
        let vals: Vec<f64> = (0..n).map(|_| r.next_normal(10.0, 2.0)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stream_seeds_are_distinct_and_uncorrelated() {
        // The weak mixing this replaced (`seed ^ (0x9E37 + t * 0x1234_5677)`)
        // produced correlated streams for adjacent (seed, thread) pairs.
        // Require: all derived seeds distinct, all first draws distinct,
        // and first draws of adjacent pairs decorrelated (Hamming distance
        // between neighbouring streams' first outputs near 32 of 64 bits).
        let mut seen_seeds = std::collections::HashSet::new();
        let mut seen_draws = std::collections::HashSet::new();
        let mut draws = vec![];
        for seed in 0..32u64 {
            for thread in 0..32u64 {
                let s = stream_seed(seed, thread);
                assert!(seen_seeds.insert(s), "duplicate stream seed");
                let first = SimRng::new(s).next_u64();
                assert!(seen_draws.insert(first), "duplicate first draw");
                draws.push(first);
            }
        }
        let mut dist = 0u32;
        for pair in draws.windows(2) {
            dist += (pair[0] ^ pair[1]).count_ones();
        }
        let mean = dist as f64 / (draws.len() - 1) as f64;
        assert!(
            (24.0..40.0).contains(&mean),
            "adjacent first draws should differ in ~32/64 bits, got {mean}"
        );
    }

    #[test]
    fn mix_is_deterministic_and_avalanches() {
        assert_eq!(SplitMix64::mix(42), SplitMix64::mix(42));
        // Flipping one input bit flips roughly half the output bits.
        let mut total = 0u32;
        for bit in 0..64 {
            total += (SplitMix64::mix(7) ^ SplitMix64::mix(7 ^ (1 << bit))).count_ones();
        }
        let mean = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&mean), "avalanche mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(23);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
