//! Rate pacing primitives: a byte-granularity token bucket and a serialised
//! link gate, both driven by simulation time.

use crate::time::{Resolution, SimDuration, SimTime};

/// Token bucket refilled continuously at `rate` bytes/sec with a burst cap.
///
/// Used for sender pacing (Swift paces when cwnd < 1) and for software rate
/// limiters in the workload generators.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: f64, // bytes per second
    burst: f64,    // max accumulated tokens, bytes
    tokens: f64,
    last: SimTime,
    /// Grant wake-up times are rounded up to this grid (identity at the
    /// default exact resolution); pacer delays are already estimates, so
    /// coarse-time runs coalesce them onto wheel slots.
    res: Resolution,
}

impl TokenBucket {
    /// A bucket refilling at `rate_bytes_per_sec`, holding at most
    /// `burst_bytes`, starting full.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64) -> Self {
        assert!(rate_bytes_per_sec > 0.0, "rate must be positive");
        assert!(burst_bytes > 0.0, "burst must be positive");
        TokenBucket {
            rate_bps: rate_bytes_per_sec,
            burst: burst_bytes,
            tokens: burst_bytes,
            last: SimTime::ZERO,
            res: Resolution::EXACT,
        }
    }

    /// Quantise future grant-ready times up to `res` (the strict-progress
    /// contract is preserved: rounding up can only move a wake-up later).
    pub fn set_resolution(&mut self, res: Resolution) {
        self.res = res;
    }

    /// Change the fill rate (tokens already accrued are kept, capped at burst).
    pub fn set_rate(&mut self, now: SimTime, rate_bytes_per_sec: f64) {
        assert!(rate_bytes_per_sec > 0.0, "rate must be positive");
        self.refill(now);
        self.rate_bps = rate_bytes_per_sec;
    }

    /// Current fill rate, bytes/sec.
    pub fn rate(&self) -> f64 {
        self.rate_bps
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bps).min(self.burst);
        if now > self.last {
            self.last = now;
        }
    }

    /// Try to consume `bytes` at `now`. On failure returns the earliest time
    /// at which the bucket will hold enough tokens.
    ///
    /// Progress contract: the returned wake-up time is *strictly* later
    /// than `now`. A caller that sleeps until the returned time and
    /// retries therefore always advances the clock between attempts — a
    /// same-time `Err` would let a retry loop spin the event queue at one
    /// instant forever (the stall the engine watchdog exists to catch).
    /// The deficit can round to a zero-duration wait when the rate is
    /// enormous relative to the shortfall (e.g. a sub-token deficit at
    /// hundreds of GB/s), so a zero wait is clamped up to 1 ns.
    pub fn try_consume(&mut self, now: SimTime, bytes: u64) -> Result<(), SimTime> {
        self.refill(now);
        let need = bytes as f64;
        if self.tokens >= need {
            self.tokens -= need;
            Ok(())
        } else {
            let deficit = need - self.tokens;
            let wait = SimDuration::from_secs_f64(deficit / self.rate_bps);
            let wait = if wait.is_zero() {
                SimDuration::from_nanos(1)
            } else {
                wait
            };
            let ready = self.res.ceil_time(now + wait);
            debug_assert!(ready > now, "pacer wakeups must advance time");
            Err(ready)
        }
    }

    /// Serialize the bucket (configuration and fill state) for a checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.f64(self.rate_bps);
        w.f64(self.burst);
        w.f64(self.tokens);
        w.time(self.last);
        w.u32(self.res.shift());
    }

    /// Rebuild a bucket from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let rate_bps = r.f64()?;
        let burst = r.f64()?;
        let tokens = r.f64()?;
        let last = r.time()?;
        let res = u64::checked_shl(1, r.u32()?)
            .and_then(Resolution::from_nanos)
            .ok_or(SnapError::Corrupt("bad pacer resolution"))?;
        let pos_finite = |x: f64| x.is_finite() && x > 0.0;
        if !pos_finite(rate_bps) || !pos_finite(burst) || !tokens.is_finite() {
            return Err(SnapError::Corrupt("token bucket state out of range"));
        }
        Ok(TokenBucket {
            rate_bps,
            burst,
            tokens,
            last,
            res,
        })
    }
}

/// A serialising gate: models a resource that transmits one item at a time
/// at a fixed byte rate (a link, a DMA engine lane). Tracks the time the
/// resource becomes free and returns per-item (start, finish) times.
#[derive(Debug, Clone)]
pub struct SerialLink {
    bytes_per_sec: f64,
    free_at: SimTime,
    busy: SimDuration,
    /// Serialisation completion times are rounded up to this grid
    /// (identity at the default exact resolution). `for_bytes` already
    /// rounds the true transfer time up to whole nanoseconds, so a coarse
    /// grid is the same approximation, one knob wider.
    res: Resolution,
}

impl SerialLink {
    /// A link serialising at `bytes_per_sec`.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "rate must be positive");
        SerialLink {
            bytes_per_sec,
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            res: Resolution::EXACT,
        }
    }

    /// Quantise serialisation completion times up to `res`.
    pub fn set_resolution(&mut self, res: Resolution) {
        self.res = res;
    }

    /// Serialisation rate, bytes/sec.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Enqueue a `bytes`-sized item arriving at `now`; returns the time its
    /// serialisation completes.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = if now > self.free_at {
            now
        } else {
            self.free_at
        };
        let ser = self
            .res
            .ceil_duration(SimDuration::for_bytes(bytes, self.bytes_per_sec));
        self.busy += ser;
        self.free_at = start + ser;
        self.free_at
    }

    /// Time at which the link becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Queueing delay an item arriving `now` would suffer before starting.
    pub fn backlog_delay(&self, now: SimTime) -> SimDuration {
        self.free_at.saturating_since(now)
    }

    /// Total busy (serialising) time accumulated; utilisation = busy/elapsed.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Serialize the link (rate and occupancy) for a checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.f64(self.bytes_per_sec);
        w.time(self.free_at);
        w.duration(self.busy);
        w.u32(self.res.shift());
    }

    /// Rebuild a link from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let bytes_per_sec = r.f64()?;
        let free_at = r.time()?;
        let busy = r.duration()?;
        let res = u64::checked_shl(1, r.u32()?)
            .and_then(Resolution::from_nanos)
            .ok_or(SnapError::Corrupt("bad link resolution"))?;
        if !(bytes_per_sec.is_finite() && bytes_per_sec > 0.0) {
            return Err(SnapError::Corrupt("link rate out of range"));
        }
        Ok(SerialLink {
            bytes_per_sec,
            free_at,
            busy,
            res,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_allows_burst_then_paces() {
        let mut tb = TokenBucket::new(1e9, 4096.0); // 1 GB/s, 4 KiB burst
        let t0 = SimTime::ZERO;
        assert!(tb.try_consume(t0, 4096).is_ok());
        // Bucket now empty; next 4096 B needs 4096 ns.
        match tb.try_consume(t0, 4096) {
            Err(ready) => assert_eq!(ready.as_nanos(), 4096),
            Ok(()) => panic!("should have been paced"),
        }
        // At the advertised ready time it must succeed.
        assert!(tb.try_consume(SimTime::from_nanos(4096), 4096).is_ok());
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let mut tb = TokenBucket::new(1e9, 1000.0);
        // A long idle period must not accumulate more than the burst.
        let later = SimTime::from_secs(10);
        assert!(tb.try_consume(later, 1000).is_ok());
        assert!(tb.try_consume(later, 1).is_err());
    }

    #[test]
    fn token_bucket_set_rate_takes_effect() {
        let mut tb = TokenBucket::new(1e9, 100.0);
        let t0 = SimTime::ZERO;
        assert!(tb.try_consume(t0, 100).is_ok());
        tb.set_rate(t0, 2e9);
        match tb.try_consume(t0, 100) {
            Err(ready) => assert_eq!(ready.as_nanos(), 50),
            Ok(()) => panic!("should pace"),
        }
        assert_eq!(tb.rate(), 2e9);
    }

    #[test]
    fn token_bucket_zero_duration_grant_still_advances_time() {
        // Regression for the same-time retry hazard: at an extreme rate a
        // sub-token deficit computes a wait that rounds to zero
        // nanoseconds. The advertised ready time must still be strictly
        // after `now`, or a sleep-and-retry caller would loop at one
        // instant forever.
        let mut tb = TokenBucket::new(1e12, 10.0); // 1 TB/s, 10 B burst
        let t0 = SimTime::from_nanos(7);
        assert!(tb.try_consume(t0, 10).is_ok());
        // Deficit of 1 B at 1 TB/s = 1 ps -> rounds to a zero-duration wait.
        match tb.try_consume(t0, 1) {
            Err(ready) => {
                assert!(ready > t0, "ready time must advance past now");
                assert_eq!(ready.as_nanos(), t0.as_nanos() + 1, "clamped to 1 ns");
                // And retrying at the advertised time succeeds.
                assert!(tb.try_consume(ready, 1).is_ok());
            }
            Ok(()) => panic!("bucket was empty; consume must pace"),
        }
    }

    #[test]
    fn serial_link_pipelines_back_to_back() {
        let mut l = SerialLink::new(1e9); // 1 GB/s: 1000 B = 1 us
        let d1 = l.transmit(SimTime::ZERO, 1000);
        assert_eq!(d1.as_nanos(), 1000);
        // Second item arriving at t=0 waits for the first.
        let d2 = l.transmit(SimTime::ZERO, 1000);
        assert_eq!(d2.as_nanos(), 2000);
        // Item arriving after the link went idle starts immediately.
        let d3 = l.transmit(SimTime::from_nanos(10_000), 500);
        assert_eq!(d3.as_nanos(), 10_500);
        assert_eq!(l.busy_time().as_nanos(), 2500);
    }

    #[test]
    fn coarse_resolution_quantises_grants_and_serialisation() {
        let res = Resolution::from_nanos(64).unwrap();
        // Token bucket: the ready time rounds up to the grid and stays
        // strictly after `now`.
        let mut tb = TokenBucket::new(1e9, 4096.0);
        tb.set_resolution(res);
        let t0 = SimTime::ZERO;
        assert!(tb.try_consume(t0, 4096).is_ok());
        match tb.try_consume(t0, 100) {
            // 100 ns deficit → next 64 ns boundary at/after 100 = 128.
            Err(ready) => assert_eq!(ready.as_nanos(), 128),
            Ok(()) => panic!("should pace"),
        }
        assert!(tb.try_consume(SimTime::from_nanos(128), 100).is_ok());
        // Serial link: per-item serialisation rounds up, so back-to-back
        // completions stay on the grid without compounding drift.
        let mut l = SerialLink::new(1e9);
        l.set_resolution(res);
        assert_eq!(l.transmit(SimTime::ZERO, 1000).as_nanos(), 1024);
        assert_eq!(l.transmit(SimTime::ZERO, 1000).as_nanos(), 2048);
        assert_eq!(l.busy_time().as_nanos(), 2048);
    }

    #[test]
    fn serial_link_backlog_delay() {
        let mut l = SerialLink::new(1e9);
        l.transmit(SimTime::ZERO, 2000);
        assert_eq!(l.backlog_delay(SimTime::ZERO).as_nanos(), 2000);
        assert_eq!(l.backlog_delay(SimTime::from_nanos(1500)).as_nanos(), 500);
        assert_eq!(l.backlog_delay(SimTime::from_nanos(9999)).as_nanos(), 0);
    }
}
