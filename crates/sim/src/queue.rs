//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by timestamp; events with equal timestamps pop in
//! insertion (FIFO) order so the simulation is fully deterministic — a plain
//! `BinaryHeap` over `(time, payload)` would break ties arbitrarily.
//!
//! Two implementations share the [`Queue`] interface:
//!
//! * [`TimingWheel`](crate::TimingWheel) — the default ([`EventQueue`] is an
//!   alias for it): a timing wheel with an overflow heap, tuned for the
//!   near-future-dominated schedules a packet-level simulator produces;
//! * [`BinaryHeapQueue`] — the classic `(time, seq)` binary heap, kept as
//!   the reference implementation for equivalence testing.
//!
//! Both are bit-for-bit deterministic: for any interleaving of pushes and
//! pops, they return the same events in the same order.

use crate::time::{Resolution, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The interface the engine requires of an event queue: a deterministic
/// min-priority queue over `(SimTime, E)` with FIFO ordering for equal
/// timestamps.
pub trait Queue<E> {
    /// An empty queue at exact (1 ns) resolution.
    fn new() -> Self
    where
        Self: Sized,
    {
        Self::with_resolution(Resolution::EXACT)
    }

    /// An empty queue that quantises event timestamps *up* to the given
    /// resolution grid at push time. [`Resolution::EXACT`] must behave
    /// identically to [`new`](Queue::new).
    fn with_resolution(res: Resolution) -> Self;

    /// Schedule `event` to fire at `time`.
    fn push(&mut self, time: SimTime, event: E);

    /// Remove and return the earliest event, if any.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Drain *every* event sharing the earliest timestamp into `buf`
    /// (appended in exactly the order repeated [`pop`](Queue::pop) calls
    /// would return them) and return that timestamp. `buf` is reused by
    /// the caller across calls — implementations must only append, never
    /// allocate fresh storage.
    ///
    /// The default just loops `pop` while the next timestamp matches;
    /// implementations with a cheaper bulk path (the timing wheel's
    /// slot-FIFO drain list) override it.
    fn pop_slot(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        let t = self.peek_time()?;
        while let Some((_, ev)) = self.pop() {
            buf.push(ev);
            if self.peek_time() != Some(t) {
                break;
            }
        }
        Some(t)
    }

    /// Timestamp of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled over the queue's lifetime.
    fn scheduled_total(&self) -> u64;

    /// Total number of events dispatched over the queue's lifetime.
    fn dispatched_total(&self) -> u64;
}

#[derive(Clone)]
pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap and we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events backed by a
/// binary heap with an insertion-sequence tie-break.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Timestamps are rounded up to this grid at push time (identity at
    /// the default exact resolution), mirroring the timing wheel.
    res: Resolution,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue at exact (1 ns) resolution.
    pub fn new() -> Self {
        Self::with_resolution(Resolution::EXACT)
    }

    /// An empty queue quantising timestamps up to `res`.
    pub fn with_resolution(res: Resolution) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            res,
            next_seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.heap.reserve(cap);
        q
    }
}

impl<E: Clone> crate::snap::SnapQueue<E> for BinaryHeapQueue<E> {
    fn save_state<F: FnMut(&E, &mut crate::snap::SnapWriter)>(
        &self,
        w: &mut crate::snap::SnapWriter,
        mut enc: F,
    ) {
        w.u32(self.res.shift());
        w.u64(self.next_seq);
        w.u64(self.popped);
        w.usize(self.heap.len());
        // Drain a clone so serialization is in exact dispatch order.
        let mut drain = self.heap.clone();
        while let Some(e) = drain.pop() {
            w.time(e.time);
            enc(&e.event, w);
        }
    }

    fn load_state<
        'a,
        F: FnMut(&mut crate::snap::SnapReader<'a>) -> Result<E, crate::snap::SnapError>,
    >(
        r: &mut crate::snap::SnapReader<'a>,
        mut dec: F,
    ) -> Result<Self, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let shift = r.u32()?;
        let res = u64::checked_shl(1, shift)
            .and_then(Resolution::from_nanos)
            .ok_or(SnapError::Corrupt("bad queue resolution"))?;
        let next_seq = r.u64()?;
        let popped = r.u64()?;
        let n = r.len(9)?;
        if (n as u64) > next_seq {
            return Err(SnapError::Corrupt("more pending events than scheduled"));
        }
        let mut q = BinaryHeapQueue::with_resolution(res);
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let t = r.time()?;
            if t < last {
                return Err(SnapError::Corrupt("queue events out of order"));
            }
            last = t;
            Queue::push(&mut q, t, dec(r)?);
        }
        q.next_seq = next_seq;
        q.popped = popped;
        Ok(q)
    }
}

impl<E> Queue<E> for BinaryHeapQueue<E> {
    fn with_resolution(res: Resolution) -> Self {
        BinaryHeapQueue::with_resolution(res)
    }

    fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let time = self.res.ceil_time(time);
        self.heap.push(Entry { time, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    fn dispatched_total(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::wheel::TimingWheel;

    fn impls<E>() -> (BinaryHeapQueue<E>, TimingWheel<E>) {
        (BinaryHeapQueue::new(), TimingWheel::new())
    }

    fn pops_in_time_order<Q: Queue<&'static str>>(mut q: Q) {
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    fn equal_times_pop_fifo<Q: Queue<i32>>(mut q: Q) {
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    fn interleaved_push_pop_stays_ordered<Q: Queue<i32>>(mut q: Q) {
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_nanos(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    fn counters_track_lifetime_totals<Q: Queue<()>>(mut q: Q) {
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.dispatched_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    fn peek_time_matches_next_pop<Q: Queue<()>>(mut q: Q) {
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(42), ());
        q.push(SimTime::from_nanos(17), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(17)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(17));
    }

    #[test]
    fn both_impls_pop_in_time_order() {
        let (h, w) = impls();
        pops_in_time_order(h);
        pops_in_time_order(w);
    }

    #[test]
    fn both_impls_pop_equal_times_fifo() {
        let (h, w) = impls();
        equal_times_pop_fifo(h);
        equal_times_pop_fifo(w);
    }

    #[test]
    fn both_impls_stay_ordered_under_interleaving() {
        let (h, w) = impls();
        interleaved_push_pop_stays_ordered(h);
        interleaved_push_pop_stays_ordered(w);
    }

    #[test]
    fn both_impls_track_lifetime_totals() {
        let (h, w) = impls();
        counters_track_lifetime_totals(h);
        counters_track_lifetime_totals(w);
    }

    #[test]
    fn both_impls_peek_next_pop() {
        let (h, w) = impls();
        peek_time_matches_next_pop(h);
        peek_time_matches_next_pop(w);
    }

    fn pop_slot_drains_exactly_one_timestamp<Q: Queue<i32>>(mut q: Q) {
        let mut buf = Vec::new();
        assert_eq!(q.pop_slot(&mut buf), None);
        let t5 = SimTime::from_nanos(5);
        let t9 = SimTime::from_nanos(9);
        q.push(t9, 100);
        for i in 0..10 {
            q.push(t5, i);
        }
        assert_eq!(q.pop_slot(&mut buf), Some(t5));
        assert_eq!(buf, (0..10).collect::<Vec<_>>());
        assert_eq!(q.peek_time(), Some(t9));
        // The buffer is append-only: prior contents survive.
        assert_eq!(q.pop_slot(&mut buf), Some(t9));
        assert_eq!(buf.len(), 11);
        assert_eq!(*buf.last().unwrap(), 100);
        assert!(q.is_empty());
        assert_eq!(q.dispatched_total(), 11);
    }

    #[test]
    fn both_impls_pop_slot_one_timestamp() {
        let (h, w) = impls();
        pop_slot_drains_exactly_one_timestamp(h);
        pop_slot_drains_exactly_one_timestamp(w);
    }

    /// Randomised differential test: any interleaving of pushes and pops
    /// must produce identical sequences from both implementations.
    #[test]
    fn heap_and_wheel_agree_on_random_workloads() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(0xE0E0_1234);
        let mut heap: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut now = 0u64;
        let mut id = 0u32;
        for _ in 0..200_000 {
            if rng.chance(0.55) || heap.is_empty() {
                // Mix of near-future (wheel) and far-future (overflow)
                // horizons, including exact ties at the current time.
                let delay = match rng.next_below(10) {
                    0 => 0,
                    1..=6 => rng.next_below(2_000),
                    7 | 8 => rng.next_below(200_000),
                    _ => rng.next_below(20_000_000),
                };
                let t = SimTime::from_nanos(now + delay);
                heap.push(t, id);
                wheel.push(t, id);
                id += 1;
            } else {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "heap and wheel diverged");
                if let Some((t, _)) = a {
                    now = t.as_nanos();
                }
            }
        }
        assert_eq!(heap.peek_time(), wheel.peek_time());
        while let Some(a) = heap.pop() {
            assert_eq!(Some(a), wheel.pop());
        }
        assert_eq!(wheel.pop(), None);
        assert_eq!(heap.scheduled_total(), wheel.scheduled_total());
        assert_eq!(heap.dispatched_total(), wheel.dispatched_total());
    }

    /// Randomised differential test for the bulk path: draining the wheel
    /// slot by slot via `pop_slot` must yield exactly the `(time, event)`
    /// sequence that repeated `pop` calls produce, under the same mixed
    /// near/far/tied-horizon workload as the heap/wheel test above.
    #[test]
    fn per_event_and_slot_drain_agree_on_random_workloads() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(0xBA7C_5EED);
        let mut per_event: TimingWheel<u32> = TimingWheel::new();
        let mut slot_drain: TimingWheel<u32> = TimingWheel::new();
        let mut buf: Vec<u32> = Vec::new();
        let mut now = 0u64;
        let mut id = 0u32;
        for _ in 0..200_000 {
            if rng.chance(0.55) || per_event.is_empty() {
                let delay = match rng.next_below(10) {
                    0 => 0,
                    1..=6 => rng.next_below(2_000),
                    7 | 8 => rng.next_below(200_000),
                    _ => rng.next_below(20_000_000),
                };
                let t = SimTime::from_nanos(now + delay);
                per_event.push(t, id);
                slot_drain.push(t, id);
                id += 1;
            } else {
                buf.clear();
                let t = slot_drain.pop_slot(&mut buf).expect("queue is non-empty");
                for (i, &v) in buf.iter().enumerate() {
                    assert_eq!(
                        per_event.pop(),
                        Some((t, v)),
                        "slot drain diverged at batch index {i}"
                    );
                }
                now = t.as_nanos();
            }
        }
        assert_eq!(per_event.peek_time(), slot_drain.peek_time());
        loop {
            buf.clear();
            let Some(t) = slot_drain.pop_slot(&mut buf) else {
                break;
            };
            for &v in &buf {
                assert_eq!(per_event.pop(), Some((t, v)));
            }
        }
        assert_eq!(per_event.pop(), None);
        assert_eq!(per_event.scheduled_total(), slot_drain.scheduled_total());
        assert_eq!(per_event.dispatched_total(), slot_drain.dispatched_total());
    }

    /// Randomised three-way differential test for coarse resolution: the
    /// 64 ns wheel, the 64 ns heap, and an exact 1 ns wheel fed
    /// pre-quantised timestamps must produce identical `(time, event)`
    /// sequences — same dispatch counts, FIFO/seq order preserved within
    /// each quantised slot — across all three tiers (near ring, far ring,
    /// overflow heap).
    #[test]
    fn coarse_wheel_heap_and_prequantised_exact_wheel_agree() {
        use crate::rng::SimRng;
        use crate::time::Resolution;
        let res = Resolution::from_nanos(64).unwrap();
        let mut rng = SimRng::new(0xC0A2_5E64);
        let mut heap: BinaryHeapQueue<u32> = BinaryHeapQueue::with_resolution(res);
        let mut coarse: TimingWheel<u32> = TimingWheel::with_resolution(res);
        let mut exact: TimingWheel<u32> = TimingWheel::new();
        let mut buf: Vec<u32> = Vec::new();
        let mut now = 0u64;
        let mut id = 0u32;
        for _ in 0..200_000 {
            if rng.chance(0.55) || heap.is_empty() {
                let delay = match rng.next_below(10) {
                    0 => 0,
                    1..=5 => rng.next_below(2_000),
                    6 | 7 => rng.next_below(200_000),
                    8 => rng.next_below(20_000_000),
                    _ => rng.next_below(200_000_000), // overflow-heap tier
                };
                let t = SimTime::from_nanos(now + delay);
                heap.push(t, id);
                coarse.push(t, id);
                // The exact wheel is the semantic reference: quantising
                // at push time must equal quantising before the push.
                exact.push(res.ceil_time(t), id);
                id += 1;
            } else {
                buf.clear();
                let t = coarse.pop_slot(&mut buf).expect("queue is non-empty");
                assert_eq!(t.as_nanos() % 64, 0, "coarse pops land on the grid");
                for &v in &buf {
                    assert_eq!(heap.pop(), Some((t, v)), "coarse wheel vs heap diverged");
                    assert_eq!(
                        exact.pop(),
                        Some((t, v)),
                        "coarse wheel vs pre-quantised exact wheel diverged"
                    );
                }
                now = t.as_nanos();
            }
        }
        assert_eq!(coarse.peek_time(), heap.peek_time());
        assert_eq!(coarse.peek_time(), exact.peek_time());
        loop {
            buf.clear();
            let Some(t) = coarse.pop_slot(&mut buf) else {
                break;
            };
            for &v in &buf {
                assert_eq!(heap.pop(), Some((t, v)));
                assert_eq!(exact.pop(), Some((t, v)));
            }
        }
        assert_eq!(heap.pop(), None);
        assert_eq!(coarse.scheduled_total(), heap.scheduled_total());
        assert_eq!(coarse.dispatched_total(), heap.dispatched_total());
        assert_eq!(coarse.dispatched_total(), exact.dispatched_total());
    }
}
