//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by timestamp; events with equal timestamps pop in
//! insertion (FIFO) order so the simulation is fully deterministic — a plain
//! `BinaryHeap` over `(time, payload)` would break ties arbitrarily.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap and we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedule `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events dispatched over the queue's lifetime.
    pub fn dispatched_total(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_nanos(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn counters_track_lifetime_totals() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.dispatched_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(42), ());
        q.push(SimTime::from_nanos(17), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(17)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(17));
    }
}
