//! # hostcc-sim
//!
//! Deterministic discrete-event simulation engine underpinning the `hostcc`
//! host-interconnect congestion laboratory.
//!
//! The crate provides exactly the primitives a packet-level simulator needs
//! and nothing else:
//!
//! * [`SimTime`]/[`SimDuration`] — integer-nanosecond simulated time;
//! * [`EventQueue`] — a deterministic (FIFO tie-break) min-priority queue:
//!   an alias for the [`TimingWheel`], with [`BinaryHeapQueue`] kept as the
//!   reference implementation behind the shared [`Queue`] trait;
//! * [`Engine`]/[`World`]/[`Scheduler`] — the event loop, generic over the
//!   queue implementation;
//! * [`ParallelEngine`]/[`ShardHost`]/[`Envelope`] — deterministic
//!   conservative parallel execution of many coupled sub-simulations in
//!   lookahead-bounded epochs;
//! * [`SimRng`] — a seedable, stable xoshiro256** generator;
//! * statistics: [`Running`], [`RateMeter`], [`Ewma`], [`TimeSeries`],
//!   [`Histogram`];
//! * pacing: [`TokenBucket`], [`SerialLink`].
//!
//! Everything is synchronous and allocation-light, in the spirit of
//! event-driven network stacks: components are explicit state machines that
//! the engine polls by delivering events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod hist;
mod pacer;
mod parallel;
mod queue;
mod rng;
mod snap;
mod stats;
mod time;
mod wheel;

pub use engine::{DispatchProfile, Engine, RunOutcome, Scheduler, World};
pub use hist::Histogram;
pub use pacer::{SerialLink, TokenBucket};
pub use parallel::{Envelope, ParallelEngine, ShardHost};
pub use queue::{BinaryHeapQueue, Queue};
pub use rng::{stream_seed, SimRng, SplitMix64};
pub use snap::{
    fnv1a_64, SnapError, SnapQueue, SnapReader, SnapWriter, SNAP_HEADER_LEN, SNAP_MAGIC,
    SNAP_VERSION,
};
pub use wheel::TimingWheel;

/// The engine's default event queue: the timing wheel.
pub type EventQueue<E> = TimingWheel<E>;
pub use stats::{Ewma, RateMeter, Running, TimeSeries};
pub use time::{Resolution, SimDuration, SimTime, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
