//! Direct cache access (Intel DDIO) modelling.
//!
//! Footnote 2 of the paper: "If Direct Cache Access (e.g., DDIO) is
//! enabled, data is first moved to the CPU cache; this may result in
//! eviction of existing cache contents to the host memory over the same
//! memory bus." DDIO steers DMA writes into a small slice of the LLC
//! (typically two ways, a few MiB). Whether that *saves* memory-bus
//! bandwidth depends entirely on buffer reuse: if the driver's receive
//! buffers cycle through a working set larger than the DDIO slice, every
//! written line is evicted to DRAM before the CPU (or the next DMA)
//! touches it again — "leaky DMA" — and the bus sees the full write
//! stream anyway, plus collateral evictions of application cache lines.
//! Only a *hot*, small buffer pool (e.g. on-NIC memory or aggressive
//! buffer reuse) lets DDIO absorb the traffic.

/// DDIO configuration.
#[derive(Debug, Clone)]
pub struct DdioConfig {
    /// Whether direct cache access is enabled (Intel platforms: default on).
    pub enabled: bool,
    /// Capacity of the LLC slice DDIO may allocate into, bytes
    /// (typically 2 of 11 ways of a ~30-40 MiB LLC ≈ a few MiB).
    pub capacity_bytes: u64,
    /// Extra bus traffic per leaked byte from collateral evictions of
    /// application cache lines (0.0 = evictions displace only dead lines).
    pub collateral_factor: f64,
}

impl Default for DdioConfig {
    fn default() -> Self {
        DdioConfig {
            enabled: true,
            capacity_bytes: 4 << 20,
            collateral_factor: 0.0,
        }
    }
}

impl DdioConfig {
    /// Fraction of DMA-written bytes that reach DRAM, given the buffer
    /// working set the DMA stream cycles through.
    ///
    /// * DDIO disabled: everything goes to memory (1.0).
    /// * Working set within the DDIO slice: writes coalesce in cache (0.0).
    /// * Larger: `1 - capacity/ws` of lines are evicted before reuse.
    pub fn leak_fraction(&self, working_set_bytes: u64) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        if working_set_bytes <= self.capacity_bytes {
            return 0.0;
        }
        1.0 - self.capacity_bytes as f64 / working_set_bytes as f64
    }

    /// Multiplier on the DMA write stream's memory-bus demand, including
    /// collateral evictions.
    pub fn write_traffic_factor(&self, working_set_bytes: u64) -> f64 {
        let leak = self.leak_fraction(working_set_bytes);
        leak * (1.0 + self.collateral_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ddio_passes_everything_to_memory() {
        let d = DdioConfig {
            enabled: false,
            ..Default::default()
        };
        assert_eq!(d.leak_fraction(1), 1.0);
        assert_eq!(d.leak_fraction(1 << 30), 1.0);
    }

    #[test]
    fn hot_working_set_is_absorbed() {
        let d = DdioConfig::default();
        assert_eq!(d.leak_fraction(1 << 20), 0.0, "1 MiB fits the slice");
        assert_eq!(d.leak_fraction(4 << 20), 0.0, "exactly the slice");
    }

    #[test]
    fn large_working_set_leaks_almost_everything() {
        let d = DdioConfig::default();
        // The paper's testbed: 12 threads x 12 MiB of cycling buffers.
        let leak = d.leak_fraction(144 << 20);
        assert!(leak > 0.95, "144 MiB working set must leak: {leak}");
    }

    #[test]
    fn leak_grows_monotonically_with_working_set() {
        let d = DdioConfig::default();
        let mut last = 0.0;
        for mib in [1u64, 4, 8, 16, 64, 256] {
            let leak = d.leak_fraction(mib << 20);
            assert!(leak >= last);
            last = leak;
        }
        assert!(last < 1.0, "leak approaches but never reaches 1");
    }

    #[test]
    fn collateral_inflates_write_traffic() {
        let d = DdioConfig {
            collateral_factor: 0.5,
            ..Default::default()
        };
        let f = d.write_traffic_factor(144 << 20);
        let leak = d.leak_fraction(144 << 20);
        assert!((f - leak * 1.5).abs() < 1e-12);
    }
}
