//! The load-latency curve of a closed-loop memory system.
//!
//! §3.2: "as the offered load to the memory bus reaches closer to the
//! maximum achievable memory bandwidth, similar to any load-latency curve
//! for a closed-loop system, the service times for PCIe write requests will
//! also increase." Queueing-theoretic 1/(1-ρ) forms blow up discontinuously
//! the moment offered load crosses capacity, which no real memory
//! controller exhibits (row buffers, bank parallelism and arbitration
//! smooth the transition); measured DRAM load-latency curves ramp smoothly
//! from the unloaded latency to a few-hundred-ns plateau. We model that
//! with a logistic ramp centred slightly past saturation (mild transient
//! oversubscription is absorbed by banking and write buffers):
//! `factor(ρ) = 1 + (max-1) / (1 + exp(-(ρ - center)/width))`.

/// Utilisation-dependent latency model.
#[derive(Debug, Clone, Copy)]
pub struct LoadLatencyCurve {
    /// Unloaded latency, nanoseconds.
    pub base_ns: f64,
    /// Centre of the logistic ramp (offered-utilisation units).
    pub center: f64,
    /// Width of the logistic ramp around the centre (in units of ρ).
    pub width: f64,
    /// Latency inflation factor approached under deep oversubscription.
    pub max_factor: f64,
}

impl LoadLatencyCurve {
    /// Latency in nanoseconds at offered load `rho` (1.0 = offered load
    /// equals achievable bandwidth; values above 1 are meaningful and
    /// push latency toward the plateau).
    pub fn latency_ns(&self, rho: f64) -> f64 {
        self.base_ns * self.factor(rho)
    }

    /// Inflation factor relative to the unloaded latency.
    pub fn factor(&self, rho: f64) -> f64 {
        let rho = rho.max(0.0);
        let ramp = 1.0 / (1.0 + (-(rho - self.center) / self.width).exp());
        1.0 + (self.max_factor - 1.0) * ramp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> LoadLatencyCurve {
        LoadLatencyCurve {
            base_ns: 90.0,
            center: 1.15,
            width: 0.15,
            max_factor: 9.5,
        }
    }

    #[test]
    fn unloaded_latency_is_near_base() {
        let l = curve().latency_ns(0.0);
        assert!((l - 90.0).abs() < 1.0, "unloaded {l} should be ~base");
    }

    #[test]
    fn latency_is_monotone_in_load() {
        let c = curve();
        let mut last = 0.0;
        for i in 0..=300 {
            let l = c.latency_ns(i as f64 / 200.0);
            assert!(l >= last, "latency must not decrease with load");
            last = l;
        }
    }

    #[test]
    fn moderate_load_barely_inflates() {
        let c = curve();
        assert!(c.factor(0.3) < 1.05, "factor at rho=0.3: {}", c.factor(0.3));
        assert!(c.factor(0.5) < 1.12, "factor at rho=0.5: {}", c.factor(0.5));
        assert!(c.factor(0.7) < 1.5, "factor at rho=0.7: {}", c.factor(0.7));
    }

    #[test]
    fn saturation_ramps_smoothly_to_plateau() {
        let c = curve();
        // At the ramp centre: halfway up.
        let mid = 1.0 + (c.max_factor - 1.0) / 2.0;
        assert!((c.factor(c.center) - mid).abs() < 1e-9);
        // Mild oversubscription inflates but does not saturate.
        assert!(c.factor(1.05) > 1.5);
        assert!(c.factor(1.05) < 0.6 * c.max_factor);
        // Deep oversubscription approaches (never exceeds) the plateau.
        assert!(c.factor(2.5) > 0.95 * c.max_factor);
        assert!(c.factor(10.0) <= c.max_factor + 1e-9);
        // The transition is smooth: no more than ~25% of the ramp within
        // any 0.05-rho step near the knee.
        for i in 0..40 {
            let r = 0.8 + i as f64 * 0.05;
            let step = c.factor(r + 0.05) - c.factor(r);
            assert!(step < 0.25 * (c.max_factor - 1.0), "cliff at rho={r}");
        }
    }

    #[test]
    fn negative_load_clamped() {
        let c = curve();
        assert!(c.factor(-1.0) >= 1.0);
        assert!(c.factor(-1.0) <= c.factor(0.0));
    }
}
