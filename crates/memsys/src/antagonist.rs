//! A STREAM-like memory-bandwidth antagonist.
//!
//! §3.2 antagonises the memory bus with one STREAM instance per physical
//! core, up to 15 cores; the paper reports ~90 GB/s of achievable STREAM
//! bandwidth per NUMA node (65 GB/s reads + 25 GB/s writes). We model the
//! antagonist as a CPU-class agent whose *offered* demand grows with core
//! count; the *achieved* bandwidth is whatever the memory controller
//! allocates, so the sublinear per-core scaling the paper observes from ~6
//! cores emerges from the capacity clamp rather than being baked in.

use crate::controller::{AgentClass, AgentId, MemorySystem};

/// Antagonist configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Offered demand per core, bytes/sec. A single Skylake core running
    /// STREAM sustains ~10 GB/s of combined read+write traffic.
    pub per_core_bytes_per_sec: f64,
    /// Fraction of the antagonist's traffic that is reads (~65/90).
    pub read_fraction: f64,
    /// Fraction of the antagonist's traffic that lands on the NIC-local
    /// NUMA node's memory controller. 1.0 = the paper's setup (antagonist
    /// pinned to the NIC's node). §4 proposes "scheduling applications on
    /// NUMA nodes different from the one where the NIC is connected": a
    /// remote placement leaves only cross-socket spill (snoops, shared
    /// pages) on the local node.
    pub local_fraction: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            per_core_bytes_per_sec: 10e9,
            read_fraction: 65.0 / 90.0,
            local_fraction: 1.0,
        }
    }
}

/// The antagonist: a bundle of STREAM cores registered as one CPU agent.
#[derive(Debug)]
pub struct StreamAntagonist {
    config: StreamConfig,
    agent: AgentId,
    cores: u32,
}

impl StreamAntagonist {
    /// Register the antagonist with the memory system (initially 0 cores).
    pub fn new(mem: &mut MemorySystem, config: StreamConfig) -> Self {
        let agent = mem.register_agent("stream-antagonist", AgentClass::Cpu);
        StreamAntagonist {
            config,
            agent,
            cores: 0,
        }
    }

    /// Set the number of antagonist cores and publish the new demand.
    pub fn set_cores(&mut self, mem: &mut MemorySystem, cores: u32) {
        self.cores = cores;
        mem.set_demand(self.agent, self.offered_demand());
    }

    /// Active antagonist cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Offered (not necessarily achieved) demand on the NIC-local NUMA
    /// node, bytes/sec.
    pub fn offered_demand(&self) -> f64 {
        self.cores as f64
            * self.config.per_core_bytes_per_sec
            * self.config.local_fraction.clamp(0.0, 1.0)
    }

    /// Achieved bandwidth under the current allocation, bytes/sec.
    pub fn achieved(&self, mem: &mut MemorySystem) -> f64 {
        mem.allocation(self.agent)
    }

    /// Achieved (read, write) bandwidth split, bytes/sec.
    pub fn achieved_read_write(&self, mem: &mut MemorySystem) -> (f64, f64) {
        let total = self.achieved(mem);
        (
            total * self.config.read_fraction,
            total * (1.0 - self.config.read_fraction),
        )
    }

    /// Serialize the evolving state (active core count). The agent handle
    /// and config come from constructor replay.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u32(self.cores);
    }

    /// Restore the core count into an antagonist re-registered with the same
    /// memory system. The published demand is restored separately via
    /// [`MemorySystem::load_state`].
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        self.cores = r.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemSysConfig;

    #[test]
    fn zero_cores_zero_demand() {
        let mut mem = MemorySystem::new(MemSysConfig::default());
        let s = StreamAntagonist::new(&mut mem, StreamConfig::default());
        assert_eq!(s.offered_demand(), 0.0);
        assert_eq!(s.achieved(&mut mem), 0.0);
    }

    #[test]
    fn few_cores_scale_linearly() {
        let mut mem = MemorySystem::new(MemSysConfig::default());
        let mut s = StreamAntagonist::new(&mut mem, StreamConfig::default());
        s.set_cores(&mut mem, 2);
        let two = s.achieved(&mut mem);
        s.set_cores(&mut mem, 4);
        let four = s.achieved(&mut mem);
        assert!((four / two - 2.0).abs() < 1e-6, "below capacity: linear");
    }

    #[test]
    fn many_cores_saturate_at_achievable_bandwidth() {
        let mut mem = MemorySystem::new(MemSysConfig::default());
        let mut s = StreamAntagonist::new(&mut mem, StreamConfig::default());
        s.set_cores(&mut mem, 15);
        let achieved = s.achieved(&mut mem);
        let cap = mem.config().achievable_bytes_per_sec();
        assert!(achieved <= cap * (1.0 + 1e-9));
        assert!(
            achieved > 0.95 * cap,
            "15 cores should saturate: {achieved} of {cap}"
        );
        // Per-core achieved bandwidth is now well below the solo figure.
        let per_core = achieved / 15.0;
        assert!(per_core < 10e9 * 0.75);
    }

    #[test]
    fn read_write_split_matches_config() {
        let mut mem = MemorySystem::new(MemSysConfig::default());
        let mut s = StreamAntagonist::new(&mut mem, StreamConfig::default());
        s.set_cores(&mut mem, 4);
        let (r, w) = s.achieved_read_write(&mut mem);
        assert!((r / (r + w) - 65.0 / 90.0).abs() < 1e-9);
        assert!((r + w - s.achieved(&mut mem)).abs() < 1.0);
    }

    #[test]
    fn remote_numa_placement_spares_the_local_node() {
        let mut mem = MemorySystem::new(MemSysConfig::default());
        let mut local = StreamAntagonist::new(&mut mem, StreamConfig::default());
        local.set_cores(&mut mem, 15);
        let local_demand = local.offered_demand();

        let mut mem2 = MemorySystem::new(MemSysConfig::default());
        let mut remote = StreamAntagonist::new(
            &mut mem2,
            StreamConfig {
                local_fraction: 0.15,
                ..StreamConfig::default()
            },
        );
        remote.set_cores(&mut mem2, 15);
        assert!(
            remote.offered_demand() < local_demand * 0.2,
            "remote placement leaves only spill traffic locally"
        );
        assert!(mem2.offered_utilization() < 0.5);
    }

    #[test]
    fn antagonist_inflates_nic_dma_latency() {
        // The Fig. 6 mechanism: the NIC's modest demand survives max-min
        // arbitration, but per-access latency explodes once the offered
        // load saturates the bus — and that latency is what throttles the
        // credit-limited DMA pipeline.
        let mut mem = MemorySystem::new(MemSysConfig::default());
        let nic = mem.register_agent("nic", AgentClass::Io);
        mem.set_demand(nic, 15e9); // ~11.8 GB/s writes + 3.3 GB/s reads
        let mut s = StreamAntagonist::new(&mut mem, StreamConfig::default());

        s.set_cores(&mut mem, 4);
        let idle_latency = mem.access_latency_ns();
        let with_4 = mem.allocation(nic);
        assert!((with_4 - 15e9).abs() < 1e7, "plenty of headroom at 4 cores");

        s.set_cores(&mut mem, 15);
        // Max-min keeps the small NIC demand satisfied in *bandwidth*...
        let with_15 = mem.allocation(nic);
        assert!(with_15 > 14e9, "max-min floor protects the NIC: {with_15}");
        // ...but the offered load is now > capacity, so latency saturates.
        assert!(mem.offered_utilization() > 1.0);
        let loaded_latency = mem.access_latency_ns();
        assert!(
            loaded_latency > 4.0 * idle_latency,
            "latency must blow up: {idle_latency} -> {loaded_latency}"
        );
    }
}
