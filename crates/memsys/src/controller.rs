//! The memory controller: bandwidth arbitration and latency export.
//!
//! Components (the NIC's root-complex pipeline, receiver-thread copies, the
//! STREAM antagonist) register as *agents* and publish their offered demand
//! in bytes/sec. The controller resolves the allocation with weighted
//! max-min fairness — CPU agents carry a higher weight, reproducing §3.2's
//! observation that under contention "CPUs are able to acquire a larger
//! fraction of memory bus bandwidth than NIC" — and exports a
//! utilisation-dependent access latency that the DMA pipeline folds into
//! every PCIe write and page-table walk.

use crate::config::MemSysConfig;
use crate::curve::LoadLatencyCurve;

/// What kind of traffic an agent generates (determines arbitration weight).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentClass {
    /// CPU-originated loads/stores (applications, copies, STREAM).
    Cpu,
    /// Device DMA through the root complex (the NIC).
    Io,
}

/// Handle to a registered agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentId(usize);

#[derive(Debug, Clone)]
struct Agent {
    #[allow(dead_code)] // retained for diagnostics/debug output
    name: &'static str,
    class: AgentClass,
    demand: f64,
    allocation: f64,
}

/// The per-NUMA-node memory subsystem.
#[derive(Debug)]
pub struct MemorySystem {
    config: MemSysConfig,
    curve: LoadLatencyCurve,
    agents: Vec<Agent>,
    dirty: bool,
    /// Memoised `access_latency_ns` result. Demand only changes at memory
    /// ticks, but the latency is charged on every DMA in between — caching
    /// skips the sigmoid (`exp`) on the unchanged-demand fast path.
    latency_cache: Option<f64>,
    /// Bumped whenever an input of the latency model changes (agent set or
    /// any demand). Callers that derive values from `access_latency_ns`
    /// can cache them keyed on this epoch instead of re-deriving per DMA.
    epoch: u64,
}

impl MemorySystem {
    /// Build from a configuration.
    pub fn new(config: MemSysConfig) -> Self {
        let curve = LoadLatencyCurve {
            base_ns: config.base_latency_ns,
            center: config.latency_ramp_center,
            width: config.latency_ramp_width,
            max_factor: config.max_latency_factor,
        };
        MemorySystem {
            config,
            curve,
            agents: Vec::new(),
            dirty: false,
            latency_cache: None,
            epoch: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemSysConfig {
        &self.config
    }

    /// Register a traffic source. Demand starts at zero.
    pub fn register_agent(&mut self, name: &'static str, class: AgentClass) -> AgentId {
        self.agents.push(Agent {
            name,
            class,
            demand: 0.0,
            allocation: 0.0,
        });
        self.dirty = true;
        self.latency_cache = None;
        self.epoch += 1;
        AgentId(self.agents.len() - 1)
    }

    /// Publish an agent's offered demand in bytes/sec.
    pub fn set_demand(&mut self, id: AgentId, bytes_per_sec: f64) {
        debug_assert!(bytes_per_sec >= 0.0, "negative demand");
        let a = &mut self.agents[id.0];
        if (a.demand - bytes_per_sec).abs() > f64::EPSILON {
            a.demand = bytes_per_sec.max(0.0);
            self.dirty = true;
            self.latency_cache = None;
            self.epoch += 1;
        }
    }

    /// Monotone counter of latency-model input changes. Two calls to
    /// `access_latency_ns` bracketed by equal epochs return the same
    /// value, so derived quantities cached against this epoch stay valid.
    pub fn demand_epoch(&self) -> u64 {
        self.epoch
    }

    /// Current offered demand of an agent.
    pub fn demand(&self, id: AgentId) -> f64 {
        self.agents[id.0].demand
    }

    fn weight_of(&self, class: AgentClass) -> f64 {
        match class {
            AgentClass::Cpu => self.config.cpu_weight,
            AgentClass::Io => 1.0,
        }
    }

    /// Weighted max-min (water-filling) allocation of the achievable
    /// bandwidth across agents. Agents never receive more than they ask.
    fn recompute(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let capacity = self.config.achievable_bytes_per_sec();
        let total: f64 = self.agents.iter().map(|a| a.demand).sum();
        if total <= capacity {
            for a in &mut self.agents {
                a.allocation = a.demand;
            }
            return;
        }
        // Water-filling: grow the fair share until capacity is exhausted.
        let mut unsatisfied: Vec<usize> = (0..self.agents.len())
            .filter(|&i| self.agents[i].demand > 0.0)
            .collect();
        for a in &mut self.agents {
            a.allocation = 0.0;
        }
        let mut remaining = capacity;
        while !unsatisfied.is_empty() && remaining > 1.0 {
            let weight_sum: f64 = unsatisfied
                .iter()
                .map(|&i| self.weight_of(self.agents[i].class))
                .sum();
            // The smallest normalised headroom decides this round's level.
            let mut level = f64::INFINITY;
            for &i in &unsatisfied {
                let a = &self.agents[i];
                let w = self.weight_of(a.class);
                let headroom = (a.demand - a.allocation) / w;
                level = level.min(headroom);
            }
            let round_max = remaining / weight_sum;
            let level = level.min(round_max);
            for &i in &unsatisfied {
                let w = self.weight_of(self.agents[i].class);
                self.agents[i].allocation += level * w;
                remaining -= level * w;
            }
            // Retain agents still below their demand (with tolerance).
            unsatisfied.retain(|&i| {
                let a = &self.agents[i];
                a.allocation + 1.0 < a.demand
            });
            if level >= round_max {
                break; // capacity exhausted this round
            }
        }
    }

    /// Bandwidth granted to an agent, bytes/sec.
    pub fn allocation(&mut self, id: AgentId) -> f64 {
        self.recompute();
        self.agents[id.0].allocation
    }

    /// Total granted bandwidth across agents, bytes/sec.
    pub fn total_allocated(&mut self) -> f64 {
        self.recompute();
        self.agents.iter().map(|a| a.allocation).sum()
    }

    /// Bus utilisation ρ = allocated / achievable (never exceeds 1).
    pub fn utilization(&mut self) -> f64 {
        self.total_allocated() / self.config.achievable_bytes_per_sec()
    }

    /// Offered load relative to achievable capacity (may exceed 1 when the
    /// bus is oversubscribed). Queued-but-unserved demand still inflates
    /// access latency, so the latency curve is driven by this figure.
    pub fn offered_utilization(&self) -> f64 {
        let total: f64 = self.agents.iter().map(|a| a.demand).sum();
        total / self.config.achievable_bytes_per_sec()
    }

    /// Per-access latency (ns) at the current *offered* load. This is the
    /// figure charged to page-table walks and folded into the per-DMA
    /// service time; §3.2's load-latency mechanism.
    pub fn access_latency_ns(&mut self) -> f64 {
        if let Some(ns) = self.latency_cache {
            return ns;
        }
        let rho = self.offered_utilization();
        let ns = self.curve.latency_ns(rho);
        self.latency_cache = Some(ns);
        ns
    }

    /// The latency curve (for model cross-validation and plots).
    pub fn curve(&self) -> LoadLatencyCurve {
        self.curve
    }

    /// Serialize the evolving arbitration state: each agent's class tag and
    /// published demand, plus the model epoch. Allocations and the latency
    /// memo are deterministic functions of demand and are recomputed after
    /// restore rather than stored.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.usize(self.agents.len());
        for a in &self.agents {
            w.u8(match a.class {
                AgentClass::Cpu => 0,
                AgentClass::Io => 1,
            });
            w.f64(a.demand);
        }
        w.u64(self.epoch);
    }

    /// Restore demand state into a memory system rebuilt from the same
    /// configuration (same agents registered in the same order). The agent
    /// roster must match structurally; on any mismatch `self` is untouched.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let n = r.len(9)?;
        if n != self.agents.len() {
            return Err(SnapError::Corrupt("memory agent count mismatch"));
        }
        let mut demands = Vec::with_capacity(n);
        for a in &self.agents {
            let class = match r.u8()? {
                0 => AgentClass::Cpu,
                1 => AgentClass::Io,
                _ => return Err(SnapError::Corrupt("agent class out of range")),
            };
            if class != a.class {
                return Err(SnapError::Corrupt("memory agent class mismatch"));
            }
            let demand = r.f64()?;
            if !demand.is_finite() || demand < 0.0 {
                return Err(SnapError::Corrupt("invalid memory demand"));
            }
            demands.push(demand);
        }
        let epoch = r.u64()?;
        for (a, d) in self.agents.iter_mut().zip(demands) {
            a.demand = d;
            a.allocation = 0.0;
        }
        self.dirty = true;
        self.latency_cache = None;
        self.epoch = epoch;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemSysConfig::default())
    }

    #[test]
    fn under_capacity_everyone_gets_their_demand() {
        let mut m = sys();
        let nic = m.register_agent("nic", AgentClass::Io);
        let app = m.register_agent("app", AgentClass::Cpu);
        m.set_demand(nic, 15e9);
        m.set_demand(app, 20e9);
        assert!((m.allocation(nic) - 15e9).abs() < 1.0);
        assert!((m.allocation(app) - 20e9).abs() < 1.0);
        let rho = m.utilization();
        assert!((rho - 35e9 / m.config().achievable_bytes_per_sec()).abs() < 1e-9);
    }

    #[test]
    fn over_capacity_cpu_wins_share() {
        let mut m = sys();
        let nic = m.register_agent("nic", AgentClass::Io);
        let cpu = m.register_agent("stream", AgentClass::Cpu);
        // Both want the whole bus.
        let cap = m.config().achievable_bytes_per_sec();
        m.set_demand(nic, cap);
        m.set_demand(cpu, cap);
        let nic_alloc = m.allocation(nic);
        let cpu_alloc = m.allocation(cpu);
        // Weighted shares: CPU weight 2, NIC weight 1 -> 2:1 split.
        assert!(
            (cpu_alloc / nic_alloc - 2.0).abs() < 0.01,
            "cpu {cpu_alloc} nic {nic_alloc}"
        );
        assert!((nic_alloc + cpu_alloc - cap).abs() < cap * 1e-6);
    }

    #[test]
    fn small_demand_fully_satisfied_even_under_contention() {
        // Max-min property: an agent asking for little gets all of it.
        let mut m = sys();
        let small = m.register_agent("small", AgentClass::Io);
        let hog = m.register_agent("hog", AgentClass::Cpu);
        let cap = m.config().achievable_bytes_per_sec();
        m.set_demand(small, 1e9);
        m.set_demand(hog, 10.0 * cap);
        assert!((m.allocation(small) - 1e9).abs() < 1e7);
        assert!((m.allocation(hog) - (cap - 1e9)).abs() < cap * 1e-3);
    }

    #[test]
    fn total_never_exceeds_capacity() {
        let mut m = sys();
        let ids: Vec<_> = (0..8)
            .map(|i| {
                m.register_agent(
                    "a",
                    if i % 2 == 0 {
                        AgentClass::Cpu
                    } else {
                        AgentClass::Io
                    },
                )
            })
            .collect();
        for (i, id) in ids.iter().enumerate() {
            m.set_demand(*id, (i as f64 + 1.0) * 20e9);
        }
        let cap = m.config().achievable_bytes_per_sec();
        assert!(m.total_allocated() <= cap * (1.0 + 1e-9));
        assert!(m.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn latency_rises_with_contention() {
        let mut m = sys();
        let nic = m.register_agent("nic", AgentClass::Io);
        m.set_demand(nic, 10e9);
        let idle = m.access_latency_ns();
        let cpu = m.register_agent("stream", AgentClass::Cpu);
        m.set_demand(cpu, 100e9);
        let loaded = m.access_latency_ns();
        assert!(
            loaded > idle * 2.0,
            "saturated latency {loaded} should dwarf idle {idle}"
        );
    }

    #[test]
    fn zero_demand_agents_get_zero() {
        let mut m = sys();
        let a = m.register_agent("idle", AgentClass::Cpu);
        let b = m.register_agent("busy", AgentClass::Io);
        m.set_demand(b, 5e9);
        assert_eq!(m.allocation(a), 0.0);
        assert!((m.allocation(b) - 5e9).abs() < 1.0);
    }

    #[test]
    fn demand_epoch_tracks_latency_inputs() {
        let mut m = sys();
        let e0 = m.demand_epoch();
        let a = m.register_agent("a", AgentClass::Cpu);
        assert!(m.demand_epoch() > e0, "registration changes the model");
        let e1 = m.demand_epoch();
        m.set_demand(a, 5e9);
        assert!(m.demand_epoch() > e1, "new demand changes the model");
        let e2 = m.demand_epoch();
        m.set_demand(a, 5e9);
        assert_eq!(m.demand_epoch(), e2, "unchanged demand keeps the epoch");
        let before = m.access_latency_ns();
        assert_eq!(m.demand_epoch(), e2, "reading latency keeps the epoch");
        assert_eq!(m.access_latency_ns(), before);
    }

    #[test]
    fn demand_update_recomputes() {
        let mut m = sys();
        let a = m.register_agent("a", AgentClass::Cpu);
        m.set_demand(a, 5e9);
        assert!((m.allocation(a) - 5e9).abs() < 1.0);
        m.set_demand(a, 7e9);
        assert!((m.allocation(a) - 7e9).abs() < 1.0);
    }
}
