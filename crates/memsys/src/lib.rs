//! # hostcc-memsys
//!
//! The memory-subsystem model: per-NUMA-node DDR capacity, a load-latency
//! curve for the contended bus, weighted arbitration between CPU agents
//! and NIC DMA, and a STREAM-style antagonist. This is the second root
//! cause of host interconnect congestion studied by the paper (§3.2): when
//! applications saturate the memory bus, per-DMA service time inflates,
//! PCIe credits return slowly, and the NIC buffer fills even though the
//! access link is far from saturated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod antagonist;
mod config;
mod controller;
mod counters;
mod curve;
mod ddio;

pub use antagonist::{StreamAntagonist, StreamConfig};
pub use config::MemSysConfig;
pub use controller::{AgentClass, AgentId, MemorySystem};
pub use curve::LoadLatencyCurve;
pub use ddio::DdioConfig;
