//! Memory-subsystem configuration.

/// DDR channel and controller parameters for one NUMA node.
///
/// Defaults reproduce the paper's testbed: 6 DDR4-2400 channels per NUMA
/// node → 115.2 GB/s theoretical, ~90 GB/s achievable by STREAM.
#[derive(Debug, Clone)]
pub struct MemSysConfig {
    /// Number of DDR channels attached to this NUMA node.
    pub channels: u32,
    /// Data rate per channel in mega-transfers/sec (DDR4-2400 → 2400).
    pub channel_mts: f64,
    /// Bus width per channel in bytes (DDR4 → 8).
    pub channel_width_bytes: u32,
    /// Fraction of theoretical bandwidth that is practically achievable
    /// (row misses, refresh, turnarounds). STREAM reaches ~90/115.2 ≈ 0.78.
    pub achievable_fraction: f64,
    /// Unloaded DRAM access latency, nanoseconds.
    pub base_latency_ns: f64,
    /// Centre of the logistic load-latency ramp, in offered-utilisation
    /// units (slightly past 1.0: banking and write buffers absorb mild
    /// transient oversubscription).
    pub latency_ramp_center: f64,
    /// Width of the logistic load-latency ramp (in units of offered
    /// utilisation); smaller = sharper knee.
    pub latency_ramp_width: f64,
    /// Latency inflation factor approached under deep oversubscription
    /// (measured DRAM loaded latencies plateau at several hundred ns,
    /// i.e. single-digit multiples of the unloaded latency).
    pub max_latency_factor: f64,
    /// Arbitration weight of CPU-originated traffic relative to NIC DMA
    /// (> 1: CPUs acquire a larger share under contention, the §3.2
    /// observation about FCFS controllers favouring the many-threaded CPU).
    pub cpu_weight: f64,
}

impl Default for MemSysConfig {
    fn default() -> Self {
        MemSysConfig {
            channels: 6,
            channel_mts: 2400.0,
            channel_width_bytes: 8,
            achievable_fraction: 0.78,
            base_latency_ns: 90.0,
            latency_ramp_center: 1.15,
            latency_ramp_width: 0.15,
            max_latency_factor: 9.5,
            cpu_weight: 2.0,
        }
    }
}

impl MemSysConfig {
    /// Theoretical peak bandwidth in bytes/sec (115.2 GB/s for defaults).
    pub fn theoretical_bytes_per_sec(&self) -> f64 {
        self.channels as f64 * self.channel_mts * 1e6 * self.channel_width_bytes as f64
    }

    /// Practically achievable bandwidth in bytes/sec (~90 GB/s default).
    pub fn achievable_bytes_per_sec(&self) -> f64 {
        self.theoretical_bytes_per_sec() * self.achievable_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_testbed() {
        let c = MemSysConfig::default();
        let theo = c.theoretical_bytes_per_sec();
        assert!((theo - 115.2e9).abs() < 1e6, "theoretical {theo}");
        let ach = c.achievable_bytes_per_sec();
        assert!(
            (85e9..95e9).contains(&ach),
            "achievable {ach} should be ~90 GB/s"
        );
    }
}
