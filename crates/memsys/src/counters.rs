//! Memory-subsystem gauges for the workspace counter registry.
//!
//! Bandwidth figures are exported as integer bytes/sec (truncated) — the
//! registry holds `u64` counters; sub-byte precision is irrelevant at
//! tens of GB/s.

use crate::controller::MemorySystem;
use hostcc_trace::{CounterRegistry, CounterSource};

impl CounterSource for MemorySystem {
    fn export_counters(&self, reg: &mut CounterRegistry) {
        let cap = self.config().achievable_bytes_per_sec();
        reg.set("memsys.achievable_bytes_per_sec", cap as u64);
        reg.set(
            "memsys.offered_bytes_per_sec",
            (self.offered_utilization() * cap) as u64,
        );
        reg.set(
            "memsys.offered_utilization_per_mille",
            (self.offered_utilization() * 1000.0) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemSysConfig;
    use crate::controller::AgentClass;

    #[test]
    fn memsys_exports_capacity_and_offered_load() {
        let mut m = MemorySystem::new(MemSysConfig::default());
        let id = m.register_agent("nic", AgentClass::Io);
        m.set_demand(id, 10e9);
        let mut reg = CounterRegistry::new();
        reg.collect(&m);
        assert!(reg.lifetime("memsys.achievable_bytes_per_sec") > 0);
        assert_eq!(reg.lifetime("memsys.offered_bytes_per_sec"), 10_000_000_000);
    }
}
