//! A serialising pipe whose rate can change mid-simulation.
//!
//! The memory-commit stage of the DMA pipeline drains at whatever
//! bandwidth the memory controller currently grants the NIC, and that
//! grant changes as antagonist load comes and goes. `SerialLink` in the
//! sim crate is fixed-rate; this variant re-anchors its busy horizon
//! whenever the rate is updated.

use hostcc_sim::{Resolution, SimDuration, SimTime};

/// Serialising server with an adjustable byte rate.
#[derive(Debug, Clone)]
pub struct VariableRateLink {
    bytes_per_sec: f64,
    free_at: SimTime,
    /// Per-item serialisation times are rounded up to this grid (identity
    /// at the default exact resolution); `for_bytes` already rounds up to
    /// whole nanoseconds, so a coarse grid is the same approximation with
    /// a wider quantum.
    res: Resolution,
}

impl VariableRateLink {
    /// A pipe draining at `bytes_per_sec`.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "rate must be positive");
        VariableRateLink {
            bytes_per_sec,
            free_at: SimTime::ZERO,
            res: Resolution::EXACT,
        }
    }

    /// Quantise serialisation completion times up to `res`.
    pub fn set_resolution(&mut self, res: Resolution) {
        self.res = res;
    }

    /// Change the drain rate from `now` onwards. Work already accepted
    /// keeps its committed finish time (we don't re-plan the in-flight
    /// item; the error is bounded by one item's service time).
    pub fn set_rate(&mut self, _now: SimTime, bytes_per_sec: f64) {
        self.bytes_per_sec = bytes_per_sec.max(1.0);
    }

    /// Current drain rate, bytes/sec.
    pub fn rate(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Accept `bytes` arriving at `at`; returns the serialisation finish
    /// time (earliest-start, FIFO).
    pub fn transmit(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let start = if at > self.free_at { at } else { self.free_at };
        let ser = self
            .res
            .ceil_duration(SimDuration::for_bytes(bytes, self.bytes_per_sec));
        let done = start + ser;
        self.free_at = done;
        done
    }

    /// When the pipe goes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Backlog an arrival at `now` would wait behind.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.free_at.saturating_since(now)
    }

    /// Serialize the link's full state (rate, busy horizon, grid).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.f64(self.bytes_per_sec);
        w.time(self.free_at);
        w.u64(self.res.nanos());
    }

    /// Rebuild a link from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let bytes_per_sec = r.f64()?;
        if !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
            return Err(SnapError::Corrupt("invalid link rate"));
        }
        let free_at = r.time()?;
        let res = Resolution::from_nanos(r.u64()?)
            .ok_or(SnapError::Corrupt("invalid link resolution"))?;
        Ok(VariableRateLink {
            bytes_per_sec,
            free_at,
            res,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_fifo() {
        let mut v = VariableRateLink::new(1e9);
        assert_eq!(v.transmit(SimTime::ZERO, 1000).as_nanos(), 1000);
        assert_eq!(v.transmit(SimTime::ZERO, 1000).as_nanos(), 2000);
        assert_eq!(v.transmit(SimTime::from_nanos(5000), 1000).as_nanos(), 6000);
    }

    #[test]
    fn rate_change_affects_subsequent_items() {
        let mut v = VariableRateLink::new(1e9);
        v.transmit(SimTime::ZERO, 1000); // busy until 1000ns
        v.set_rate(SimTime::from_nanos(500), 2e9);
        // Next item starts at 1000 and takes 500ns at the new rate.
        assert_eq!(v.transmit(SimTime::ZERO, 1000).as_nanos(), 1500);
        assert_eq!(v.rate(), 2e9);
    }

    #[test]
    fn zero_rate_clamped() {
        let mut v = VariableRateLink::new(1e9);
        v.set_rate(SimTime::ZERO, 0.0);
        assert!(v.rate() >= 1.0);
    }

    #[test]
    fn coarse_resolution_quantises_each_item() {
        let mut v = VariableRateLink::new(1e9);
        v.set_resolution(Resolution::from_nanos(64).unwrap());
        // 1000 B at 1 GB/s = 1000 ns -> next 64 ns boundary = 1024; the
        // quantum applies per item, so back-to-back stays on the grid.
        assert_eq!(v.transmit(SimTime::ZERO, 1000).as_nanos(), 1024);
        assert_eq!(v.transmit(SimTime::ZERO, 1000).as_nanos(), 2048);
    }

    #[test]
    fn snapshot_roundtrip_preserves_horizon() {
        let mut v = VariableRateLink::new(1e9);
        v.set_resolution(Resolution::from_nanos(64).unwrap());
        v.transmit(SimTime::ZERO, 1000);
        v.set_rate(SimTime::ZERO, 2e9);
        let mut w = hostcc_sim::SnapWriter::new();
        v.save_state(&mut w);
        let payload = w.into_payload();
        let mut r = hostcc_sim::SnapReader::new(&payload);
        let mut back = VariableRateLink::load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.rate(), v.rate());
        assert_eq!(back.free_at(), v.free_at());
        // Same grid: the next item lands on the same quantised boundary.
        assert_eq!(
            back.transmit(SimTime::ZERO, 1000),
            v.transmit(SimTime::ZERO, 1000)
        );
    }

    #[test]
    fn corrupt_link_rate_is_typed_error() {
        let mut w = hostcc_sim::SnapWriter::new();
        w.f64(f64::NAN);
        w.time(SimTime::ZERO);
        w.u64(1);
        let payload = w.into_payload();
        let mut r = hostcc_sim::SnapReader::new(&payload);
        assert!(matches!(
            VariableRateLink::load_state(&mut r),
            Err(hostcc_sim::SnapError::Corrupt("invalid link rate"))
        ));
    }

    #[test]
    fn backlog_reports_wait() {
        let mut v = VariableRateLink::new(1e9);
        v.transmit(SimTime::ZERO, 3000);
        assert_eq!(v.backlog(SimTime::from_nanos(1000)).as_nanos(), 2000);
        assert_eq!(v.backlog(SimTime::from_nanos(9000)).as_nanos(), 0);
    }
}
