//! Full testbed configuration: every knob of the simulated cluster in one
//! place, with defaults reproducing the paper's testbed (§3).

use hostcc_fabric::WireFormat;
use hostcc_faults::FaultPlan;
use hostcc_iommu::IommuConfig;
use hostcc_mem::PageSize;
use hostcc_memsys::{DdioConfig, MemSysConfig, StreamConfig};
use hostcc_nic::NicConfig;
use hostcc_pcie::{CreditConfig, PcieLinkConfig, ReadChannelConfig};
use hostcc_sim::{Resolution, SimDuration};
use hostcc_telemetry::TelemetryConfig;
use hostcc_transport::{DctcpConfig, FlowConfig, HostAwareConfig, RpcConfig, SwiftConfig};

/// How the receiver stack recycles Rx buffers — the policy that shapes
/// DMA address locality (IOTLB working set) and cache residency (DDIO
/// working set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferRecycling {
    /// Out-of-order recycling of a long-running SNAP-style stack:
    /// scattered addresses, whole region hot (the paper's testbed).
    Scattered,
    /// Sequential ring order (fresh driver): whole region hot but
    /// prefetch-friendly page order.
    Sequential,
    /// Aggressive immediate reuse (on-NIC-memory-style small pool): tiny
    /// hot set — relieves both IOTLB and DDIO pressure.
    Hot,
}

/// Which congestion controller every flow runs.
#[derive(Debug, Clone)]
pub enum CcKind {
    /// Swift (the paper's protocol).
    Swift(SwiftConfig),
    /// Swift extended with the §4 host-aware sub-RTT occupancy response.
    HostAware(HostAwareConfig),
    /// DCTCP-style ECN baseline.
    Dctcp(DctcpConfig),
    /// Fixed window of the given size (no control).
    Fixed(f64),
}

/// Complete simulation configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Number of sender machines (paper: 40).
    pub senders: u32,
    /// Receiver threads, each pinned to a dedicated core (x-axis of
    /// Figs. 3/4).
    pub receiver_threads: u32,
    /// Congestion controller.
    pub cc: CcKind,
    /// Per-flow reliability parameters.
    pub flow: FlowConfig,
    /// Closed-loop RPC read workload (16 KB reads).
    pub rpc: RpcConfig,
    /// Optional mix of read sizes: `(read_bytes, weight)` pairs sampled
    /// per connection. Empty = every connection uses `rpc.read_bytes`
    /// (the paper's uniform 16 KB workload). A mixed fleet of small and
    /// bulk readers changes burst structure without changing the
    /// aggregate mechanisms.
    pub read_size_mix: Vec<(u32, f64)>,
    /// Wire/header overhead model (92 Gbps app ceiling at 4 KiB MTU).
    pub wire: WireFormat,
    /// Sender access link rate, bits/sec.
    pub sender_link_bps: f64,
    /// Receiver access link rate, bits/sec (paper: 100 Gbps).
    pub access_link_bps: f64,
    /// One-way propagation per fabric hop (sender→switch and
    /// switch→receiver each).
    pub hop_propagation: SimDuration,
    /// Per-sender propagation spread: sender i's hop propagation is drawn
    /// uniformly from `hop_propagation × [1-spread, 1+spread]`. Real racks
    /// have unequal cable/switch paths; without this heterogeneity the
    /// receiver cores' serialised ACK streams phase-lock all 40 senders of
    /// a thread into lockstep bursts, which no production fabric exhibits.
    pub propagation_spread: f64,
    /// Uniform jitter added to each ACK's return path (engine scheduling
    /// noise, ACK coalescing variance).
    pub ack_jitter: SimDuration,
    /// Sender duty cycle in (0, 1]: the fraction of each `duty_period`
    /// during which the workload generates traffic. 1.0 = continuously
    /// backlogged (the §3 testbed). Values below 1 model bursty
    /// production traffic: a host can average low link utilisation while
    /// still receiving line-rate bursts that overflow the NIC buffer when
    /// the interconnect drain is degraded — the Fig. 1 "drops at low
    /// utilisation" population.
    pub duty_cycle: f64,
    /// Period of the on/off traffic pattern.
    pub duty_period: SimDuration,
    /// Per-flow dispersion of the Swift fabric base target: flow targets
    /// are scaled uniformly in `[1-d, 1+d]`. Production Swift derives
    /// per-flow targets from topology (hop counts differ per path), which
    /// desynchronises decreases; identical targets make all flows cut in
    /// lockstep and the shared queue oscillate.
    pub target_dispersion: f64,
    /// Switch egress buffer, bytes.
    pub switch_buffer_bytes: u64,
    /// ECN marking threshold at the switch egress, bytes (0 = no marking).
    pub ecn_threshold_bytes: u64,
    /// NIC hardware (1 MiB input SRAM by default).
    pub nic: NicConfig,
    /// PCIe link (Gen3 x16, 256 B MPS by default → ~110 Gbps goodput).
    pub pcie: PcieLinkConfig,
    /// Posted credits advertised by the root complex. The default window
    /// is four 4 KiB writes — the `C` of the paper's throughput bound.
    pub credits: CreditConfig,
    /// Non-posted (DMA read) channel limits: descriptor fetches and ACK
    /// payload reads.
    pub read_channel: ReadChannelConfig,
    /// Whether to charge explicit PCIe read round-trips for descriptor
    /// fetches and ACK reads in the DMA pipeline. Off by default: the
    /// descriptor prefetch of a streaming NIC hides these latencies, and
    /// the calibrated `dma_base_latency` subsumes their steady-state
    /// contribution. Turning it on models a NIC without prefetch.
    pub model_dma_read_latency: bool,
    /// IOMMU (128-entry IOTLB). `iommu.enabled=false` is the paper's
    /// "IOMMU OFF" baseline.
    pub iommu: IommuConfig,
    /// Memory subsystem (6×DDR4-2400 per NUMA node).
    pub memsys: MemSysConfig,
    /// STREAM antagonist shape.
    pub stream: StreamConfig,
    /// Antagonist cores running (x-axis of Fig. 6).
    pub antagonist_cores: u32,
    /// Page size for data-buffer regions: `Size2M` = hugepages enabled
    /// (Fig. 3 default), `Size4K` = hugepages disabled (Fig. 4).
    pub data_page: PageSize,
    /// Registered Rx region per receiver thread, bytes (Fig. 5 x-axis;
    /// paper baseline 12 MiB).
    pub rx_region_bytes: u64,
    /// Rx buffer slot size, bytes. Slightly larger than the MTU payload
    /// (metadata headroom), so with 4 KiB pages most payloads straddle two
    /// pages — the paper's footnote-3 effect.
    pub buffer_slot_bytes: u64,
    /// 4 KiB pages in each thread's TX/ACK buffer pool. Outbound ACKs are
    /// DMA-read from a pool that cycles through these pages (SNAP-style TX
    /// packet buffers), so each page contributes an IOTLB entry — part of
    /// the per-thread control-structure footprint that pushes the working
    /// set past 128 entries beyond ~8 threads (Fig. 3 right).
    pub ack_pool_pages: u32,
    /// Hot 4 KiB pages in each thread's Rx descriptor ring that per-packet
    /// descriptor fetches cycle through (descriptor prefetch batches keep
    /// a window of the ring live, not one sequential page).
    pub ring_hot_pages: u32,
    /// Hot 4 KiB pages in each thread's completion queue that per-packet
    /// CQE writes cycle through (out-of-order completion retirement).
    ///
    /// Together with `ring_hot_pages`, `ack_pool_pages` and the data
    /// region's pages these set the per-thread IOMMU footprint (~14
    /// entries at the defaults), which crosses the 128-entry IOTLB just
    /// beyond 8 threads — the Fig. 3 knee. The different cycle lengths
    /// give each structure a different LRU reuse distance, so misses turn
    /// on structure by structure as threads increase, reproducing the
    /// graduated rise of misses-per-packet rather than a single cliff.
    pub cq_hot_pages: u32,
    /// Buffer recycling behaviour of the receiver stack.
    pub recycling: BufferRecycling,
    /// Direct cache access (DDIO): DMA writes land in an LLC slice and
    /// only reach DRAM when the buffer working set exceeds it ("leaky
    /// DMA"). With the paper's cycling 12 MiB-per-thread buffers the slice
    /// leaks ~everything, so enabling it matches the measured write
    /// bandwidth; a hot buffer pool makes it absorb the stream.
    pub ddio: DdioConfig,
    /// Per-packet receiver CPU cost (protocol processing + app hand-off).
    /// 2.85 µs/packet makes 8 cores exactly sufficient for 92 Gbps of
    /// 4 KiB packets — the CPU-bottleneck ramp of Fig. 3.
    pub core_pkt_cost: SimDuration,
    /// Fraction of delivered payload the receiver threads re-read from
    /// memory when handing data to the application (paper measures
    /// ~3.3 GB/s of reads against 11.5 GB/s of payload ≈ 0.29).
    pub app_copy_read_fraction: f64,
    /// Fixed NIC→root-complex DMA latency (PCIe propagation + RC
    /// processing), excluding translation and memory time.
    pub dma_base_latency: SimDuration,
    /// LLC hit latency, nanoseconds: what a DDIO-absorbed DMA commit costs
    /// instead of the (possibly contended) DRAM round-trip.
    pub llc_latency_ns: f64,
    /// Strict IOMMU mode: unmap + IOTLB invalidation when each buffer is
    /// consumed (Linux strict/dynamic mapping). The paper's stack uses
    /// loose mode precisely because dynamic modes "are known to cause even
    /// worse IOTLB misses"; this knob lets the claim be measured.
    pub strict_iommu: bool,
    /// CPU cost of the unmap + invalidation command per buffer in strict
    /// mode (queued invalidation descriptors, waits).
    pub invalidation_cost: SimDuration,
    /// IOMMU-side stall per packet in strict mode: invalidation commands
    /// serialise with translations in the walker, so a stream of
    /// per-buffer invalidations steals translation throughput.
    pub invalidation_dma_stall: SimDuration,
    /// Cap on the load-latency inflation factor applied to page-table walk
    /// accesses. Page-table lines are small, hot and cache/buffer-friendly,
    /// so the walker feels far less of the bus contention than full
    /// cache-line DMA commits do.
    pub walk_latency_cap_factor: f64,
    /// Multiplier on the memory latency for each page-walk access: the
    /// IOMMU's walker issues strictly dependent accesses through the
    /// root complex, which costs more than a CPU-side DRAM reference
    /// (measured IOTLB-miss penalties run hundreds of ns to ~1 µs).
    pub walk_access_penalty: f64,
    /// Memory-demand refresh period.
    pub mem_tick: SimDuration,
    /// Period of the per-flow retransmission-timer sweep.
    pub rto_sweep: SimDuration,
    /// Deterministic fault-injection schedule. Empty by default: a run
    /// with an empty plan is bit-identical to one without the fault layer.
    pub faults: FaultPlan,
    /// Continuous host-congestion telemetry (sampler, episode detector,
    /// flight recorder). Disabled by default: a telemetry-off run
    /// schedules no sampling events and is bit-identical to a build
    /// without the telemetry layer.
    pub telemetry: TelemetryConfig,
    /// Simulation time grid. The default exact (1 ns) resolution
    /// reproduces historical runs bit for bit. A coarse power-of-two grid
    /// (e.g. 64 ns) rounds the latency terms that are already
    /// approximations — serialisation boundaries, pacer grants, memory
    /// tick latencies — *up* to the grid so nearby events share timing
    /// wheel slots and slot-drain batching genuinely fans out. An
    /// explicit opt-in: coarse runs have their own pinned goldens.
    pub resolution: Resolution,
    /// Fuse the uncontended DmaComplete→CpuDone chain into one macro
    /// event when the receiving core is known to be free at DMA-complete
    /// time. Off by default (bit-identical to historical runs); enabled
    /// by the coarse-time profile alongside `resolution`. Disabled
    /// automatically when a fault plan is present (core preemption
    /// invalidates the reservation this optimisation relies on).
    pub fuse_chains: bool,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 1,
            senders: 40,
            receiver_threads: 12,
            cc: CcKind::Swift(SwiftConfig {
                // Per-ACK additive increase scaled for a 480-flow incast:
                // aggregate AI per RTT is what overshoot (and therefore
                // steady drop rate) scales with when the controller is
                // blind to host congestion.
                ai: 0.25,
                ..SwiftConfig::default()
            }),
            flow: FlowConfig::default(),
            rpc: RpcConfig::default(),
            read_size_mix: Vec::new(),
            wire: WireFormat::default(),
            sender_link_bps: 100e9,
            access_link_bps: 100e9,
            hop_propagation: SimDuration::from_micros(2),
            propagation_spread: 0.5,
            ack_jitter: SimDuration::from_micros(4),
            target_dispersion: 0.3,
            duty_cycle: 1.0,
            duty_period: SimDuration::from_millis(2),
            switch_buffer_bytes: 4 << 20,
            ecn_threshold_bytes: 0,
            nic: NicConfig::default(),
            pcie: PcieLinkConfig::default(),
            credits: CreditConfig {
                posted_header: 64,
                posted_data: 1024,
            },
            read_channel: ReadChannelConfig::default(),
            model_dma_read_latency: false,
            iommu: IommuConfig {
                // Page-walk caching disabled by default: measured IOTLB
                // miss costs in the paper (hundreds of ns) correspond to
                // full walks; the PWC remains available as an ablation.
                pwc_entries: 0,
                // Fully-associative 128-entry IOTLB with LRU: keeps the
                // below-capacity regime miss-free so the Fig. 3 knee is
                // driven by capacity, as the paper's entry-count argument
                // assumes.
                iotlb_ways: 128,
                ..IommuConfig::default()
            },
            memsys: MemSysConfig::default(),
            stream: StreamConfig::default(),
            antagonist_cores: 0,
            data_page: PageSize::Size2M,
            rx_region_bytes: 12 << 20,
            buffer_slot_bytes: 4352,
            ack_pool_pages: 4,
            ring_hot_pages: 2,
            cq_hot_pages: 4,
            recycling: BufferRecycling::Scattered,
            ddio: DdioConfig::default(),
            core_pkt_cost: SimDuration::from_nanos(2850),
            app_copy_read_fraction: 0.29,
            dma_base_latency: SimDuration::from_nanos(500),
            llc_latency_ns: 20.0,
            strict_iommu: false,
            invalidation_cost: SimDuration::from_nanos(400),
            invalidation_dma_stall: SimDuration::from_nanos(300),
            walk_latency_cap_factor: 1.1,
            walk_access_penalty: 1.0,
            mem_tick: SimDuration::from_micros(10),
            rto_sweep: SimDuration::from_micros(250),
            faults: FaultPlan::new(),
            telemetry: TelemetryConfig::disabled(),
            resolution: Resolution::EXACT,
            fuse_chains: false,
        }
    }
}

/// A configuration the testbed cannot simulate, with enough context to
/// tell the user which knob is wrong. Produced by
/// [`TestbedConfig::validate`]; the library surfaces it as
/// `RunError::InvalidConfig` instead of panicking (or worse, silently
/// dividing by zero into an all-NaN report).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `senders == 0`: there is no workload to simulate.
    ZeroSenders,
    /// `receiver_threads == 0`: nothing drains the NIC; every run stalls.
    ZeroReceiverThreads,
    /// A link rate that is zero, negative, or not finite.
    NonPositiveLinkRate {
        /// Which knob: `"sender_link_bps"` or `"access_link_bps"`.
        which: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `duty_cycle` outside (0, 1].
    DutyCycleOutOfRange(f64),
    /// A `read_size_mix` entry with a non-positive weight (the sampler
    /// normalises by the weight sum, so these poison every draw).
    NonPositiveReadMixWeight {
        /// The entry's read size, bytes.
        bytes: u32,
        /// The offending weight.
        weight: f64,
    },
    /// A fleet-level knob the multi-host builder cannot work with
    /// (zero hosts, zero inter-host latency, fan-in without peers).
    InvalidFleet {
        /// Which constraint was violated.
        reason: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroSenders => write!(f, "senders must be at least 1"),
            ConfigError::ZeroReceiverThreads => write!(f, "receiver_threads must be at least 1"),
            ConfigError::NonPositiveLinkRate { which, value } => {
                write!(f, "{which} must be a positive rate, got {value}")
            }
            ConfigError::DutyCycleOutOfRange(v) => {
                write!(f, "duty_cycle must be in (0, 1], got {v}")
            }
            ConfigError::NonPositiveReadMixWeight { bytes, weight } => {
                write!(
                    f,
                    "read_size_mix weight for {bytes}-byte reads must be positive, got {weight}"
                )
            }
            ConfigError::InvalidFleet { reason } => {
                write!(f, "invalid fleet configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl TestbedConfig {
    /// Total flows: one per (sender, receiver thread) pair.
    pub fn flow_count(&self) -> u32 {
        self.senders * self.receiver_threads
    }

    /// Maximum achievable application goodput in bits/sec (the paper's
    /// 92 Gbps green line).
    pub fn max_app_goodput_bps(&self) -> f64 {
        self.access_link_bps * self.wire.goodput_efficiency()
    }

    /// A light-weight host profile for 10k–100k-member fleets: the same
    /// datapath (NIC → PCIe → IOMMU → memory) but the smallest
    /// population that still exercises it — 2 senders on 1 receiver
    /// thread, no antagonists, a 1 MiB Rx region with a 256-entry ring,
    /// and telemetry off. A light host carries ~1/200th of the default
    /// incast's flow count, which is what makes five-digit fleets fit in
    /// CI memory; it is a *different simulation* (different digests),
    /// not an approximation of the default host.
    pub fn light(seed: u64) -> Self {
        TestbedConfig {
            seed,
            senders: 2,
            receiver_threads: 1,
            antagonist_cores: 0,
            rx_region_bytes: 1 << 20,
            ack_pool_pages: 2,
            ring_hot_pages: 1,
            cq_hot_pages: 1,
            nic: NicConfig {
                ring_entries: 256,
                ..NicConfig::default()
            },
            telemetry: TelemetryConfig::disabled(),
            ..TestbedConfig::default()
        }
    }

    /// Check the knobs a caller most plausibly gets wrong (zero
    /// populations, non-positive rates, out-of-range fractions) before
    /// building a testbed from them. Returns the first violation found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.senders == 0 {
            return Err(ConfigError::ZeroSenders);
        }
        if self.receiver_threads == 0 {
            return Err(ConfigError::ZeroReceiverThreads);
        }
        for (which, value) in [
            ("sender_link_bps", self.sender_link_bps),
            ("access_link_bps", self.access_link_bps),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(ConfigError::NonPositiveLinkRate { which, value });
            }
        }
        if !self.duty_cycle.is_finite() || self.duty_cycle <= 0.0 || self.duty_cycle > 1.0 {
            return Err(ConfigError::DutyCycleOutOfRange(self.duty_cycle));
        }
        for &(bytes, weight) in &self.read_size_mix {
            if !weight.is_finite() || weight <= 0.0 {
                return Err(ConfigError::NonPositiveReadMixWeight { bytes, weight });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_testbed() {
        let c = TestbedConfig::default();
        assert_eq!(c.senders, 40);
        assert_eq!(c.flow_count(), 480);
        let ceiling = c.max_app_goodput_bps() / 1e9;
        assert!(
            (91.0..93.0).contains(&ceiling),
            "app ceiling {ceiling} should be ~92 Gbps"
        );
        assert_eq!(c.credits.max_inflight_writes(4096, 256), 4);
        assert_eq!(c.iommu.iotlb_entries, 128);
    }

    fn base() -> TestbedConfig {
        TestbedConfig::default()
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_bad_knobs() {
        assert_eq!(base().validate(), Ok(()));

        let mut c = base();
        c.senders = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroSenders));

        let mut c = base();
        c.receiver_threads = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroReceiverThreads));

        let mut c = base();
        c.access_link_bps = 0.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPositiveLinkRate {
                which: "access_link_bps",
                value: 0.0
            })
        );
        c.access_link_bps = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositiveLinkRate { .. })
        ));

        let mut c = base();
        c.sender_link_bps = -1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositiveLinkRate {
                which: "sender_link_bps",
                ..
            })
        ));

        let mut c = base();
        c.duty_cycle = 0.0;
        assert_eq!(c.validate(), Err(ConfigError::DutyCycleOutOfRange(0.0)));
        c.duty_cycle = 1.5;
        assert_eq!(c.validate(), Err(ConfigError::DutyCycleOutOfRange(1.5)));
        c.duty_cycle = 1.0;
        assert_eq!(c.validate(), Ok(()));

        let mut c = base();
        c.read_size_mix = vec![(4096, 1.0), (65536, 0.0)];
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPositiveReadMixWeight {
                bytes: 65536,
                weight: 0.0
            })
        );
    }

    #[test]
    fn config_errors_render_for_cli() {
        let msg = ConfigError::DutyCycleOutOfRange(2.0).to_string();
        assert!(msg.contains("duty_cycle"), "{msg}");
        let msg = ConfigError::NonPositiveLinkRate {
            which: "access_link_bps",
            value: -5.0,
        }
        .to_string();
        assert!(
            msg.contains("access_link_bps") && msg.contains("-5"),
            "{msg}"
        );
    }

    #[test]
    fn core_cost_makes_eight_cores_sufficient() {
        let c = TestbedConfig::default();
        // packets/sec one core can process
        let per_core = 1e9 / c.core_pkt_cost.as_nanos() as f64;
        let needed = c.max_app_goodput_bps() / 8.0 / c.wire.mtu_payload as f64;
        let cores = needed / per_core;
        assert!(
            (7.0..9.0).contains(&cores),
            "ramp should saturate near 8 cores, got {cores}"
        );
    }
}
