//! Typed failures for the panic-free run API.

use crate::config::ConfigError;
use hostcc_sim::SimTime;

/// Why a simulation run could not produce metrics. The library's
/// top-level entry points (`experiment::run`, `run_traced`, `sweep`)
/// return this instead of panicking on bad input or spinning forever on a
/// stalled world.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The configuration failed [`TestbedConfig::validate`](crate::TestbedConfig::validate)
    /// before the testbed was built.
    InvalidConfig(ConfigError),
    /// The engine's progress watchdog tripped: the simulation dispatched
    /// an implausible number of events without the clock advancing.
    Stalled {
        /// The instant progress stopped at.
        at: SimTime,
        /// Events still queued when the run was aborted.
        pending: usize,
    },
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::InvalidConfig(e)
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RunError::Stalled { at, pending } => write!(
                f,
                "simulation stalled at t={}ns with {pending} events pending \
                 (the clock stopped advancing; see RunOutcome::Stalled)",
                at.as_nanos()
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::InvalidConfig(e) => Some(e),
            RunError::Stalled { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = RunError::from(ConfigError::ZeroSenders);
        assert!(e.to_string().contains("senders"));
        let e = RunError::Stalled {
            at: SimTime::from_nanos(99),
            pending: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("99") && msg.contains("3 events"), "{msg}");
    }
}
