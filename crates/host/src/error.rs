//! Typed failures for the panic-free run API.

use crate::config::ConfigError;
use hostcc_sim::SimTime;
use hostcc_telemetry::TelemetrySample;

/// Why a simulation run could not produce metrics. The library's
/// top-level entry points (`experiment::run`, `run_traced`, `sweep`)
/// return this instead of panicking on bad input or spinning forever on a
/// stalled world.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The configuration failed [`TestbedConfig::validate`](crate::TestbedConfig::validate)
    /// before the testbed was built.
    InvalidConfig(ConfigError),
    /// The engine's progress watchdog tripped: the simulation dispatched
    /// an implausible number of events without the clock advancing.
    Stalled {
        /// The instant progress stopped at.
        at: SimTime,
        /// Events still queued when the run was aborted.
        pending: usize,
        /// Which fleet host stalled (`None` on single-host runs, where
        /// there is nothing to disambiguate).
        host: Option<usize>,
        /// The stalled host's shard (`host % shards`), when known — which
        /// worker thread was driving the frozen clock.
        shard: Option<usize>,
        /// The final telemetry sample before the stall, when the run had
        /// telemetry enabled — the host signals at the moment progress
        /// stopped, so the trip is diagnosable without re-running. Boxed
        /// to keep the error (and every `Result` carrying it) small.
        telemetry: Option<Box<TelemetrySample>>,
    },
    /// A sweep worker panicked while running one grid point. The panic is
    /// caught at the point boundary so the remaining points still
    /// complete; the payload says which point died.
    WorkerPanicked {
        /// Index of the grid point whose worker panicked.
        point: usize,
        /// The point's label (whatever the sweep called it).
        label: String,
        /// The panic payload rendered to text, when it was a string.
        message: String,
    },
    /// A checkpoint could not be written or restored (corrupt, truncated,
    /// wrong version, mismatched config, or save-side refusal).
    Checkpoint(hostcc_sim::SnapError),
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::InvalidConfig(e)
    }
}

impl From<hostcc_sim::SnapError> for RunError {
    fn from(e: hostcc_sim::SnapError) -> Self {
        RunError::Checkpoint(e)
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RunError::Stalled {
                at,
                pending,
                host,
                shard,
                telemetry,
            } => {
                write!(
                    f,
                    "simulation stalled at t={}ns with {pending} events pending \
                     (the clock stopped advancing; see RunOutcome::Stalled)",
                    at.as_nanos()
                )?;
                if let Some(h) = host {
                    write!(f, "; host {h}")?;
                    if let Some(s) = shard {
                        write!(f, " (shard {s})")?;
                    }
                }
                if let Some(s) = telemetry {
                    write!(
                        f,
                        "; final telemetry: buffer {:.0}% full, {} drops/window, \
                         {} credit stalls/window, {:.2} walks/packet",
                        s.buffer_frac * 100.0,
                        s.drops,
                        s.credit_stalls,
                        s.walks_per_packet()
                    )?;
                }
                Ok(())
            }
            RunError::WorkerPanicked {
                point,
                label,
                message,
            } => {
                write!(f, "sweep worker panicked on point {point} ({label})")?;
                if !message.is_empty() {
                    write!(f, ": {message}")?;
                }
                Ok(())
            }
            RunError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::InvalidConfig(e) => Some(e),
            RunError::Stalled { .. } => None,
            RunError::WorkerPanicked { .. } => None,
            RunError::Checkpoint(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = RunError::from(ConfigError::ZeroSenders);
        assert!(e.to_string().contains("senders"));
        let e = RunError::Stalled {
            at: SimTime::from_nanos(99),
            pending: 3,
            host: None,
            shard: None,
            telemetry: None,
        };
        let msg = e.to_string();
        assert!(msg.contains("99") && msg.contains("3 events"), "{msg}");
        assert!(!msg.contains("host"), "{msg}");
    }

    #[test]
    fn stall_display_names_the_host_and_shard() {
        let e = RunError::Stalled {
            at: SimTime::from_nanos(50),
            pending: 1,
            host: Some(5),
            shard: Some(1),
            telemetry: None,
        };
        let msg = e.to_string();
        assert!(msg.contains("host 5"), "{msg}");
        assert!(msg.contains("shard 1"), "{msg}");
    }

    #[test]
    fn worker_panic_names_the_point() {
        let e = RunError::WorkerPanicked {
            point: 7,
            label: "threads=16".to_string(),
            message: "boom".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("point 7"), "{msg}");
        assert!(msg.contains("threads=16"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn checkpoint_errors_wrap_snap_errors() {
        let e = RunError::from(hostcc_sim::SnapError::Checksum);
        assert!(matches!(e, RunError::Checkpoint(_)));
        assert!(e.to_string().contains("checkpoint failed"), "{e}");
    }

    #[test]
    fn stall_display_includes_final_telemetry() {
        let sample = TelemetrySample {
            t_ns: 95,
            buffer_occupancy_bytes: 900,
            buffer_frac: 0.9,
            ring_free_slots: 0,
            delivered: 0,
            drops: 7,
            credit_stalls: 12,
            iotlb_lookups: 40,
            iotlb_misses: 30,
            walks: 120,
            packets: 10,
            host_delay_ns: 0,
            cpu_ns: 0,
            acks: 0,
            fabric_delay_ns: 0,
            mem_util: 0.5,
            mem_latency_ns: 200.0,
        };
        let e = RunError::Stalled {
            at: SimTime::from_nanos(99),
            pending: 3,
            host: None,
            shard: None,
            telemetry: Some(Box::new(sample)),
        };
        let msg = e.to_string();
        assert!(msg.contains("90% full"), "{msg}");
        assert!(msg.contains("7 drops"), "{msg}");
        assert!(msg.contains("12.00 walks/packet"), "{msg}");
    }
}
