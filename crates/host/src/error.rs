//! Typed failures for the panic-free run API.

use crate::config::ConfigError;
use hostcc_sim::SimTime;
use hostcc_telemetry::TelemetrySample;

/// Why a simulation run could not produce metrics. The library's
/// top-level entry points (`experiment::run`, `run_traced`, `sweep`)
/// return this instead of panicking on bad input or spinning forever on a
/// stalled world.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The configuration failed [`TestbedConfig::validate`](crate::TestbedConfig::validate)
    /// before the testbed was built.
    InvalidConfig(ConfigError),
    /// The engine's progress watchdog tripped: the simulation dispatched
    /// an implausible number of events without the clock advancing.
    Stalled {
        /// The instant progress stopped at.
        at: SimTime,
        /// Events still queued when the run was aborted.
        pending: usize,
        /// The final telemetry sample before the stall, when the run had
        /// telemetry enabled — the host signals at the moment progress
        /// stopped, so the trip is diagnosable without re-running. Boxed
        /// to keep the error (and every `Result` carrying it) small.
        telemetry: Option<Box<TelemetrySample>>,
    },
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::InvalidConfig(e)
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RunError::Stalled {
                at,
                pending,
                telemetry,
            } => {
                write!(
                    f,
                    "simulation stalled at t={}ns with {pending} events pending \
                     (the clock stopped advancing; see RunOutcome::Stalled)",
                    at.as_nanos()
                )?;
                if let Some(s) = telemetry {
                    write!(
                        f,
                        "; final telemetry: buffer {:.0}% full, {} drops/window, \
                         {} credit stalls/window, {:.2} walks/packet",
                        s.buffer_frac * 100.0,
                        s.drops,
                        s.credit_stalls,
                        s.walks_per_packet()
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::InvalidConfig(e) => Some(e),
            RunError::Stalled { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = RunError::from(ConfigError::ZeroSenders);
        assert!(e.to_string().contains("senders"));
        let e = RunError::Stalled {
            at: SimTime::from_nanos(99),
            pending: 3,
            telemetry: None,
        };
        let msg = e.to_string();
        assert!(msg.contains("99") && msg.contains("3 events"), "{msg}");
    }

    #[test]
    fn stall_display_includes_final_telemetry() {
        let sample = TelemetrySample {
            t_ns: 95,
            buffer_occupancy_bytes: 900,
            buffer_frac: 0.9,
            ring_free_slots: 0,
            delivered: 0,
            drops: 7,
            credit_stalls: 12,
            iotlb_lookups: 40,
            iotlb_misses: 30,
            walks: 120,
            packets: 10,
            host_delay_ns: 0,
            cpu_ns: 0,
            acks: 0,
            fabric_delay_ns: 0,
            mem_util: 0.5,
            mem_latency_ns: 200.0,
        };
        let e = RunError::Stalled {
            at: SimTime::from_nanos(99),
            pending: 3,
            telemetry: Some(Box::new(sample)),
        };
        let msg = e.to_string();
        assert!(msg.contains("90% full"), "{msg}");
        assert!(msg.contains("7 drops"), "{msg}");
        assert!(msg.contains("12.00 walks/packet"), "{msg}");
    }
}
