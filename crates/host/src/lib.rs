//! # hostcc-host
//!
//! The receiver host and the full testbed simulation: composes the NIC,
//! PCIe credits, IOMMU, memory subsystem, receiver cores, sender fleet and
//! fabric into one deterministic discrete-event world reproducing the
//! paper's Fig. 2 datapath, with metrics for every quantity the
//! evaluation plots (throughput, drop rate, IOTLB misses/packet, memory
//! bandwidth, host delay).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod metrics;
mod vlink;
mod world;

pub use config::{BufferRecycling, CcKind, TestbedConfig};
pub use metrics::{MetricsCollector, RunMetrics};
pub use vlink::VariableRateLink;
pub use world::{DmaJob, Event, Simulation, Testbed};
