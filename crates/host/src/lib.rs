//! # hostcc-host
//!
//! The receiver host and the full testbed simulation: composes the NIC,
//! PCIe credits, IOMMU, memory subsystem, receiver cores, sender fleet and
//! fabric into one deterministic discrete-event world reproducing the
//! paper's Fig. 2 datapath, with metrics for every quantity the
//! evaluation plots (throughput, drop rate, IOTLB misses/packet, memory
//! bandwidth, host delay).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod export;
mod fleet;
mod metrics;
mod vlink;
mod world;

pub use config::{BufferRecycling, CcKind, ConfigError, TestbedConfig};
pub use error::RunError;
pub use export::metrics_json;
pub use fleet::FleetHost;
pub use metrics::{MetricsCollector, RunMetrics};
pub use vlink::VariableRateLink;
pub use world::{DmaJob, Event, Simulation, Testbed};

// Re-export the fault-injection vocabulary (FaultPlan rides on
// TestbedConfig, so every consumer of the config needs these types).
pub use hostcc_faults::{FaultKind, FaultPlan, FaultSpec, FaultSummary};

// Re-export the observability vocabulary so downstream crates (core, CLI,
// harnesses) need only one import path.
pub use hostcc_trace::{
    chrome_trace_json, CounterRegistry, CounterSource, Stage, StageBreakdown, StageClass,
    TimelineRecorder, TraceConfig, TraceEvent, Tracer,
};

// Re-export the telemetry vocabulary (TelemetryConfig rides on
// TestbedConfig; the summary rides on RunMetrics and RunError::Stalled).
pub use hostcc_telemetry::{
    EpisodeRecord, FlightDump, RootCause, SignalInputs, Telemetry, TelemetryConfig,
    TelemetrySample, TelemetrySummary, TriggerKind,
};
