//! The [`ShardHost`] adapter: one started [`Simulation`] as a member of
//! a parallel fleet.
//!
//! A `FleetHost` is exactly a single-host simulation (same engine, same
//! wheel, same world) plus the three parallel-engine hooks: peek the
//! next event time, advance a lookahead-bounded slice, and move fabric
//! envelopes in and out. A one-host fleet therefore executes the
//! identical event sequence a serial [`Simulation`] would — the
//! `--shards 1 == serial` bit-identity the differential tests pin down.

use crate::error::RunError;
use crate::world::{Event, Simulation};
use hostcc_fabric::WireMsg;
use hostcc_sim::{Envelope, RunOutcome, ShardHost, SimTime};

/// One fleet member: a started testbed simulation driven in epoch slices.
pub struct FleetHost {
    sim: Simulation,
    /// First watchdog trip, if any. A stalled host is withdrawn from the
    /// epoch computation (it reports no pending events and stops
    /// advancing) so the fleet run can terminate and surface the error
    /// instead of spinning on a frozen clock.
    stalled: Option<SimTime>,
}

impl FleetHost {
    /// Wrap a started simulation (wire remote flows before starting it;
    /// see `Testbed::enable_fabric` / `Simulation::from_testbed`).
    pub fn new(sim: Simulation) -> Self {
        FleetHost { sim, stalled: None }
    }

    /// The wrapped simulation.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access (arming metrics, installing telemetry sinks).
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// When the host's progress watchdog tripped, the frozen instant.
    /// A stalled host cannot be checkpointed (its queue is mid-abort).
    pub fn stalled_at(&self) -> Option<SimTime> {
        self.stalled
    }

    /// Check the host for a tripped progress watchdog.
    pub fn check_stalled(&mut self) -> Result<(), RunError> {
        match self.stalled {
            None => Ok(()),
            Some(at) => {
                let pending = 0;
                self.sim.world_mut().telemetry.on_stall(at.as_nanos());
                Err(RunError::Stalled {
                    at,
                    pending,
                    host: None,
                    shard: None,
                    telemetry: self.sim.world_mut().telemetry.last_sample().map(Box::new),
                })
            }
        }
    }
}

impl ShardHost for FleetHost {
    type Msg = WireMsg;

    fn next_event_time(&self) -> Option<SimTime> {
        if self.stalled.is_some() {
            return None;
        }
        self.sim.peek_time()
    }

    fn next_send_time(&self) -> Option<SimTime> {
        if self.stalled.is_some() {
            return None;
        }
        // An uncoupled host (no fabric, or no remote flows wired) can
        // never emit an envelope — withdrawing it from the epoch bound
        // lets the engine batch lookahead windows into super-epochs.
        // A coupled host promises nothing beyond its next event: any
        // dispatched event may push a packet into the fabric outbox, and
        // a wrong promise here would silently break bit-identity. The
        // coupling answer is fixed at wiring time, so this is a pure
        // function of host state (it cannot flip mid-run and perturb
        // the deterministic epoch grid).
        if self.sim.world().coupled() {
            self.sim.peek_time()
        } else {
            None
        }
    }

    fn dispatched(&self) -> u64 {
        self.sim.dispatched_total()
    }

    fn advance_to(&mut self, deadline: SimTime) {
        if self.stalled.is_some() {
            return;
        }
        if let RunOutcome::Stalled { at } = self.sim.run_to(deadline) {
            self.stalled = Some(at);
        }
    }

    fn take_outbound(&mut self, out: &mut Vec<Envelope<WireMsg>>) {
        self.sim.world_mut().take_outbound(out);
    }

    fn deliver(&mut self, env: Envelope<WireMsg>) {
        self.sim.world_mut().push_inbound(env.msg);
        self.sim.schedule_at(env.fire, Event::RemoteArrival);
    }
}
