//! JSON metrics export: one machine-readable snapshot per run.
//!
//! The snapshot carries the headline metrics, the latency distributions,
//! the exact per-stage host-delay breakdown, every registered counter
//! (measurement-interval deltas) and — when profiling ran — the engine's
//! events/sec dispatch statistics.

use crate::metrics::RunMetrics;
use hostcc_sim::{DispatchProfile, Histogram};
use hostcc_trace::json::JsonWriter;
use hostcc_trace::{CounterRegistry, StageClass};

fn hist_us(w: &mut JsonWriter, key: &str, h: &Histogram) {
    w.key(key).begin_obj();
    w.key("count").int(h.count());
    w.key("mean").num(h.mean() / 1000.0);
    w.key("p50").num(h.p50() as f64 / 1000.0);
    w.key("p90").num(h.p90() as f64 / 1000.0);
    w.key("p99").num(h.p99() as f64 / 1000.0);
    w.key("p999").num(h.p999() as f64 / 1000.0);
    w.key("max").num(h.max() as f64 / 1000.0);
    w.end_obj();
}

/// Render one run's metrics (plus counters and optional engine profile)
/// as a JSON object. Latencies are reported in microseconds; the stage
/// breakdown in nanoseconds (it is exact at that resolution).
pub fn metrics_json(
    m: &RunMetrics,
    counters: &CounterRegistry,
    profile: Option<DispatchProfile>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("measured_ns").int(m.measured.as_nanos());
    w.key("delivered_packets").int(m.delivered_packets);
    w.key("delivered_payload_bytes")
        .int(m.delivered_payload_bytes);
    w.key("data_packets_sent").int(m.data_packets_sent);
    w.key("app_throughput_gbps").num(m.app_throughput_gbps());
    w.key("drop_rate").num(m.drop_rate());
    w.key("drops").begin_obj();
    w.key("buffer_full").int(m.drops_buffer_full);
    w.key("no_descriptor").int(m.drops_no_descriptor);
    w.key("fabric").int(m.drops_fabric);
    w.end_obj();
    w.key("iotlb").begin_obj();
    w.key("lookups").int(m.iotlb_lookups);
    w.key("misses").int(m.iotlb_misses);
    w.key("misses_per_packet").num(m.iotlb_misses_per_packet());
    w.key("walk_memory_accesses").int(m.walk_memory_accesses);
    w.end_obj();
    w.key("memory_bandwidth_gbytes")
        .num(m.memory_bandwidth_gbytes());
    w.key("nic_memory_bandwidth_gbytes")
        .num(m.mean_nic_memory_bandwidth / 1e9);
    w.key("nic_buffer_peak_bytes").int(m.nic_buffer_peak_bytes);
    w.key("retransmits").int(m.retransmits);
    w.key("timeouts").int(m.timeouts);
    w.key("mean_cwnd").num(m.mean_cwnd);
    hist_us(&mut w, "host_delay_us", &m.host_delay);
    hist_us(&mut w, "rtt_us", &m.rtt);
    w.key("stage_breakdown").begin_obj();
    w.key("packets").int(m.stage_breakdown.count());
    w.key("total_ns")
        .num(m.stage_breakdown.total_sum_ns() as f64);
    for class in StageClass::ALL {
        w.key(class.name()).begin_obj();
        w.key("mean_ns").num(m.stage_breakdown.mean_ns(class));
        w.key("p99_ns").int(m.stage_breakdown.stage(class).p99());
        w.key("share").num(m.stage_breakdown.share(class));
        w.end_obj();
    }
    w.end_obj();
    // Fault summary only when a plan actually ran: zero-fault exports
    // must stay byte-identical to pre-fault-layer builds (golden digests).
    if let Some(f) = &m.faults {
        w.key("faults").begin_obj();
        w.key("windows_injected").int(f.windows_injected);
        w.key("link_dropped_packets").int(f.link_dropped_packets);
        w.key("deferred_refills").int(f.deferred_refills);
        w.key("iotlb_flushes").int(f.iotlb_flushes);
        w.key("preempt_ns").int(f.preempt_ns);
        w.key("goodput_before_gbps").num(f.goodput_before_bps / 1e9);
        w.key("goodput_during_gbps").num(f.goodput_during_bps / 1e9);
        w.key("goodput_after_gbps").num(f.goodput_after_bps / 1e9);
        w.key("recovery_observation_ns")
            .int(f.recovery_observation_ns);
        w.key("recovered").bool(f.recovered);
        w.end_obj();
    }
    // Telemetry time-series summary, gated exactly like `faults`:
    // telemetry-off exports stay byte-identical (golden digests).
    if let Some(t) = &m.telemetry {
        w.key("telemetry").begin_obj();
        w.key("samples").int(t.samples);
        w.key("interval_ns").int(t.interval_ns);
        w.key("flight_dumps").int(t.flight_dumps);
        w.key("dropped_episodes").int(t.dropped_episodes);
        w.key("episodes").begin_arr();
        for e in &t.episodes {
            w.begin_obj();
            w.key("onset_ns").int(e.onset_ns);
            w.key("peak_ns").int(e.peak_ns);
            w.key("clear_ns").int(e.clear_ns);
            w.key("open").bool(e.open);
            w.key("samples").int(e.samples as u64);
            w.key("drops").int(e.drops);
            w.key("peak_buffer_frac").num(e.peak_buffer_frac);
            w.key("cause").str(e.cause.name());
            w.key("z").num(e.z);
            w.key("walks_per_packet").num(e.walks_per_packet);
            w.key("mem_util").num(e.mem_util);
            w.key("mem_latency_ns").num(e.mem_latency_ns);
            w.key("credit_stalls").int(e.credit_stalls);
            w.key("cpu_ns_per_packet").num(e.cpu_ns_per_packet);
            w.end_obj();
        }
        w.end_arr();
        if let Some(s) = &t.last {
            w.key("last_sample").begin_obj();
            w.key("t_ns").int(s.t_ns);
            w.key("buffer_frac").num(s.buffer_frac);
            w.key("drops").int(s.drops);
            w.key("credit_stalls").int(s.credit_stalls);
            w.key("walks_per_packet").num(s.walks_per_packet());
            w.key("mem_util").num(s.mem_util);
            w.end_obj();
        }
        w.end_obj();
    }
    w.key("counters").begin_obj();
    for (name, value) in counters.snapshot() {
        w.key(&name).int(value);
    }
    w.end_obj();
    if let Some(p) = profile {
        w.key("engine").begin_obj();
        w.key("events").int(p.events);
        w.key("wall_nanos").int(p.wall_nanos);
        w.key("events_per_sec").num(p.events_per_sec());
        // Batch statistics confirm slot-drain dispatch is engaging:
        // zero batches means the engine ran per-event.
        w.key("batches").int(p.batches);
        w.key("mean_batch").num(p.mean_batch());
        w.key("max_batch").int(p.max_batch);
        w.end_obj();
    }
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsCollector;
    use hostcc_sim::SimTime;
    use hostcc_trace::json;

    #[test]
    fn snapshot_is_valid_json_with_breakdown_and_counters() {
        let mut c = MetricsCollector::new();
        c.arm(SimTime::ZERO);
        c.delivered_packets = 10;
        c.delivered_payload_bytes = 10_000;
        c.host_delay.record(1_500);
        c.stage_breakdown.record(100, 400, 300, 200, 500);
        let m = c.snapshot(SimTime::from_millis(1), 4096, 8.0);
        let mut reg = CounterRegistry::new();
        reg.set("nic.delivered_packets", 10);
        let doc = metrics_json(&m, &reg, None);
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("delivered_packets").unwrap().as_f64(), Some(10.0));
        let bd = v.get("stage_breakdown").unwrap();
        assert_eq!(bd.get("total_ns").unwrap().as_f64(), Some(1500.0));
        assert_eq!(
            bd.get("pcie").unwrap().get("mean_ns").unwrap().as_f64(),
            Some(400.0)
        );
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("nic.delivered_packets")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
    }

    #[test]
    fn profile_block_present_when_given() {
        let c = MetricsCollector::new();
        let m = c.snapshot(SimTime::ZERO, 0, 0.0);
        let doc = metrics_json(
            &m,
            &CounterRegistry::new(),
            Some(DispatchProfile {
                events: 100,
                wall_nanos: 50,
                batches: 40,
                max_batch: 7,
            }),
        );
        let v = json::parse(&doc).unwrap();
        let engine = v.get("engine").unwrap();
        assert_eq!(engine.get("events").unwrap().as_f64(), Some(100.0));
        assert_eq!(engine.get("batches").unwrap().as_f64(), Some(40.0));
        assert_eq!(engine.get("mean_batch").unwrap().as_f64(), Some(2.5));
        assert_eq!(engine.get("max_batch").unwrap().as_f64(), Some(7.0));
    }
}
