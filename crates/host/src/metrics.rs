//! Run metrics: everything the paper's figures plot, measured after a
//! configurable warm-up.

use hostcc_faults::FaultSummary;
use hostcc_sim::{Histogram, SimDuration, SimTime};
use hostcc_telemetry::TelemetrySummary;
use hostcc_trace::StageBreakdown;

/// Aggregated measurements from one testbed run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Measurement interval (post-warm-up).
    pub measured: SimDuration,
    /// Application payload bytes delivered in order to receiver threads.
    pub delivered_payload_bytes: u64,
    /// Data packets delivered (DMA + CPU complete).
    pub delivered_packets: u64,
    /// Wire bytes that arrived at the NIC (accepted + dropped).
    pub nic_arrival_wire_bytes: u64,
    /// Data packets transmitted by senders (including retransmissions).
    pub data_packets_sent: u64,
    /// Host drops: NIC input buffer overflow.
    pub drops_buffer_full: u64,
    /// Host drops: no Rx descriptor available.
    pub drops_no_descriptor: u64,
    /// Fabric drops at the switch egress (should stay ~0; sanity check).
    pub drops_fabric: u64,
    /// IOTLB lookups and misses over the interval.
    pub iotlb_lookups: u64,
    /// IOTLB misses over the interval.
    pub iotlb_misses: u64,
    /// Page-table walk memory accesses over the interval.
    pub walk_memory_accesses: u64,
    /// Mean total memory-bus bandwidth allocated (bytes/sec), averaged
    /// over mem ticks — the Fig. 6 top panel.
    pub mean_memory_bandwidth: f64,
    /// Mean NIC share of the memory bus (bytes/sec).
    pub mean_nic_memory_bandwidth: f64,
    /// Host delay (NIC arrival → receiver stack done) distribution, ns.
    pub host_delay: Histogram,
    /// RTT distribution observed by senders, ns.
    pub rtt: Histogram,
    /// Peak NIC input-buffer occupancy, bytes.
    pub nic_buffer_peak_bytes: u64,
    /// Retransmissions sent during the interval.
    pub retransmits: u64,
    /// Timeout events during the interval.
    pub timeouts: u64,
    /// Mean congestion window across flows at the end of the run.
    pub mean_cwnd: f64,
    /// Sampled NIC input-buffer occupancy over the measurement interval:
    /// (time since measurement start, occupied bytes). One sample per
    /// memory tick; lets harnesses plot the buffer sawtooth.
    pub occupancy_samples: Vec<(u64, u64)>,
    /// Exact per-stage decomposition of `host_delay`: each delivered
    /// packet contributes one sample per stage and the five stage sums
    /// add up to `host_delay.sum()` to the nanosecond.
    pub stage_breakdown: StageBreakdown,
    /// Fault-injection summary: `Some` only when the run's `FaultPlan`
    /// was non-empty (zero-fault runs carry no summary so their exported
    /// metrics stay byte-identical to pre-fault-layer builds).
    pub faults: Option<FaultSummary>,
    /// Telemetry summary (sample totals + detected host-congestion
    /// episodes with root-cause attribution): `Some` only when the run
    /// had telemetry enabled, for the same byte-identity reason.
    pub telemetry: Option<TelemetrySummary>,
}

impl RunMetrics {
    /// Application-level goodput in Gbps (payload bytes/sec × 8).
    pub fn app_throughput_gbps(&self) -> f64 {
        if self.measured.is_zero() {
            return 0.0;
        }
        self.delivered_payload_bytes as f64 * 8.0 / self.measured.as_secs_f64() / 1e9
    }

    /// Host access-link utilisation in [0,1]: wire arrival rate over the
    /// link capacity.
    pub fn link_utilization(&self, link_bps: f64) -> f64 {
        if self.measured.is_zero() {
            return 0.0;
        }
        (self.nic_arrival_wire_bytes as f64 * 8.0 / self.measured.as_secs_f64()) / link_bps
    }

    /// Host drops (buffer + descriptor starvation).
    pub fn host_drops(&self) -> u64 {
        self.drops_buffer_full + self.drops_no_descriptor
    }

    /// Packet drop rate: host drops over data packets transmitted — the
    /// paper's drop metric.
    pub fn drop_rate(&self) -> f64 {
        if self.data_packets_sent == 0 {
            return 0.0;
        }
        self.host_drops() as f64 / self.data_packets_sent as f64
    }

    /// IOTLB misses per *delivered* packet — the Fig. 3/4/5 right panels.
    pub fn iotlb_misses_per_packet(&self) -> f64 {
        if self.delivered_packets == 0 {
            return 0.0;
        }
        self.iotlb_misses as f64 / self.delivered_packets as f64
    }

    /// Mean memory bandwidth in GB/s (decimal), Fig. 6 top panel units.
    pub fn memory_bandwidth_gbytes(&self) -> f64 {
        self.mean_memory_bandwidth / 1e9
    }

    /// p99 host delay in microseconds.
    pub fn host_delay_p99_us(&self) -> f64 {
        self.host_delay.p99() as f64 / 1000.0
    }

    /// Median host delay in microseconds.
    pub fn host_delay_p50_us(&self) -> f64 {
        self.host_delay.p50() as f64 / 1000.0
    }
}

/// Mutable accumulator the world updates; snapshot into `RunMetrics`.
#[derive(Debug)]
pub struct MetricsCollector {
    /// Measurement enabled (post-warm-up).
    pub armed: bool,
    /// When measurement began.
    pub started: SimTime,
    /// See [`RunMetrics`].
    pub delivered_payload_bytes: u64,
    /// Delivered packet count.
    pub delivered_packets: u64,
    /// Wire bytes arriving at the NIC.
    pub nic_arrival_wire_bytes: u64,
    /// Sender transmissions.
    pub data_packets_sent: u64,
    /// Buffer-full drops.
    pub drops_buffer_full: u64,
    /// Descriptor-starvation drops.
    pub drops_no_descriptor: u64,
    /// Switch drops.
    pub drops_fabric: u64,
    /// IOTLB lookups.
    pub iotlb_lookups: u64,
    /// IOTLB misses.
    pub iotlb_misses: u64,
    /// Walk accesses.
    pub walk_memory_accesses: u64,
    /// Sum of memory-bandwidth samples.
    pub mem_bw_sum: f64,
    /// Sum of NIC-share samples.
    pub nic_bw_sum: f64,
    /// Number of bandwidth samples.
    pub mem_bw_samples: u64,
    /// Host-delay histogram (ns).
    pub host_delay: Histogram,
    /// RTT histogram (ns).
    pub rtt: Histogram,
    /// Retransmissions.
    pub retransmits: u64,
    /// Timeouts.
    pub timeouts: u64,
    /// Occupancy samples (time ns since arm, bytes).
    pub occupancy_samples: Vec<(u64, u64)>,
    /// Per-stage host-delay decomposition. Recorded whenever armed —
    /// independently of any tracer — so traced and untraced runs produce
    /// bit-identical metrics.
    pub stage_breakdown: StageBreakdown,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsCollector {
    /// A disarmed collector (counts nothing until `arm`).
    pub fn new() -> Self {
        MetricsCollector {
            armed: false,
            started: SimTime::ZERO,
            delivered_payload_bytes: 0,
            delivered_packets: 0,
            nic_arrival_wire_bytes: 0,
            data_packets_sent: 0,
            drops_buffer_full: 0,
            drops_no_descriptor: 0,
            drops_fabric: 0,
            iotlb_lookups: 0,
            iotlb_misses: 0,
            walk_memory_accesses: 0,
            mem_bw_sum: 0.0,
            nic_bw_sum: 0.0,
            mem_bw_samples: 0,
            host_delay: Histogram::new(),
            rtt: Histogram::new(),
            retransmits: 0,
            timeouts: 0,
            occupancy_samples: Vec::new(),
            stage_breakdown: StageBreakdown::new(),
        }
    }

    /// Start measuring at `now` (end of warm-up).
    pub fn arm(&mut self, now: SimTime) {
        *self = MetricsCollector::new();
        self.armed = true;
        self.started = now;
    }

    /// Serialize the full accumulator state, in declaration order.
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.bool(self.armed);
        w.time(self.started);
        w.u64(self.delivered_payload_bytes);
        w.u64(self.delivered_packets);
        w.u64(self.nic_arrival_wire_bytes);
        w.u64(self.data_packets_sent);
        w.u64(self.drops_buffer_full);
        w.u64(self.drops_no_descriptor);
        w.u64(self.drops_fabric);
        w.u64(self.iotlb_lookups);
        w.u64(self.iotlb_misses);
        w.u64(self.walk_memory_accesses);
        w.f64(self.mem_bw_sum);
        w.f64(self.nic_bw_sum);
        w.u64(self.mem_bw_samples);
        self.host_delay.save_state(w);
        self.rtt.save_state(w);
        w.u64(self.retransmits);
        w.u64(self.timeouts);
        w.usize(self.occupancy_samples.len());
        for &(t, b) in &self.occupancy_samples {
            w.u64(t);
            w.u64(b);
        }
        self.stage_breakdown.save_state(w);
    }

    /// Rebuild a collector from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let armed = r.bool()?;
        let started = r.time()?;
        let delivered_payload_bytes = r.u64()?;
        let delivered_packets = r.u64()?;
        let nic_arrival_wire_bytes = r.u64()?;
        let data_packets_sent = r.u64()?;
        let drops_buffer_full = r.u64()?;
        let drops_no_descriptor = r.u64()?;
        let drops_fabric = r.u64()?;
        let iotlb_lookups = r.u64()?;
        let iotlb_misses = r.u64()?;
        let walk_memory_accesses = r.u64()?;
        let mem_bw_sum = r.f64()?;
        let nic_bw_sum = r.f64()?;
        if !mem_bw_sum.is_finite() || !nic_bw_sum.is_finite() {
            return Err(SnapError::Corrupt("non-finite bandwidth sum"));
        }
        let mem_bw_samples = r.u64()?;
        let host_delay = Histogram::load_state(r)?;
        let rtt = Histogram::load_state(r)?;
        let retransmits = r.u64()?;
        let timeouts = r.u64()?;
        let n = r.len(16)?;
        let mut occupancy_samples = Vec::with_capacity(n);
        for _ in 0..n {
            let t = r.u64()?;
            let b = r.u64()?;
            occupancy_samples.push((t, b));
        }
        let stage_breakdown = StageBreakdown::load_state(r)?;
        Ok(MetricsCollector {
            armed,
            started,
            delivered_payload_bytes,
            delivered_packets,
            nic_arrival_wire_bytes,
            data_packets_sent,
            drops_buffer_full,
            drops_no_descriptor,
            drops_fabric,
            iotlb_lookups,
            iotlb_misses,
            walk_memory_accesses,
            mem_bw_sum,
            nic_bw_sum,
            mem_bw_samples,
            host_delay,
            rtt,
            retransmits,
            timeouts,
            occupancy_samples,
            stage_breakdown,
        })
    }

    /// Snapshot the interval `[started, now]` into a `RunMetrics`.
    pub fn snapshot(&self, now: SimTime, nic_buffer_peak: u64, mean_cwnd: f64) -> RunMetrics {
        let samples = self.mem_bw_samples.max(1) as f64;
        RunMetrics {
            measured: now.saturating_since(self.started),
            delivered_payload_bytes: self.delivered_payload_bytes,
            delivered_packets: self.delivered_packets,
            nic_arrival_wire_bytes: self.nic_arrival_wire_bytes,
            data_packets_sent: self.data_packets_sent,
            drops_buffer_full: self.drops_buffer_full,
            drops_no_descriptor: self.drops_no_descriptor,
            drops_fabric: self.drops_fabric,
            iotlb_lookups: self.iotlb_lookups,
            iotlb_misses: self.iotlb_misses,
            walk_memory_accesses: self.walk_memory_accesses,
            mean_memory_bandwidth: self.mem_bw_sum / samples,
            mean_nic_memory_bandwidth: self.nic_bw_sum / samples,
            host_delay: self.host_delay.clone(),
            rtt: self.rtt.clone(),
            nic_buffer_peak_bytes: nic_buffer_peak,
            retransmits: self.retransmits,
            timeouts: self.timeouts,
            mean_cwnd,
            occupancy_samples: self.occupancy_samples.clone(),
            stage_breakdown: self.stage_breakdown.clone(),
            faults: None,
            telemetry: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_rates() {
        let mut c = MetricsCollector::new();
        c.arm(SimTime::ZERO);
        c.delivered_payload_bytes = 1_250_000_000; // 1.25 GB in 0.1 s = 100 Gbps
        c.delivered_packets = 300_000;
        c.iotlb_misses = 600_000;
        c.data_packets_sent = 400_000;
        c.drops_buffer_full = 8_000;
        let m = c.snapshot(SimTime::from_millis(100), 0, 4.0);
        assert!((m.app_throughput_gbps() - 100.0).abs() < 0.01);
        assert!((m.iotlb_misses_per_packet() - 2.0).abs() < 1e-12);
        assert!((m.drop_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let c = MetricsCollector::new();
        let m = c.snapshot(SimTime::ZERO, 0, 0.0);
        assert_eq!(m.app_throughput_gbps(), 0.0);
        assert_eq!(m.drop_rate(), 0.0);
        assert_eq!(m.iotlb_misses_per_packet(), 0.0);
        assert_eq!(m.link_utilization(100e9), 0.0);
    }

    #[test]
    fn link_utilization_from_wire_bytes() {
        let mut c = MetricsCollector::new();
        c.arm(SimTime::ZERO);
        c.nic_arrival_wire_bytes = 625_000_000; // 0.625 GB in 0.05 s = 100 Gb/s
        let m = c.snapshot(SimTime::from_millis(50), 0, 0.0);
        assert!((m.link_utilization(100e9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn arm_resets_counters() {
        let mut c = MetricsCollector::new();
        c.delivered_packets = 99;
        c.arm(SimTime::from_millis(5));
        assert_eq!(c.delivered_packets, 0);
        assert!(c.armed);
        assert_eq!(c.started, SimTime::from_millis(5));
    }
}
